"""Commutativity specifications.

Section 6 of the paper categorises application operations as *commutative*
and *non-commutative* and embeds that knowledge in the data access
protocol: commutative requests may be processed in any order between
stable points, while non-commutative requests are the synchronization
points themselves.

A :class:`CommutativitySpec` answers two questions:

* :meth:`is_commutative` — is this *operation* in the commutative
  category?  (Drives the front-end manager's ordering decisions.)
* :meth:`commute` — do these two *messages* commute pairwise?  (Drives the
  static stability check of
  :func:`repro.graph.stability.commutativity_guarantees_stability`.)

Pairwise commutativity is finer than the category: the paper's Section 5.1
notes that operations on *distinct data items* commute regardless of
category ("decomposition of the data into distinct items and scoping out
the effects of messages") — captured by ``item_of``.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Optional

from repro.types import Message


class CommutativitySpec:
    """Which operations commute, by category, pair rule, and item scoping.

    Parameters
    ----------
    commutative_ops:
        Operation names in the commutative category (e.g. ``{"inc", "dec"}``).
        Two messages whose operations are both in this set commute.
    item_of:
        Optional function extracting the data item a message touches;
        messages on different items always commute, whatever their
        category.  ``None`` disables item scoping.
    extra_rule:
        Optional override: a predicate on two messages consulted *before*
        the category rules; return ``True``/``False`` to decide, ``None``
        to fall through.
    """

    def __init__(
        self,
        commutative_ops: Iterable[str] = (),
        item_of: Optional[Callable[[Message], object]] = None,
        extra_rule: Optional[Callable[[Message, Message], Optional[bool]]] = None,
    ) -> None:
        self._commutative_ops: FrozenSet[str] = frozenset(commutative_ops)
        self._item_of = item_of
        self._extra_rule = extra_rule

    @property
    def commutative_ops(self) -> FrozenSet[str]:
        return self._commutative_ops

    def is_commutative(self, operation: str) -> bool:
        """Category test used by the front-end manager (Section 6.1)."""
        return operation in self._commutative_ops

    def commute(self, a: Message, b: Message) -> bool:
        """Pairwise test: may ``a`` and ``b`` be processed in either order?

        Rules, in priority order:

        1. ``extra_rule`` if it returns a decision,
        2. different data items (when ``item_of`` is given) -> commute,
        3. both operations in the commutative category -> commute,
        4. otherwise -> do not commute.
        """
        if self._extra_rule is not None:
            decision = self._extra_rule(a, b)
            if decision is not None:
                return decision
        if self._item_of is not None:
            if self._item_of(a) != self._item_of(b):
                return True
        return (
            a.operation in self._commutative_ops
            and b.operation in self._commutative_ops
        )


def counter_spec() -> CommutativitySpec:
    """The paper's running example (Section 2.2, 5.1).

    ``inc`` and ``dec`` on an integer commute with each other; ``rd`` is
    not commutative with respect to either: ``‖{inc(x), dec(x)} ≺ rd(x)``.
    Item scoping: operations on different counters commute.
    """
    return CommutativitySpec(
        commutative_ops={"inc", "dec"},
        item_of=lambda m: m.payload.get("item") if isinstance(m.payload, dict) else None,
    )


def registry_spec() -> CommutativitySpec:
    """The name-service example (Section 5.2).

    Queries commute with each other; updates do not commute with anything
    (two updates to the same name conflict, and a query does not commute
    with an update).
    """
    return CommutativitySpec(
        commutative_ops={"qry"},
        item_of=lambda m: m.payload.get("name") if isinstance(m.payload, dict) else None,
    )
