"""The client front-end manager — the code skeleton of Section 6.1.

The paper's base replicated-data-access protocol places a *front-end
manager* at each client, which "generates an ordering of the requests
based on the knowledge available and broadcasts the message using OSend".
Its state is the last non-commutative label ``Ncid`` and the set of
commutative labels ``{Cid}`` issued since; ordering rules::

    non-commutative request:
        if {Cid} = ∅ :  OSend(rqst, Occurs-After(Ncid))
        else         :  OSend(rqst, Occurs-After(∧{Cid})) ; {Cid} := ∅
    commutative request:
        OSend(rqst, Occurs-After(Ncid)) ; insert label into {Cid}

which realises the cycle ``Ncid(r-1) ≺ ‖{Cid}(r) ≺ Ncid(r)``.

With several front-ends, each also *observes* the group's deliveries to
keep its ``Ncid``/``{Cid}`` knowledge current (``track_remote=True``).
Two managers issuing non-commutative requests truly concurrently will
produce concurrent sync messages — the case the paper routes to the
total-ordering layer instead (Section 5.2); see
:class:`~repro.core.access_protocol.TotalOrderSystem`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.broadcast.osend import OSendBroadcast
from repro.core.commutativity import CommutativitySpec
from repro.graph.predicates import OccursAfter
from repro.types import Envelope, MessageId


class FrontEndManager:
    """Generates ``Occurs-After`` orderings for client requests."""

    def __init__(
        self,
        protocol: OSendBroadcast,
        spec: CommutativitySpec,
        track_remote: bool = True,
    ) -> None:
        self._protocol = protocol
        self._spec = spec
        self._last_nc: Optional[MessageId] = None
        self._cset: List[MessageId] = []
        self.requests_sent = 0
        self.cycles_opened = 0
        if track_remote:
            protocol.on_deliver(self._on_group_delivery)

    # -- issuing requests ----------------------------------------------------

    def request(self, operation: str, payload: object = None) -> MessageId:
        """Issue one client request with the Section 6.1 ordering."""
        self.requests_sent += 1
        if self._spec.is_commutative(operation):
            return self._send_commutative(operation, payload)
        return self._send_non_commutative(operation, payload)

    def _send_commutative(self, operation: str, payload: object) -> MessageId:
        predicate = OccursAfter.after(self._last_nc)
        label = self._protocol.osend(operation, payload, occurs_after=predicate)
        self._cset.append(label)
        return label

    def _send_non_commutative(self, operation: str, payload: object) -> MessageId:
        if self._cset:
            # The anchor is included alongside {Cid}: with a single
            # front-end it is implied transitively (every Cid hangs off
            # it), but a *remotely* installed anchor need not be an
            # ancestor of locally issued Cids, and omitting it would let
            # the previous cycle's history escape this sync point's
            # causal cut.
            ancestors = set(self._cset)
            if self._last_nc is not None:
                ancestors.add(self._last_nc)
            predicate = OccursAfter.after(ancestors)
        else:
            predicate = OccursAfter.after(self._last_nc)
        label = self._protocol.osend(operation, payload, occurs_after=predicate)
        self._last_nc = label
        self._cset = []
        self.cycles_opened += 1
        return label

    # -- tracking the group's progress ---------------------------------------------

    def _on_group_delivery(self, envelope: Envelope) -> None:
        """Absorb knowledge from delivered traffic.

        A delivered non-commutative message from *another* manager becomes
        our new cycle anchor; commutative labels it covered are dropped
        from our pending set (they are in its causal past).
        """
        if envelope.msg_id.sender == self._protocol.entity_id:
            return
        if self._spec.is_commutative(envelope.message.operation):
            if envelope.msg_id != self._last_nc:
                self._cset.append(envelope.msg_id)
            return
        self._last_nc = envelope.msg_id
        covered = self._protocol.graph.causal_past(envelope.msg_id)
        self._cset = [c for c in self._cset if c not in covered]

    # -- introspection --------------------------------------------------------------

    @property
    def last_sync_label(self) -> Optional[MessageId]:
        """The current cycle anchor (``Ncid`` of the open cycle)."""
        return self._last_nc

    @property
    def open_commutative_labels(self) -> List[MessageId]:
        """Commutative labels of the open cycle (``{Cid}``)."""
        return list(self._cset)
