"""Local stable-point detection (paper Section 4.2, 6.1).

Under the Section 6.1 cycle structure every *non-commutative* message is a
synchronization point: its ``Occurs-After`` AND-dependency covers all the
commutative messages of the finishing cycle, so by causal delivery every
member has processed exactly the same message *set* when it delivers the
non-commutative message — their states agree there, with **no extra
agreement traffic** ("protocols reach agreement without requiring separate
message exchanges across entities", Section 7).

:class:`StablePointDetector` watches a replica's delivery stream and fires
a callback at each stable point.  Detection is purely local, driven by the
commutativity category of the delivered operation (plus any explicitly
registered synchronization labels) — exactly the paper's claim that "each
member has the same view of when stable points occur".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from repro.core.commutativity import CommutativitySpec
from repro.types import Envelope, EntityId, MessageId


@dataclass(frozen=True)
class StablePoint:
    """One detected stable point at one member.

    ``index`` is the ordinal of the stable point (cycle number ``r``),
    ``position`` the delivery-log position of the synchronizing message,
    ``pending_commutative`` how many commutative messages were absorbed
    since the previous stable point.
    """

    entity: EntityId
    index: int
    msg_id: MessageId
    position: int
    time: float
    pending_commutative: int


StablePointListener = Callable[[StablePoint], None]


class StablePointDetector:
    """Fires at every synchronization message in a delivery stream."""

    def __init__(
        self,
        entity: EntityId,
        spec: CommutativitySpec,
        sync_labels: Optional[Set[MessageId]] = None,
    ) -> None:
        self._entity = entity
        self._spec = spec
        self._sync_labels: Set[MessageId] = set(sync_labels or ())
        self._listeners: List[StablePointListener] = []
        self._points: List[StablePoint] = []
        self._position = 0
        self._commutative_since_last = 0

    # -- configuration ------------------------------------------------------

    def mark_sync(self, label: MessageId) -> None:
        """Explicitly declare ``label`` a synchronization message.

        Used when an application builds custom activities whose closing
        message is itself commutative by category.
        """
        self._sync_labels.add(label)

    def subscribe(self, listener: StablePointListener) -> None:
        self._listeners.append(listener)

    # -- feed ---------------------------------------------------------------

    def observe(self, envelope: Envelope, time: float) -> Optional[StablePoint]:
        """Feed one delivery; returns the stable point if one occurred."""
        position = self._position
        self._position += 1
        is_sync = (
            envelope.msg_id in self._sync_labels
            or not self._spec.is_commutative(envelope.message.operation)
        )
        if not is_sync:
            self._commutative_since_last += 1
            return None
        point = StablePoint(
            entity=self._entity,
            index=len(self._points),
            msg_id=envelope.msg_id,
            position=position,
            time=time,
            pending_commutative=self._commutative_since_last,
        )
        self._commutative_since_last = 0
        self._points.append(point)
        for listener in self._listeners:
            listener(point)
        return point

    # -- results ------------------------------------------------------------

    @property
    def points(self) -> List[StablePoint]:
        return list(self._points)

    @property
    def count(self) -> int:
        return len(self._points)

    def labels(self) -> List[MessageId]:
        """Synchronizing labels, in stable-point order."""
        return [p.msg_id for p in self._points]
