"""Server replicas: state machine + delivery stream + stable points.

A :class:`Replica` binds a broadcast protocol's delivery stream to an
application :class:`~repro.core.state_machine.StateMachine` and runs a
:class:`~repro.core.stable_points.StablePointDetector` over it.

Two views of the data coexist, following the paper:

* the **live state** (:meth:`read_now`) — every delivered message applied
  in local delivery order; members may legitimately disagree mid-cycle;
* the **stable state** at each synchronization message ``m`` — the paper's
  agreed value ``VAL(m)`` (Section 1): the fold of exactly ``m``'s *causal
  past* plus ``m`` itself.  Causal delivery guarantees every member has
  that same message set when it delivers ``m``; if the activity's
  concurrent pairs commute, every member computes the identical value —
  with no agreement traffic.  Messages *concurrent* with ``m`` (e.g. a
  racing update from an unrelated client) are excluded at every member
  alike, even if some member happened to deliver them early.

It also implements the paper's *deferred read* (Section 5.1): "a read
operation on X requested at a member may be deferred to occur at the next
stable point so that the value of X returned by the member is the same as
that by every other member."
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Set, Tuple

from repro.broadcast.base import BroadcastProtocol
from repro.core.commutativity import CommutativitySpec
from repro.core.stable_points import StablePoint, StablePointDetector
from repro.core.state_machine import StateMachine
from repro.types import Envelope, EntityId, MessageId

DeferredReadCallback = Callable[[Any, StablePoint], None]


class Replica:
    """One member's copy of the shared data."""

    def __init__(
        self,
        protocol: BroadcastProtocol,
        machine: StateMachine,
        spec: CommutativitySpec,
    ) -> None:
        self.protocol = protocol
        self.machine = machine
        self.spec = spec
        self._state: Any = machine.initial_state
        self.detector = StablePointDetector(protocol.entity_id, spec)
        self._delivered: List[Envelope] = []
        self._stable_states: List[Tuple[StablePoint, Any]] = []
        self._deferred_reads: List[DeferredReadCallback] = []
        # Incremental causal-cut fold: the labels already folded into
        # _stable_fold_state, in the order they were applied.
        self._stable_fold_state: Any = machine.initial_state
        self._stable_fold_labels: Set[MessageId] = set()
        self.messages_applied = 0
        protocol.on_deliver(self._on_delivery)

    @property
    def entity_id(self) -> EntityId:
        return self.protocol.entity_id

    # -- delivery path ---------------------------------------------------------

    def _on_delivery(self, envelope: Envelope) -> None:
        self._state = self.machine.apply(self._state, envelope.message)
        self._delivered.append(envelope)
        self.messages_applied += 1
        point = self.detector.observe(envelope, self.protocol.now)
        if point is not None:
            self._at_stable_point(point, envelope)

    def _at_stable_point(self, point: StablePoint, envelope: Envelope) -> None:
        stable_value = self._stable_cut_state(envelope)
        self._stable_states.append((point, stable_value))
        self.protocol.network.trace.record(
            self.protocol.now,
            "stable_point",
            entity=self.entity_id,
            msg_id=point.msg_id,
            index=point.index,
        )
        pending, self._deferred_reads = self._deferred_reads, []
        for callback in pending:
            callback(stable_value, point)

    def _stable_cut_state(self, sync_envelope: Envelope) -> Any:
        """Compute ``VAL(m)``: fold of the sync message's causal cut.

        Requires the protocol to expose a dependency ``graph`` (OSend).
        Protocols without one (total order) agree at *every* message, so
        the live state is already the agreed value.
        """
        graph = getattr(self.protocol, "graph", None)
        if graph is None or sync_envelope.msg_id not in graph:
            return self._state
        cut = set(graph.causal_past(sync_envelope.msg_id))
        cut.add(sync_envelope.msg_id)
        if not self._stable_fold_labels <= cut:
            # Non-chained sync points (racing managers): refold from scratch.
            self._stable_fold_state = self.machine.initial_state
            self._stable_fold_labels = set()
        state = self._stable_fold_state
        for delivered in self._delivered:
            label = delivered.msg_id
            if label in cut and label not in self._stable_fold_labels:
                state = self.machine.apply(state, delivered.message)
                self._stable_fold_labels.add(label)
        self._stable_fold_state = state
        return state

    # -- reads -------------------------------------------------------------------

    def read_now(self) -> Any:
        """The current local state — may differ across members mid-cycle."""
        return self._state

    def read_at_next_stable_point(self, callback: DeferredReadCallback) -> None:
        """Defer a read to the next stable point (paper Section 5.1).

        ``callback(value, stable_point)`` fires when the point occurs; the
        value passed is the agreed ``VAL(m)``, identical at every member
        reading at the same point (given a commuting activity).
        """
        self._deferred_reads.append(callback)

    # -- history -----------------------------------------------------------------

    @property
    def stable_states(self) -> List[Tuple[StablePoint, Any]]:
        """(stable point, agreed value) pairs, in cycle order."""
        return list(self._stable_states)

    def stable_state_at(self, index: int) -> Optional[Any]:
        """Agreed value at the ``index``-th stable point, if reached."""
        if 0 <= index < len(self._stable_states):
            return self._stable_states[index][1]
        return None

    @property
    def stable_point_count(self) -> int:
        return len(self._stable_states)

    @property
    def delivered_envelopes(self) -> List[Envelope]:
        return list(self._delivered)
