"""Application state machines — the paper's ``F: M x S -> S``.

Each member is "simply a 'state-machine' replica, and consistency is
achieved by producing the same set of transitions at every replica as
allowed by the causal order" (Section 4.2, citing Schneider's state-machine
approach).  :class:`StateMachine` maps operation names to *pure* transition
functions over an immutable (or at least value-comparable) state; replicas
fold delivered messages through it.

Purity matters: the stability analyses compare final states across
different linear extensions, which is only meaningful if transitions have
no hidden effects.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from repro.errors import ProtocolError
from repro.types import Message

TransitionFn = Callable[[Any, Message], Any]


class StateMachine:
    """A registry of per-operation transition functions.

    Parameters
    ----------
    initial_state:
        The state every replica starts from (``s_old`` in the paper).
    transitions:
        Mapping from operation name to ``f(state, message) -> new_state``.
    strict:
        When ``True`` (default), applying an unknown operation raises
        :class:`ProtocolError`; when ``False``, unknown operations are
        identity transitions (useful when control traffic shares a stream).
    """

    def __init__(
        self,
        initial_state: Any,
        transitions: Mapping[str, TransitionFn],
        strict: bool = True,
    ) -> None:
        self.initial_state = initial_state
        self._transitions: Dict[str, TransitionFn] = dict(transitions)
        self._strict = strict

    def operations(self) -> frozenset[str]:
        return frozenset(self._transitions)

    def handles(self, operation: str) -> bool:
        return operation in self._transitions

    def apply(self, state: Any, message: Message) -> Any:
        """One invocation of ``F`` (paper relation (1))."""
        transition = self._transitions.get(message.operation)
        if transition is None:
            if self._strict:
                raise ProtocolError(
                    f"no transition for operation {message.operation!r}"
                )
            return state
        return transition(state, message)

    def run(self, messages: Any, state: Optional[Any] = None) -> Any:
        """Fold a message sequence from ``state`` (default: initial)."""
        current = self.initial_state if state is None else state
        for message in messages:
            current = self.apply(current, message)
        return current


def counter_machine(initial: int = 0) -> StateMachine:
    """Integer data with inc/dec/rd (the paper's running example).

    ``rd`` is an identity transition — reads do not change state; their
    *ordering* relative to writes is what consistency constrains.
    """

    def inc(state: int, message: Message) -> int:
        amount = 1
        if isinstance(message.payload, dict):
            amount = message.payload.get("amount", 1)
        return state + amount

    def dec(state: int, message: Message) -> int:
        amount = 1
        if isinstance(message.payload, dict):
            amount = message.payload.get("amount", 1)
        return state - amount

    def rd(state: int, message: Message) -> int:
        return state

    return StateMachine(initial, {"inc": inc, "dec": dec, "rd": rd})


def registry_machine() -> StateMachine:
    """Name registry with qry/upd (Section 5.2 example).

    State is an immutable mapping name -> value, represented as a
    frozenset of items for cheap value comparison.
    """

    def upd(state: frozenset, message: Message) -> frozenset:
        name = message.payload["name"]
        value = message.payload["value"]
        entries = {k: v for k, v in state}
        entries[name] = value
        return frozenset(entries.items())

    def qry(state: frozenset, message: Message) -> frozenset:
        return state

    return StateMachine(frozenset(), {"upd": upd, "qry": qry})
