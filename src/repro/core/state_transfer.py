"""State transfer for late joiners.

A member joining an existing group cannot replay history it never
received; it bootstraps from a *snapshot*: an existing replica's state
fenced at a synchronization point, together with the set of labels the
snapshot covers.  After installation the joiner processes only messages
outside the covered set, which the donor's protocol hands over as
replayable envelopes.

This fills in the dynamic-membership corner the paper leaves to the
group substrate ("organizing various entities as members of a group",
Section 3): view change + snapshot + replay = a joiner that converges
with the group without observing the full history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, List

from repro.broadcast.base import BroadcastProtocol
from repro.core.replica import Replica
from repro.errors import ProtocolError
from repro.types import Envelope, MessageId


@dataclass(frozen=True)
class Snapshot:
    """A replica's state fenced at a point in its delivery sequence."""

    state: Any
    covered: FrozenSet[MessageId]
    donor: str
    stable_index: int


def take_snapshot(replica: Replica, at_stable_point: bool = True) -> Snapshot:
    """Capture a snapshot from ``replica``.

    With ``at_stable_point`` (default) the snapshot is the latest agreed
    value ``VAL(m)`` and covers exactly that sync message's causal cut —
    any member's snapshot at the same stable point is interchangeable.
    Otherwise the current live state is captured, covering everything the
    replica has delivered (fine for a quiescent group, donor-specific
    otherwise).
    """
    if at_stable_point:
        if not replica.stable_states:
            raise ProtocolError(
                "replica has not reached a stable point to snapshot at"
            )
        point, state = replica.stable_states[-1]
        graph = getattr(replica.protocol, "graph", None)
        if graph is not None and point.msg_id in graph:
            covered = set(graph.causal_past(point.msg_id))
            covered.add(point.msg_id)
        else:
            covered = {
                record.msg_id
                for record in replica.protocol.delivery_log
                if record.position <= point.position
            }
        return Snapshot(
            state=state,
            covered=frozenset(covered),
            donor=replica.entity_id,
            stable_index=point.index,
        )
    covered = frozenset(replica.protocol.delivered)
    return Snapshot(
        state=replica.read_now(),
        covered=covered,
        donor=replica.entity_id,
        stable_index=-1,
    )


def restrict_snapshot(
    snapshot: Snapshot,
    select_key: Callable[[Any], bool],
    select_label: Callable[[MessageId], bool],
) -> Snapshot:
    """Project a mapping-state snapshot onto a key subset.

    Shard rebalancing (:mod:`repro.shard.rebalance`) transfers only the
    moving slot's fraction of a group's object space: the donor snapshot
    is fenced at a stable point as usual, then restricted to the keys the
    moving slot owns (``select_key``) and the labels that wrote them
    (``select_label``).  The restriction of a causally-fenced snapshot is
    itself consistent: a stable point covers a causal cut, and dropping
    whole keys removes complete per-key write histories, never a prefix
    of one.

    Raises :class:`~repro.errors.ProtocolError` if the snapshot's state
    is not a mapping.
    """
    if not isinstance(snapshot.state, dict):
        raise ProtocolError(
            "restrict_snapshot requires a mapping-state snapshot, got "
            f"{type(snapshot.state).__name__}"
        )
    return Snapshot(
        state={k: v for k, v in snapshot.state.items() if select_key(k)},
        covered=frozenset(l for l in snapshot.covered if select_label(l)),
        donor=snapshot.donor,
        stable_index=snapshot.stable_index,
    )


def replayable_envelopes(
    protocol: BroadcastProtocol, snapshot: Snapshot
) -> List[Envelope]:
    """Delivered envelopes the snapshot does *not* cover, in donor order."""
    return [
        envelope
        for envelope in protocol.delivered_envelopes
        if envelope.msg_id not in snapshot.covered
    ]


def install_snapshot(replica: Replica, snapshot: Snapshot) -> None:
    """Install ``snapshot`` into a fresh joiner replica.

    The joiner's protocol is marked as having seen/delivered every covered
    label so that (a) later messages whose ``Occurs-After`` references
    covered history become deliverable, and (b) re-broadcast copies of
    covered messages are discarded as duplicates instead of being applied
    twice.
    """
    protocol = replica.protocol
    if protocol.delivered:
        raise ProtocolError(
            "snapshot must be installed into a fresh replica "
            f"({protocol.entity_id!r} has already delivered messages)"
        )
    replica._state = snapshot.state
    replica._stable_fold_state = snapshot.state
    replica._stable_fold_labels = set(snapshot.covered)
    protocol._seen |= set(snapshot.covered)
    protocol._delivered_ids |= set(snapshot.covered)
    protocol._settled_version += 1
    graph = getattr(protocol, "graph", None)
    if graph is not None:
        for label in snapshot.covered:
            if label not in graph:
                # Ancestry inside the covered set is irrelevant: all of it
                # is already applied.  Register bare nodes so later
                # extraction and rendering see them.
                graph.add(label)


def bootstrap_joiner(
    joiner: Replica, donor: Replica
) -> Snapshot:
    """Full join flow: snapshot the donor, install, replay the remainder.

    Returns the snapshot used.  The donor's post-snapshot envelopes are
    replayed through the joiner's normal receive path, so ordering
    predicates and the state machine run exactly as for live traffic.
    """
    snapshot = take_snapshot(donor, at_stable_point=bool(donor.stable_states))
    install_snapshot(joiner, snapshot)
    for envelope in replayable_envelopes(donor.protocol, snapshot):
        joiner.protocol.on_receive(snapshot.donor, envelope)
    return snapshot
