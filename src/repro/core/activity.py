"""Causal activities — units of consistency (paper Section 4).

A *causal activity* is a message set ``K`` with ordering ``R(K)`` whose
allowed event sequences are all *transition-preserving*: every linear
extension reaches the same state, which is then a *stable point*.
Activities let applications express consistency "at application-specific
granularity ... rather than at message granularity" (Section 4.2).

The canonical shape is the processing cycle of Section 6.1::

    rqst_nc(r-1)  ≺  ‖{rqst_c(r, k)}  ≺  rqst_nc(r)

built by :meth:`CausalActivity.cycle`.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import DependencyError
from repro.graph.depgraph import DependencyGraph
from repro.graph.stability import (
    commutativity_guarantees_stability,
    is_transition_preserving,
)
from repro.core.commutativity import CommutativitySpec
from repro.core.state_machine import StateMachine
from repro.types import Message, MessageId


class CausalActivity:
    """A labelled message set with its internal ordering."""

    def __init__(self, graph: DependencyGraph) -> None:
        if graph.dangling():
            raise DependencyError(
                "activity graph references labels outside the activity: "
                f"{sorted(map(str, graph.dangling()))}"
            )
        self._graph = graph

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_relations(
        cls,
        labels: Sequence[MessageId],
        relations: Iterable[Tuple[MessageId, MessageId]],
    ) -> "CausalActivity":
        """Build from explicit ``(earlier, later)`` precedence pairs."""
        ancestors: Dict[MessageId, set] = {label: set() for label in labels}
        for earlier, later in relations:
            if later not in ancestors or earlier not in ancestors:
                raise DependencyError(
                    f"relation ({earlier}, {later}) references unknown label"
                )
            ancestors[later].add(earlier)
        graph = DependencyGraph()
        remaining = list(labels)
        # Insert in an order compatible with the relations so cycle
        # detection in DependencyGraph.add sees complete information.
        inserted: set = set()
        while remaining:
            progress = False
            for label in list(remaining):
                if ancestors[label] <= inserted:
                    graph.add(label, ancestors[label])
                    inserted.add(label)
                    remaining.remove(label)
                    progress = True
            if not progress:
                raise DependencyError("relations contain a cycle")
        return cls(graph)

    @classmethod
    def cycle(
        cls,
        opening: MessageId,
        concurrent: Sequence[MessageId],
        closing: Optional[MessageId] = None,
    ) -> "CausalActivity":
        """The Section 6.1 processing cycle.

        ``opening ≺ ‖{concurrent} ≺ closing`` — the concurrent set hangs
        off the opening label (many-to-one dependency) and the closing
        label AND-depends on the whole set (one-to-many dependency).
        ``closing`` may be omitted for a still-open cycle.
        """
        graph = DependencyGraph()
        graph.add(opening)
        for label in concurrent:
            graph.add(label, opening)
        if closing is not None:
            anchors = tuple(concurrent) if concurrent else (opening,)
            graph.add(closing, anchors)
        return cls(graph)

    # -- structure ---------------------------------------------------------

    @property
    def graph(self) -> DependencyGraph:
        return self._graph

    @property
    def labels(self) -> List[MessageId]:
        return self._graph.nodes

    def __len__(self) -> int:
        return len(self._graph)

    def __contains__(self, label: MessageId) -> bool:
        return label in self._graph

    def is_complete(self, delivered: AbstractSet[MessageId]) -> bool:
        """Have all of the activity's messages been delivered?"""
        return all(label in delivered for label in self._graph.nodes)

    def allowed_sequences(
        self, limit: Optional[int] = None
    ) -> List[List[MessageId]]:
        """The paper's ``{EvSeq_1, ..., EvSeq_L}`` (bounded by ``limit``)."""
        return list(self._graph.linear_extensions(limit=limit))

    # -- stability ----------------------------------------------------------

    def is_stable_exhaustive(
        self,
        messages: Mapping[MessageId, Message],
        machine: StateMachine,
        initial_state: object = None,
        max_sequences: int = 50_000,
    ) -> Tuple[bool, object]:
        """Exhaustively verify the activity yields a stable point.

        Executes every allowed sequence through the state machine.
        Returns ``(stable, final_state)``.
        """
        state = machine.initial_state if initial_state is None else initial_state
        return is_transition_preserving(
            self._graph, messages, machine.apply, state, max_sequences
        )

    def is_stable_static(
        self,
        messages: Mapping[MessageId, Message],
        spec: CommutativitySpec,
    ) -> Tuple[bool, List[Tuple[MessageId, MessageId]]]:
        """Sufficient static check: all concurrent pairs commute.

        Returns ``(guaranteed, violating_pairs)``.
        """
        return commutativity_guarantees_stability(
            self._graph, messages, spec.commute
        )
