"""Assembled data-access systems — the protocols of Section 6.

Three ready-to-run system shapes, each wiring a network, a group of
protocol stacks and one replica per member:

* :class:`StablePointSystem` — the paper's base protocol (Section 6.1):
  ``OSend`` causal broadcast, front-end managers generating the
  commutative/non-commutative cycle ordering, consistency at stable
  points only.
* :class:`TotalOrderSystem` — the traditional alternative (Section 5.2):
  every message totally ordered (choose the sequencer or the all-ack
  Lamport engine), consistency at every message.
* :class:`CausalSystem` — raw causal broadcast without the front-end
  discipline, for experiments that drive ``OSend`` directly.

All three share :class:`DataAccessSystem`, so benchmarks can swap the
consistency strategy while keeping workload, topology and seeds fixed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.broadcast.base import BroadcastProtocol
from repro.broadcast.lamport_total import LamportTotalOrder
from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.sequencer import SequencerTotalOrder
from repro.core.commutativity import CommutativitySpec
from repro.core.frontend import FrontEndManager
from repro.core.replica import Replica
from repro.core.state_machine import StateMachine
from repro.errors import ConfigurationError
from repro.group.membership import GroupMembership
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceRecorder
from repro.types import EntityId, MessageId


class DataAccessSystem:
    """A simulated group of replicas over one network.

    Parameters
    ----------
    members:
        Replica entity ids (they double as request issuers, matching the
        paper's single ``RPC-GRP`` containing clients and replicas).
    machine_factory:
        Builds a fresh :class:`StateMachine` per replica, so replicas never
        share mutable state by accident.
    spec:
        The application's commutativity knowledge.
    protocol_factory:
        Builds each member's broadcast stack.
    """

    def __init__(
        self,
        members: Sequence[EntityId],
        machine_factory: Callable[[], StateMachine],
        spec: CommutativitySpec,
        protocol_factory: Callable[
            [EntityId, GroupMembership], BroadcastProtocol
        ],
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        seed: int = 0,
        service_time: float = 0.0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if not members:
            raise ConfigurationError("a system needs at least one member")
        self.scheduler = Scheduler()
        self.rng = RngRegistry(seed)
        self.network = Network(
            self.scheduler,
            latency=latency,
            faults=faults,
            rng=self.rng,
            service_time=service_time,
            trace=trace,
        )
        self.membership = GroupMembership(members)
        self.spec = spec
        self.protocols: Dict[EntityId, BroadcastProtocol] = {}
        self.replicas: Dict[EntityId, Replica] = {}
        for member in members:
            protocol = protocol_factory(member, self.membership)
            self.network.register(protocol)
            self.protocols[member] = protocol
            self.replicas[member] = Replica(protocol, machine_factory(), spec)

    @property
    def members(self) -> List[EntityId]:
        return list(self.membership.members)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the simulation; returns events fired."""
        return self.scheduler.run(max_events=max_events)

    def run_until(self, deadline: float) -> int:
        return self.scheduler.run_until(deadline)

    def states(self) -> Dict[EntityId, object]:
        """Each replica's current state."""
        return {m: r.read_now() for m, r in self.replicas.items()}

    def delivered_sequences(self) -> Dict[EntityId, List[MessageId]]:
        """Each member's local delivery order."""
        return {m: p.delivered for m, p in self.protocols.items()}


class StablePointSystem(DataAccessSystem):
    """Section 6.1: OSend + front-end managers + stable points."""

    def __init__(
        self,
        members: Sequence[EntityId],
        machine_factory: Callable[[], StateMachine],
        spec: CommutativitySpec,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        seed: int = 0,
        service_time: float = 0.0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        super().__init__(
            members,
            machine_factory,
            spec,
            OSendBroadcast,
            latency=latency,
            faults=faults,
            seed=seed,
            service_time=service_time,
            trace=trace,
        )
        self.frontends: Dict[EntityId, FrontEndManager] = {
            member: FrontEndManager(protocol, spec)  # type: ignore[arg-type]
            for member, protocol in self.protocols.items()
        }

    def request(
        self, member: EntityId, operation: str, payload: object = None
    ) -> MessageId:
        """Issue a client request through ``member``'s front-end."""
        return self.frontends[member].request(operation, payload)


class TotalOrderSystem(DataAccessSystem):
    """Section 5.2 baseline: total order on every message."""

    ENGINES = ("sequencer", "lamport")

    def __init__(
        self,
        members: Sequence[EntityId],
        machine_factory: Callable[[], StateMachine],
        spec: CommutativitySpec,
        engine: str = "sequencer",
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        seed: int = 0,
        service_time: float = 0.0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if engine not in self.ENGINES:
            raise ConfigurationError(
                f"unknown total-order engine {engine!r}; pick from {self.ENGINES}"
            )
        factory = SequencerTotalOrder if engine == "sequencer" else LamportTotalOrder
        super().__init__(
            members,
            machine_factory,
            spec,
            factory,
            latency=latency,
            faults=faults,
            seed=seed,
            service_time=service_time,
            trace=trace,
        )
        self.engine = engine

    def request(
        self, member: EntityId, operation: str, payload: object = None
    ) -> MessageId:
        """Broadcast a request in total order from ``member``."""
        return self.protocols[member].bcast(operation, payload)


class CausalSystem(DataAccessSystem):
    """Raw OSend group without the front-end discipline."""

    def __init__(
        self,
        members: Sequence[EntityId],
        machine_factory: Callable[[], StateMachine],
        spec: CommutativitySpec,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        seed: int = 0,
        service_time: float = 0.0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        super().__init__(
            members,
            machine_factory,
            spec,
            OSendBroadcast,
            latency=latency,
            faults=faults,
            seed=seed,
            service_time=service_time,
            trace=trace,
        )

    def osend(
        self,
        member: EntityId,
        operation: str,
        payload: object = None,
        occurs_after: object = None,
    ) -> MessageId:
        protocol = self.protocols[member]
        assert isinstance(protocol, OSendBroadcast)
        return protocol.osend(operation, payload, occurs_after=occurs_after)
