"""The paper's core model: activities, stable points, replicas, protocols."""

from repro.core.access_protocol import (
    CausalSystem,
    DataAccessSystem,
    StablePointSystem,
    TotalOrderSystem,
)
from repro.core.activity import CausalActivity
from repro.core.commutativity import (
    CommutativitySpec,
    counter_spec,
    registry_spec,
)
from repro.core.frontend import FrontEndManager
from repro.core.replica import Replica
from repro.core.stable_points import StablePoint, StablePointDetector
from repro.core.state_transfer import (
    Snapshot,
    bootstrap_joiner,
    install_snapshot,
    replayable_envelopes,
    take_snapshot,
)
from repro.core.state_machine import (
    StateMachine,
    counter_machine,
    registry_machine,
)

__all__ = [
    "CausalActivity",
    "CausalSystem",
    "CommutativitySpec",
    "DataAccessSystem",
    "FrontEndManager",
    "Replica",
    "Snapshot",
    "StablePoint",
    "StablePointDetector",
    "StablePointSystem",
    "StateMachine",
    "TotalOrderSystem",
    "bootstrap_joiner",
    "counter_machine",
    "counter_spec",
    "install_snapshot",
    "registry_machine",
    "registry_spec",
    "replayable_envelopes",
    "take_snapshot",
]
