"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch every library-originated failure with a single handler
while still being able to distinguish configuration mistakes from runtime
protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation engine detected an invalid operation."""


class SchedulerStoppedError(SimulationError):
    """An event was scheduled on a scheduler that has already stopped."""


class CausalityViolationError(ReproError):
    """A message was delivered before one of its causal predecessors.

    Raised by the causal-delivery verifier in :mod:`repro.analysis` and by
    broadcast protocols running with paranoid checks enabled.
    """


class DependencyError(ReproError):
    """An invalid dependency was declared on a message graph.

    Examples: a cycle in the ``Occurs-After`` relation, a dependency on a
    label that can never exist, or a duplicate message label.
    """


class MembershipError(ReproError):
    """A group-membership operation referenced an unknown or dead member."""


class ProtocolError(ReproError):
    """A broadcast or data-access protocol received an ill-formed message."""


class InconsistencyDetected(ReproError):
    """An application-level consistency check failed.

    The application-specific protocols of Section 5.2 of the paper detect
    stale operations (e.g. a query ordered against an outdated set of
    updates) and either discard them or raise this error, depending on the
    configured policy.
    """


class AgreementError(ReproError):
    """Replicas failed to agree on a value at a synchronization point."""
