"""Unordered reliable broadcast — the no-guarantee baseline.

Delivers every envelope immediately on receipt.  Members generally observe
different delivery orders, so replicated state diverges unless *all*
operations commute.  This is the floor against which the ordered protocols
are compared in the consistency experiments.
"""

from __future__ import annotations

from repro.broadcast.base import BroadcastProtocol
from repro.types import Envelope


class UnorderedBroadcast(BroadcastProtocol):
    """Deliver in arrival order, no constraints."""

    protocol_name = "unordered"

    def _deliverable(self, envelope: Envelope) -> bool:
        return True
