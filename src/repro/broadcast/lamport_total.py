"""Decentralized total order via Lamport timestamps and acknowledgements.

The classic agreement protocol that "operates at the granularity of
individual messages" (Section 3.2) — the expensive alternative the paper's
stable-point model relaxes.  Every data broadcast is stamped with the
sender's Lamport clock; every other member broadcasts an acknowledgement;
a member delivers the pending data message with the smallest stamp once it
has heard a clock value >= that stamp from *every* member (so no
earlier-stamped message can still be in flight).

Cost profile (measured by ``bench_claim_asynchronism``): O(n) extra ack
broadcasts per data message, and delivery latency coupled to the *slowest*
member — precisely the synchrony the paper's causal-activity model avoids
for commutative traffic.

The simulated network reorders hops, so the protocol processes each
sender's stream in FIFO order internally (sequence numbers are already in
every label); metadata processing happens at FIFO-receive time while
application delivery waits for the total-order condition.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.broadcast.base import (
    BroadcastProtocol,
    WakeKey,
    after_event,
    after_threshold,
)
from repro.clocks.lamport import LamportClock, Timestamp
from repro.errors import ProtocolError
from repro.group.membership import GroupMembership
from repro.types import Envelope, EntityId, Message, MessageId


class LamportTotalOrder(BroadcastProtocol):
    """All-ack total order (Lamport clocks, per-message agreement)."""

    protocol_name = "lamport_total"

    ACK_OPERATION = "__ack__"

    def __init__(self, entity_id: EntityId, group: GroupMembership) -> None:
        super().__init__(entity_id, group)
        self._clock = LamportClock(entity_id)
        # Highest Lamport counter heard from each member, FIFO-processed.
        self._latest_heard: Dict[EntityId, int] = {}
        # FIFO reassembly buffers: sender -> seqno -> envelope.
        self._fifo_buffer: Dict[EntityId, Dict[int, Envelope]] = {}
        self._fifo_next: Dict[EntityId, int] = {}
        # Data messages whose metadata has been processed: label -> stamp.
        self._stamps: Dict[MessageId, Timestamp] = {}
        self._undelivered_data: Dict[MessageId, Timestamp] = {}
        self.acks_sent = 0

    # -- sending --------------------------------------------------------------

    def total_send(self, operation: str, payload: object = None) -> MessageId:
        """Broadcast ``operation`` for totally ordered delivery."""
        return self.bcast(operation, payload)

    def _stamp(self, envelope: Envelope, **options: object) -> Envelope:
        if options:
            raise ProtocolError(
                f"lamport_total does not accept options: {options}"
            )
        stamp = self._clock.tick()
        return envelope.with_metadata(lamport=stamp)

    # -- FIFO metadata processing ------------------------------------------------

    def _on_received(self, sender: EntityId, envelope: Envelope) -> None:
        origin = envelope.msg_id.sender
        buffer = self._fifo_buffer.setdefault(origin, {})
        buffer[envelope.msg_id.seqno] = envelope
        next_seq = self._fifo_next.get(origin, 0)
        while next_seq in buffer:
            self._process_metadata(buffer.pop(next_seq))
            next_seq += 1
        self._fifo_next[origin] = next_seq
        self._advance_watermark(("fifo", origin), next_seq)

    def _process_metadata(self, envelope: Envelope) -> None:
        stamp = envelope.metadata.get("lamport")
        if not isinstance(stamp, Timestamp):
            raise ProtocolError(
                f"envelope {envelope.msg_id} lacks a Lamport stamp"
            )
        origin = envelope.msg_id.sender
        if origin != self.entity_id:
            self._clock.observe(stamp)
        previous = self._latest_heard.get(origin, -1)
        if stamp.counter > previous:
            self._latest_heard[origin] = stamp.counter
            self._advance_watermark(("heard", origin), stamp.counter)
        if envelope.message.operation == self.ACK_OPERATION:
            return
        self._stamps[envelope.msg_id] = stamp
        self._undelivered_data[envelope.msg_id] = stamp
        if origin != self.entity_id:
            self._send_ack(envelope.msg_id)

    def _send_ack(self, data_label: MessageId) -> None:
        self.acks_sent += 1
        ack = Message(self._allocator.next_id(), self.ACK_OPERATION, data_label)
        stamped = self._stamp(Envelope(ack))
        # Acks ride the main label stream, so a lost ack is a FIFO gap
        # every member stalls on.  Log it like `bcast` data (durable
        # outbox + repair store) so it survives every network copy being
        # dropped and survives our own crash.
        self.send_logged(stamped)

    # -- delivery -----------------------------------------------------------------

    def _heard_at_least(self, counter: int) -> bool:
        members = self.group.view.members
        return all(
            self._latest_heard.get(member, -1) >= counter
            for member in members
        )

    def _deliverable(self, envelope: Envelope) -> bool:
        if envelope.message.operation == self.ACK_OPERATION:
            # Acks carry no application content; release them as soon as
            # their metadata has been FIFO-processed.
            return envelope.msg_id in self._seen and self._processed(envelope)
        stamp = self._undelivered_data.get(envelope.msg_id)
        if stamp is None:
            return False  # metadata not FIFO-processed yet
        smallest = min(self._undelivered_data.values())
        if stamp != smallest:
            return False
        return self._heard_at_least(stamp.counter)

    def _blockers(self, envelope: Envelope) -> Iterator[WakeKey]:
        # Before FIFO processing, everything waits on the origin's stream
        # position.  Processed data messages wait on (a) delivery of every
        # currently smaller-stamped data message and (b) each member's
        # heard-clock reaching the stamp — the sorted stamp frontier of
        # the all-ack agreement.  Smaller stamps processed *after* this
        # registration are picked up by the drain's re-index on wake.
        origin = envelope.msg_id.sender
        if not self._processed(envelope):
            yield after_threshold(("fifo", origin), envelope.msg_id.seqno + 1)
            return
        if envelope.message.operation == self.ACK_OPERATION:
            return  # processed acks are immediately deliverable
        stamp = self._undelivered_data.get(envelope.msg_id)
        if stamp is None:
            return  # delivered concurrently; nothing blocks it
        for label, other in self._undelivered_data.items():
            if other < stamp:
                yield after_event(("delivered", label))
        for member in self.group.view.members:
            if self._latest_heard.get(member, -1) < stamp.counter:
                yield after_threshold(("heard", member), stamp.counter)

    def _processed(self, envelope: Envelope) -> bool:
        origin = envelope.msg_id.sender
        return envelope.msg_id.seqno < self._fifo_next.get(origin, 0)

    def _on_delivered(self, envelope: Envelope) -> None:
        self._undelivered_data.pop(envelope.msg_id, None)

    def _reset_volatile(self) -> None:
        # `_clock` is durable: post-restart stamps must stay monotone so
        # peers' heard-clock thresholds from pre-crash stamps still close.
        self._latest_heard.clear()
        self._fifo_buffer.clear()
        self._fifo_next.clear()
        self._stamps.clear()
        self._undelivered_data.clear()

    def _on_stable_skip(self, origin: EntityId, frontier: int) -> None:
        next_seq = max(self._fifo_next.get(origin, 0), frontier)
        buffer = self._fifo_buffer.get(origin, {})
        # Successors buffered behind the skipped prefix are contiguous now.
        while next_seq in buffer:
            self._process_metadata(buffer.pop(next_seq))
            next_seq += 1
        self._fifo_next[origin] = next_seq
        self._advance_watermark(("fifo", origin), next_seq)

    def _is_control(self, envelope: Envelope) -> bool:
        return envelope.message.operation == self.ACK_OPERATION

    def missing_for(self, envelope: Envelope) -> frozenset:
        """FIFO gaps in the origin's stream below this envelope."""
        origin = envelope.msg_id.sender
        next_expected = self._fifo_next.get(origin, 0)
        buffered = self._fifo_buffer.get(origin, {})
        return frozenset(
            MessageId(origin, seqno)
            for seqno in range(next_expected, envelope.msg_id.seqno)
            if seqno not in buffered
        )

    # -- introspection -----------------------------------------------------------

    @property
    def app_delivered(self) -> List[MessageId]:
        """Delivered data labels in total order (acks hidden)."""
        return [
            e.msg_id
            for e in self._delivered_envelopes
            if e.message.operation != self.ACK_OPERATION
        ]

    def stamp_of(self, msg_id: MessageId) -> Optional[Timestamp]:
        return self._stamps.get(msg_id)
