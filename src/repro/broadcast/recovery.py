"""NACK-based loss recovery for broadcast protocols.

The ordering protocols are *safe* under message loss — a message whose
causal predecessors were lost is simply never delivered — but not *live*.
:class:`RecoveryAgent` restores liveness with negative acknowledgements:

1. Periodically scan the protocol's hold-back queue; ask the protocol
   which labels block each held envelope (:meth:`missing_for`).
2. For each missing label, unicast a NACK — first to the label's origin,
   then (with backoff) to the other members in rank order: any member
   that stored a copy can repair, so recovery survives an unreachable
   origin ("community repair").
3. A member receiving a NACK looks the envelope up in its protocol's
   store and unicasts the original envelope back; normal receive-path
   dedup makes re-repair harmless.

The agent's control traffic never enters the ordering protocol: it is
intercepted before deduplication (see
:meth:`~repro.broadcast.base.BroadcastProtocol.attach_recovery`) and its
labels live in a distinct ``<entity>!rec`` namespace.

This corresponds to the transport-level reliability the paper assumes of
its kernel-provided broadcast; the bench
``bench_ablation_recovery`` quantifies delivery completeness with and
without it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.broadcast.base import BroadcastProtocol
from repro.errors import ConfigurationError
from repro.types import Envelope, EntityId, Message, MessageId, MessageIdAllocator

NACK_OPERATION = "__nack__"
DIGEST_OPERATION = "__digest__"


class RecoveryAgent:
    """Watches one protocol stack and repairs its losses.

    Parameters
    ----------
    protocol:
        The stack to protect.  The agent registers itself via
        ``protocol.attach_recovery``.
    scan_interval:
        Simulated-time gap between hold-back scans.
    nack_backoff:
        Minimum time between successive NACKs for the same label.
    max_nacks_per_label:
        Give-up bound per label.
    min_hold_age:
        How long a label must have been missing before the first NACK —
        prevents chasing messages that are merely still in flight.
        Defaults to ``scan_interval``.
    """

    def __init__(
        self,
        protocol: BroadcastProtocol,
        scan_interval: float = 2.0,
        nack_backoff: float = 4.0,
        max_nacks_per_label: int = 10,
        min_hold_age: Optional[float] = None,
    ) -> None:
        if scan_interval <= 0 or nack_backoff <= 0:
            raise ConfigurationError(
                "scan_interval and nack_backoff must be positive"
            )
        if max_nacks_per_label < 1:
            raise ConfigurationError(
                "max_nacks_per_label must be >= 1 (a permanently lost "
                "label would otherwise keep the event loop alive forever)"
            )
        self.protocol = protocol
        self.scan_interval = scan_interval
        self.nack_backoff = nack_backoff
        self.max_nacks_per_label = max_nacks_per_label
        self.min_hold_age = (
            scan_interval if min_hold_age is None else min_hold_age
        )
        self._allocator = MessageIdAllocator(f"{protocol.entity_id}!rec")
        # label -> (last nack time, attempts)
        self._nack_state: Dict[MessageId, Tuple[float, int]] = {}
        self._first_missing: Dict[MessageId, float] = {}
        self._running = False
        self._scan_scheduled = False
        self.nacks_sent = 0
        self.repairs_sent = 0
        protocol.attach_recovery(self)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Enable scanning (actual timers are demand-driven)."""
        self._running = True
        if self.protocol.holdback_size:
            self.notify_blocked()

    def stop(self) -> None:
        self._running = False

    def notify_blocked(self) -> None:
        """Called by the chassis when envelopes are held back.

        Arms the scan timer if it is not already pending; the timer
        disarms itself once nothing chaseable remains, so an idle system
        drains its event queue and ``scheduler.run()`` terminates.
        """
        if not self._running or self._scan_scheduled:
            return
        self._scan_scheduled = True
        self.protocol.call_in(self.scan_interval, self._scan)

    # -- scanning -------------------------------------------------------------

    def _scan(self) -> None:
        self._scan_scheduled = False
        if not self._running:
            return
        self._purge_settled()
        now = self.protocol.now
        chaseable = False
        for envelope in self.protocol.holdback_envelopes:
            for label in self.protocol.missing_for(envelope):
                if self._maybe_nack(label, now):
                    chaseable = True
        if chaseable:
            self._scan_scheduled = True
            self.protocol.call_in(self.scan_interval, self._scan)

    def _purge_settled(self) -> None:
        """Forget chase state for labels that have since arrived.

        A label can settle between scans without passing through
        :meth:`intercept` (e.g. a stable-prefix skip marks it seen); this
        sweep keeps ``_nack_state`` / ``_first_missing`` bounded by the
        set of labels actually still missing.
        """
        seen = self.protocol._seen
        for label in [l for l in self._nack_state if l in seen]:
            del self._nack_state[label]
        for label in [l for l in self._first_missing if l in seen]:
            del self._first_missing[label]

    def _maybe_nack(self, label: MessageId, now: float) -> bool:
        """NACK ``label`` if due; returns whether it is still worth chasing."""
        first = self._first_missing.setdefault(label, now)
        if now - first < self.min_hold_age:
            return True  # too young: probably still in flight
        last, attempts = self._nack_state.get(label, (-float("inf"), 0))
        if attempts >= self.max_nacks_per_label:
            return False
        if now - last < self.nack_backoff:
            return True  # still in backoff, keep the timer alive
        target = self._repair_target(label, attempts)
        if target is None:
            return False
        self._nack_state[label] = (now, attempts + 1)
        self.nacks_sent += 1
        nack = Message(self._allocator.next_id(), NACK_OPERATION, label)
        self.protocol.network.unicast(
            self.protocol.entity_id, target, Envelope(nack)
        )
        return True

    def _repair_target(self, label: MessageId, attempts: int) -> Optional[EntityId]:
        """Origin first, then the other members round-robin by attempt."""
        members: List[EntityId] = [
            m
            for m in self.protocol.group.view.members
            if m != self.protocol.entity_id
        ]
        if not members:
            return None
        if attempts == 0 and label.sender in members:
            return label.sender
        fallbacks = [m for m in members if m != label.sender] or members
        return fallbacks[attempts % len(fallbacks)]

    # -- anti-entropy ---------------------------------------------------------

    def anti_entropy_round(self) -> None:
        """Broadcast a digest of everything this member can *serve*.

        Hold-back-driven NACKs can only chase labels some *held* envelope
        names; a message that nothing references (e.g. the lost tail of a
        conversation) is invisible to them.  Anti-entropy closes that
        gap: receivers compare the digest with their own ``seen`` set and
        NACK the digest's sender — who, having advertised the label,
        necessarily holds a copy.  Each round is a single broadcast, so
        explicitly scheduled rounds keep the simulation terminating.

        Only labels still in the repair store are advertised.  Labels this
        member has seen but whose bodies the stability tracker compacted
        are *unservable*: advertising them would make receivers NACK this
        member forever while ``envelope_of`` returns ``None``.  Receivers
        are instead told the gossiped stable frontier, below which they
        may skip (a compacted label is by definition delivered at every
        member that can still need it).
        """
        # Re-inject our own broadcasts whose every network copy (including
        # the self-delivery hop) was lost: they exist only in our store.
        for label, stored in list(self.protocol._envelopes_by_id.items()):
            if label not in self.protocol._seen:
                self.protocol.on_receive(self.protocol.entity_id, stored)
        servable: Dict[EntityId, set] = {}
        for label in self.protocol._envelopes_by_id:
            servable.setdefault(label.sender, set()).add(label.seqno)
        tracker = getattr(self.protocol, "stability_tracker", None)
        frontiers: Dict[EntityId, int] = (
            tracker.advertised_frontiers() if tracker is not None else {}
        )
        payload = {
            "labels": {o: frozenset(s) for o, s in servable.items()},
            "frontiers": frontiers,
        }
        message = Message(self._allocator.next_id(), DIGEST_OPERATION, payload)
        self.protocol.network.broadcast(
            self.protocol.entity_id, Envelope(message)
        )

    def schedule_anti_entropy(self, period: float, rounds: int) -> None:
        """Run ``rounds`` digest broadcasts, ``period`` apart.

        Timers are crash-guarded: rounds scheduled before a crash do not
        fire while the node is down or after it restarts.
        """
        for i in range(1, rounds + 1):
            self.protocol.call_in(period * i, self.anti_entropy_round)

    # -- control-plane receive path ------------------------------------------------

    def intercept(self, sender: EntityId, envelope: Envelope) -> bool:
        """Handle recovery control traffic; pass everything else through.

        Returns ``True`` when the envelope was consumed.
        """
        operation = envelope.message.operation
        if operation == NACK_OPERATION:
            wanted: MessageId = envelope.message.payload
            stored = self.protocol.envelope_of(wanted)
            if stored is not None:
                self.repairs_sent += 1
                self.protocol.network.unicast(
                    self.protocol.entity_id, sender, stored
                )
            return True
        if operation == DIGEST_OPERATION:
            if sender != self.protocol.entity_id:
                self._compare_digest(sender, envelope.message.payload)
            return True
        # A label we were chasing has arrived (normal copy or repair):
        # drop its chase state so `_nack_state` / `_first_missing` stay
        # bounded and `outstanding_labels` reflects reality.
        self._nack_state.pop(envelope.msg_id, None)
        self._first_missing.pop(envelope.msg_id, None)
        return False

    def _compare_digest(self, holder: EntityId, payload: dict) -> None:
        frontiers: Dict[EntityId, int] = payload.get("frontiers", {})
        for origin, frontier in frontiers.items():
            if frontier > 0:
                # Below the stable frontier nothing is servable anywhere:
                # settle instead of chasing (no-op unless we are behind it,
                # i.e. an amnesiac rejoiner).
                self.protocol.note_stable_prefix(origin, frontier)
        for origin, seqnos in payload.get("labels", {}).items():
            for seqno in seqnos:
                label = MessageId(origin, seqno)
                if label not in self.protocol._seen:
                    self.nacks_sent += 1
                    nack = Message(
                        self._allocator.next_id(), NACK_OPERATION, label
                    )
                    self.protocol.network.unicast(
                        self.protocol.entity_id, holder, Envelope(nack)
                    )

    # -- crash-stop integration ---------------------------------------------------

    def reset_volatile(self) -> None:
        """Forget chase state after the protected stack restarts."""
        self._nack_state.clear()
        self._first_missing.clear()
        self._scan_scheduled = False

    # -- diagnostics -------------------------------------------------------------

    @property
    def outstanding_labels(self) -> List[MessageId]:
        """Labels currently being chased (attempts not yet exhausted)."""
        return [
            label
            for label, (_, attempts) in self._nack_state.items()
            if attempts < self.max_nacks_per_label
        ]


def protect_group(
    protocols: Dict[EntityId, BroadcastProtocol],
    scan_interval: float = 2.0,
    nack_backoff: float = 4.0,
) -> Dict[EntityId, RecoveryAgent]:
    """Attach and start one recovery agent per protocol stack."""
    agents = {}
    for entity, protocol in protocols.items():
        agent = RecoveryAgent(
            protocol, scan_interval=scan_interval, nack_backoff=nack_backoff
        )
        agent.start()
        agents[entity] = agent
    return agents
