"""FIFO broadcast: per-sender order, no cross-sender guarantees.

A message from sender *s* with sequence number *n* is delivered only after
*s*'s messages 0..n-1.  Causally related messages from *different* senders
may still be reordered — the anomaly causal broadcast exists to fix.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.broadcast.base import BroadcastProtocol, WakeKey, after_threshold
from repro.group.membership import GroupMembership
from repro.types import Envelope, EntityId, MessageId


class FifoBroadcast(BroadcastProtocol):
    """Deliver each sender's messages in send order."""

    protocol_name = "fifo"

    def __init__(self, entity_id: EntityId, group: GroupMembership) -> None:
        super().__init__(entity_id, group)
        self._next_from: Dict[EntityId, int] = {}

    def _deliverable(self, envelope: Envelope) -> bool:
        sender = envelope.msg_id.sender
        return envelope.msg_id.seqno == self._next_from.get(sender, 0)

    def _blockers(self, envelope: Envelope) -> Iterator[WakeKey]:
        # Per-sender next-seqno index: wake when the sender's delivered
        # prefix reaches this seqno (it can never overshoot — a smaller
        # seqno for this label would mean it was already delivered).
        sender = envelope.msg_id.sender
        if self._next_from.get(sender, 0) < envelope.msg_id.seqno:
            yield after_threshold(("seq", sender), envelope.msg_id.seqno)

    def _on_delivered(self, envelope: Envelope) -> None:
        sender = envelope.msg_id.sender
        self._next_from[sender] = envelope.msg_id.seqno + 1
        self._advance_watermark(("seq", sender), self._next_from[sender])

    def _reset_volatile(self) -> None:
        self._next_from.clear()

    def _on_stable_skip(self, origin: EntityId, frontier: int) -> None:
        if self._next_from.get(origin, 0) < frontier:
            self._next_from[origin] = frontier
            self._advance_watermark(("seq", origin), frontier)

    def missing_for(self, envelope: Envelope) -> frozenset:
        """The sender's sequence gap below this envelope."""
        sender = envelope.msg_id.sender
        next_expected = self._next_from.get(sender, 0)
        return frozenset(
            MessageId(sender, seqno)
            for seqno in range(next_expected, envelope.msg_id.seqno)
            if MessageId(sender, seqno) not in self._seen
        )
