"""Stability tracking and garbage collection of message stores.

A message is *stable* once every member of the group has delivered it: no
member can ever need a retransmission, so stored copies can be discarded.
This is the classic matrix-clock application — each member needs to know
"how much everyone else has delivered from everyone".

:class:`StabilityTracker` gossips, per origin, the member's *contiguous
delivered prefix* (delivered seqnos ``0..k-1`` with no holes).  The
minimum prefix across all members is the stable frontier per origin;
envelope bodies below it are dropped from the protocol's repair store.
Gossip rounds are explicitly scheduled (like anti-entropy in
:mod:`repro.broadcast.recovery`) so simulations terminate.

The tracker composes with :class:`~repro.broadcast.recovery.RecoveryAgent`
through the chassis interceptor chain; dropping only *stable* bodies never
hurts recovery, because a stable message by definition needs no repair.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.broadcast.base import BroadcastProtocol
from repro.types import Envelope, EntityId, Message, MessageIdAllocator

GC_VECTOR_OPERATION = "__gcvec__"


class StabilityTracker:
    """Gossips delivered prefixes; compacts the envelope store."""

    def __init__(self, protocol: BroadcastProtocol) -> None:
        self.protocol = protocol
        self._allocator = MessageIdAllocator(f"{protocol.entity_id}!gc")
        # member -> origin -> contiguous delivered prefix length.
        self._prefixes: Dict[EntityId, Dict[EntityId, int]] = {}
        # origin -> highest frontier ever used to drop bodies; the
        # anti-entropy layer advertises it so receivers skip what this
        # member can no longer serve, and the invariant monitor audits it.
        self._applied_frontier: Dict[EntityId, int] = {}
        self.envelopes_reclaimed = 0
        protocol.add_interceptor(self)
        # Let the recovery layer find us (it advertises our frontiers).
        protocol.stability_tracker = self  # type: ignore[attr-defined]
        protocol.on_deliver(self._on_delivery)
        # Track contiguity of our own deliveries per origin; seed with any
        # deliveries that happened before the tracker was attached.
        self._delivered_seqnos: Dict[EntityId, Set[int]] = {}
        self._own_prefix: Dict[EntityId, int] = {}
        for envelope in protocol.delivered_envelopes:
            self._on_delivery(envelope)

    # -- local prefix maintenance ------------------------------------------------

    def _on_delivery(self, envelope: Envelope) -> None:
        origin = envelope.msg_id.sender
        seqnos = self._delivered_seqnos.setdefault(origin, set())
        seqnos.add(envelope.msg_id.seqno)
        prefix = self._own_prefix.get(origin, 0)
        while prefix in seqnos:
            seqnos.discard(prefix)
            prefix += 1
        self._own_prefix[origin] = prefix

    def local_prefix(self, origin: EntityId) -> int:
        """Our contiguous delivered prefix from ``origin``."""
        return self._own_prefix.get(origin, 0)

    # -- gossip --------------------------------------------------------------------

    def gossip_round(self) -> None:
        """Broadcast our delivered prefixes to the group."""
        message = Message(
            self._allocator.next_id(),
            GC_VECTOR_OPERATION,
            dict(self._own_prefix),
        )
        self.protocol.network.broadcast(
            self.protocol.entity_id, Envelope(message)
        )

    def schedule_gossip(self, period: float, rounds: int) -> None:
        """Crash-guarded: rounds do not fire while the node is down."""
        for i in range(1, rounds + 1):
            self.protocol.call_in(period * i, self.gossip_round)

    def intercept(self, sender: EntityId, envelope: Envelope) -> bool:
        if envelope.message.operation != GC_VECTOR_OPERATION:
            return False
        self._prefixes[sender] = dict(envelope.message.payload)
        self._compact()
        return True

    # -- compaction ------------------------------------------------------------------

    def stable_frontier(self, origin: EntityId) -> int:
        """Seqnos below this are delivered at every member (as known)."""
        members = self.protocol.group.view.members
        frontier = self.local_prefix(origin)
        for member in members:
            if member == self.protocol.entity_id:
                continue
            reported = self._prefixes.get(member, {}).get(origin, 0)
            frontier = min(frontier, reported)
        return frontier

    def _compact(self) -> None:
        store = self.protocol._envelopes_by_id
        droppable = []
        frontiers: Dict[EntityId, int] = {}
        for label in store:
            if not self.protocol.compactable_origin(label.sender):
                continue  # exempt namespace (e.g. sequencer order bindings)
            frontier = frontiers.get(label.sender)
            if frontier is None:
                frontier = self.stable_frontier(label.sender)
                frontiers[label.sender] = frontier
            if label.seqno < frontier:
                droppable.append(label)
        for label in droppable:
            del store[label]
            applied = self._applied_frontier.get(label.sender, 0)
            if label.seqno + 1 > applied:
                self._applied_frontier[label.sender] = label.seqno + 1
        self.envelopes_reclaimed += len(droppable)

    def advertised_frontiers(self) -> Dict[EntityId, int]:
        """Per-origin frontiers below which this member cannot serve.

        The union of frontiers actually *applied* (bodies dropped) and the
        current stable estimate: receivers of an anti-entropy digest may
        settle anything below these instead of NACKing this member for
        bodies it no longer has.
        """
        frontiers = dict(self._applied_frontier)
        for origin in self._own_prefix:
            estimate = self.stable_frontier(origin)
            if estimate > frontiers.get(origin, 0):
                frontiers[origin] = estimate
        # Exempt namespaces are never compacted, so never invite receivers
        # to skip-settle them — their labels must arrive (or be NACKed) so
        # the bindings they carry are actually learned.
        return {
            o: f
            for o, f in frontiers.items()
            if f > 0 and self.protocol.compactable_origin(o)
        }

    # -- crash-stop integration --------------------------------------------------

    def reset_volatile(self) -> None:
        """Drop delivered-prefix knowledge after the stack restarts.

        The rejoiner re-learns peers' prefixes from gossip and rebuilds
        its own from post-restart deliveries and stable-prefix skips.
        ``envelopes_reclaimed`` stays cumulative.
        """
        self._prefixes.clear()
        self._delivered_seqnos.clear()
        self._own_prefix.clear()
        self._applied_frontier.clear()

    def on_stable_skip(self, origin: EntityId, frontier: int) -> None:
        """Count a skipped stable prefix as settled in our own prefix.

        Skipped labels are delivered-at-every-member history; reporting
        them keeps the group frontier from collapsing to zero whenever an
        amnesiac member rejoins (which would stall compaction forever).
        """
        if self._own_prefix.get(origin, 0) >= frontier:
            return
        prefix = frontier
        seqnos = self._delivered_seqnos.setdefault(origin, set())
        while prefix in seqnos:
            seqnos.discard(prefix)
            prefix += 1
        self._own_prefix[origin] = prefix

    @property
    def applied_frontier(self) -> Dict[EntityId, int]:
        """Highest frontier used to drop bodies, per origin (diagnostics)."""
        return dict(self._applied_frontier)

    @property
    def store_size(self) -> int:
        """Envelope bodies currently retained for repair."""
        return len(self.protocol._envelopes_by_id)


def track_group(
    protocols: Dict[EntityId, BroadcastProtocol],
) -> Dict[EntityId, StabilityTracker]:
    """Attach one stability tracker per protocol stack."""
    return {
        entity: StabilityTracker(protocol)
        for entity, protocol in protocols.items()
    }
