"""Common machinery for broadcast protocols.

Every protocol in this package is the same machine with a different
*delivery predicate*:

1. a send path that stamps protocol metadata onto an :class:`Envelope`
   and hands it to the network,
2. a receive path that deduplicates copies and places them in a
   *hold-back queue*,
3. a delivery loop that repeatedly releases queued envelopes whose
   predicate is satisfied, in deterministic order.

Keeping the chassis identical means measured differences between
protocols are exactly their ordering semantics — the comparison the
paper's Sections 3, 5 and 6 make qualitatively.

Delivery engine
---------------

The chassis offers two drain implementations selected by ``drain_mode``:

``"indexed"`` (default)
    An event-driven wakeup engine.  On arrival each envelope declares the
    *wake conditions* still blocking it (:meth:`BroadcastProtocol._blockers`)
    — discrete events ("label X delivered", "epoch 3 closed") or monotone
    thresholds ("next seqno from s reached 7").  The chassis keeps a
    reverse index from condition to waiting envelopes, so a delivery (or
    receive-time state change) wakes exactly the envelopes it unblocks;
    the hold-back queue is a dict, so removal is O(1).  Each unblocking
    event costs one predicate evaluation instead of a full queue rescan.

``"naive"``
    The original reference drain: rescan the whole queue until no
    predicate fires.  Kept as the executable specification; the indexed
    engine must reproduce its delivery order bit-for-bit (see
    ``tests/broadcast/test_drain_equivalence.py``).

Both drains implement the same deterministic order: repeated passes over
the queue in arrival order, delivering every envelope whose predicate
holds when the scan cursor reaches it.  An envelope unblocked at cursor
position ``c`` is delivered in the current pass iff it arrived after
position ``c``, otherwise in the next pass — the indexed engine emulates
this by routing wakeups into a current-pass or next-pass heap based on
the arrival index of the envelope being delivered.  ``docs/PERFORMANCE.md``
describes the design and its invariants.
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import ProtocolError
from repro.group.membership import GroupMembership
from repro.sim.node import SimNode
from repro.types import (
    DeliveryRecord,
    Envelope,
    EntityId,
    Message,
    MessageId,
    MessageIdAllocator,
)

DeliveryCallback = Callable[[Envelope], None]

# A wake condition is a tagged tuple; see `after_event` / `after_threshold`.
WakeKey = Tuple[Any, ...]

_EVT = "evt"
_TH = "th"


def after_event(token: Hashable) -> WakeKey:
    """Wake condition: the discrete event ``token`` has been signalled.

    The chassis itself signals ``("delivered", msg_id)`` for every
    delivery; protocols signal their own tokens (epoch closures, sequencer
    bindings, ...) via :meth:`BroadcastProtocol._signal_event`.
    """
    return (_EVT, token)


def after_threshold(dimension: Hashable, value: float) -> WakeKey:
    """Wake condition: monotone counter ``dimension`` has reached ``value``.

    Satisfied once :meth:`BroadcastProtocol._advance_watermark` has been
    called with a value ``>= value`` for the dimension.  Used for
    per-sender next-seqno indexes (FIFO, CBCAST), delivered-count frontiers
    (RST), epoch frontiers (ASend) and heard-clock floors (Lamport).
    """
    return (_TH, dimension, value)


class BroadcastProtocol(SimNode):
    """Base class: hold-back queue + pluggable delivery predicate.

    Parameters
    ----------
    entity_id:
        This member's identity.
    group:
        Shared :class:`~repro.group.membership.GroupMembership`; the
        protocol consults the current view for member lists and ranks.
    """

    protocol_name = "base"

    #: Whether crash-stop chaos campaigns may crash members running this
    #: protocol.  Declared at the definition site so the chaos matrix
    #: (`repro.chaos.cluster.CHAOS_PROTOCOLS`) derives from the protocols
    #: themselves; a protocol whose semantics cannot survive amnesia
    #: (e.g. ASend's anonymous epoch counting) opts out by overriding
    #: this to ``False``.
    crash_eligible = True

    #: Delivery engine: "indexed" (event-driven wakeups) or "naive"
    #: (reference full-rescan drain).  May be overridden per class or per
    #: instance *before* any traffic is processed.
    drain_mode = "indexed"

    def __init__(self, entity_id: EntityId, group: GroupMembership) -> None:
        super().__init__(entity_id)
        self.group = group
        self._allocator = MessageIdAllocator(entity_id)
        # Hold-back queue: insertion order == arrival order, O(1) removal.
        self._pending: Dict[MessageId, Envelope] = {}
        self._seen: Set[MessageId] = set()
        self._delivered_ids: Set[MessageId] = set()
        #: Bumped whenever ``_delivered_ids`` mutates outside `_deliver`
        #: (stable-prefix skip, restart wipe, state transfer) — lets
        #: callers that cache views of the delivered set detect that the
        #: set changed without a delivery callback firing.
        self._settled_version = 0
        self._delivery_log: List[DeliveryRecord] = []
        self._delivered_envelopes: List[Envelope] = []
        self._envelopes_by_id: Dict[MessageId, Envelope] = {}
        self._callbacks: List[DeliveryCallback] = []
        self._send_times: Dict[MessageId, float] = {}
        self._recovery: Optional[Any] = None
        self._interceptors: List[Any] = []
        self.duplicates_discarded = 0
        self.max_holdback = 0
        #: `_deliverable` calls made by the drain (both modes) — the
        #: indexed engine's budget is one per unblocking event.
        self.predicate_evaluations = 0
        # -- wakeup index (indexed mode only) ------------------------------
        self._arrival: Dict[MessageId, int] = {}
        self._arrival_counter = 0
        # Unmet wake conditions per held-back envelope.
        self._blocked_on: Dict[MessageId, Set[WakeKey]] = {}
        # Reverse index: event token -> waiting labels.
        self._event_waiters: Dict[Hashable, List[MessageId]] = {}
        # Reverse index per threshold dimension: heap of (value, label).
        self._threshold_waiters: Dict[Hashable, List[Tuple[float, MessageId]]] = {}
        self._watermarks: Dict[Hashable, float] = {}
        # Ready heaps: `_ready` holds envelopes runnable at the next pass
        # (or next drain); `_current` is the in-flight pass of a drain.
        self._ready: List[Tuple[int, MessageId]] = []
        self._current: List[Tuple[int, MessageId]] = []
        self._queued: Set[MessageId] = set()
        self._draining = False
        self._cursor = -1
        # -- stable-prefix skip + crash bookkeeping ------------------------
        # Labels settled without local delivery: stable (delivered at every
        # member) but unservable after store compaction.  An amnesiac
        # rejoiner fast-forwards past them instead of NACKing forever.
        self._skipped_stable: Set[MessageId] = set()
        self._stable_floor: Dict[EntityId, int] = {}
        # Durable write-ahead log of every envelope we originated into our
        # own label stream (data via `bcast`, in-stream control via
        # `send_logged`).  Stable storage: without it, a sender that
        # crashes after an unreplicated send leaves a permanent FIFO gap
        # in its own stream that no surviving member can fill.  Restart
        # replays it (see `_on_restart`).
        self._outbox: Dict[MessageId, Envelope] = {}
        #: Delivery history of previous incarnations, archived at restart:
        #: ``(delivered_envelopes, skipped_stable)`` per lost life.
        self.incarnation_archive: List[
            Tuple[List[Envelope], frozenset]
        ] = []

    # -- public API ----------------------------------------------------------

    def on_deliver(self, callback: DeliveryCallback) -> None:
        """Register an application upcall invoked at each delivery."""
        self._callbacks.append(callback)

    def bcast(self, operation: str, payload: Any = None, **options: Any) -> MessageId:
        """Broadcast an application operation to the group.

        ``options`` are protocol-specific (e.g. ``occurs_after=`` for
        :class:`~repro.broadcast.osend.OSendBroadcast`).  Returns the new
        message's label.
        """
        message = Message(self._allocator.next_id(), operation, payload)
        envelope = self._stamp(Envelope(message), **options)
        self._send_times[message.msg_id] = self.now
        # Keep our own stamped copy: if every network copy (including the
        # self-delivery hop) is lost, retransmission must still be possible.
        self._envelopes_by_id[message.msg_id] = envelope
        self._outbox[message.msg_id] = envelope
        self.broadcast(envelope)
        return message.msg_id

    def send_logged(self, envelope: Envelope) -> None:
        """Send an in-stream control envelope with stable-storage logging.

        For protocol control messages that occupy the sender's own label
        stream (Lamport acks, sequencer order bindings): logged to the
        durable outbox and kept in the repair store exactly like `bcast`
        data, so a crash between send and first remote receipt cannot
        orphan the stream position.
        """
        self._envelopes_by_id[envelope.msg_id] = envelope
        self._outbox[envelope.msg_id] = envelope
        self.broadcast(envelope)

    # -- hooks for subclasses ---------------------------------------------------

    def _stamp(self, envelope: Envelope, **options: Any) -> Envelope:
        """Attach protocol metadata to an outgoing envelope."""
        if options:
            raise ProtocolError(
                f"{self.protocol_name} does not accept options: {options}"
            )
        return envelope

    def _deliverable(self, envelope: Envelope) -> bool:
        """Whether ``envelope`` may be delivered now.  Subclasses override."""
        return True

    def _blockers(self, envelope: Envelope) -> Iterable[WakeKey]:
        """The wake conditions currently preventing delivery of ``envelope``.

        Contract (indexed engine):

        * returns exactly the *unmet* conditions at call time — empty iff
          ``_deliverable(envelope)`` is true;
        * every condition is *necessary*: while any remains unsatisfied
          the predicate cannot become true;
        * every condition is eventually signalled (`_signal_event` /
          `_advance_watermark` / the chassis's own delivered events) when
          it becomes satisfied.

        Conditions need not be *sufficient*: a woken envelope whose
        predicate is still false (its condition set grew since
        registration, e.g. a smaller epoch-mate arrived) is simply
        re-indexed with its current blockers.  The default matches the
        default always-true predicate.
        """
        return ()

    def _on_delivered(self, envelope: Envelope) -> None:
        """Bookkeeping after a delivery (clock merges etc.)."""

    def _on_received(self, sender: EntityId, envelope: Envelope) -> None:
        """Bookkeeping when a fresh (non-duplicate) envelope arrives."""

    def _is_control(self, envelope: Envelope) -> bool:
        """Control-plane envelopes skip application callbacks."""
        return False

    def missing_for(self, envelope: Envelope) -> frozenset[MessageId]:
        """Labels whose absence is blocking delivery of ``envelope``.

        Used by the recovery layer to know *what* to NACK.  Protocols that
        can name their blockers override this; the base implementation
        (and protocols whose blockers are anonymous, like an unclosed
        ASend epoch) report nothing.
        """
        return frozenset()

    def _reset_volatile(self) -> None:
        """Drop protocol-specific volatile state after a restart.

        Subclasses clear delivered-state clocks, cursors, reassembly
        buffers and extracted graphs here.  *Send-side* counters that
        mirror the (durable) label allocator — e.g. CBCAST's own-broadcast
        count — must survive, or post-restart stamps would contradict the
        labels they carry.
        """

    def _on_stable_skip(self, origin: EntityId, frontier: int) -> None:
        """Advance per-origin delivery cursors past a skipped stable prefix.

        Called by :meth:`note_stable_prefix` after labels
        ``origin:0..frontier-1`` have been marked settled.  Protocols with
        per-origin counters (FIFO next-seqno, vector-clock components,
        RST delivered counts, Lamport FIFO streams) fast-forward them here
        so fresh traffic is not blocked behind irrecoverable history.
        """

    def compactable_origin(self, origin: EntityId) -> bool:
        """Whether the stability tracker may compact ``origin``'s bodies.

        Protocols whose control history must stay servable forever (the
        sequencer's order bindings: a compacted binding would strand an
        amnesiac rejoiner on an unfillable position) exempt that origin's
        namespace here.  Exempt origins are also excluded from advertised
        stable frontiers, so their labels are recovered by NACK, never
        skip-settled.
        """
        return True

    # -- recovery integration -----------------------------------------------

    def add_interceptor(self, agent: Any) -> None:
        """Register a control-plane agent.

        Each incoming envelope is offered to interceptors in registration
        order; an interceptor returning ``True`` from ``intercept(sender,
        envelope)`` consumes it before ordering-protocol processing.
        """
        self._interceptors.append(agent)

    def attach_recovery(self, agent: Any) -> None:
        """Give a recovery agent first look at incoming envelopes."""
        self._recovery = agent
        self.add_interceptor(agent)

    def envelope_of(self, msg_id: MessageId) -> Optional[Envelope]:
        """Any stored copy of ``msg_id`` (sent or received), for repair."""
        return self._envelopes_by_id.get(msg_id)

    # -- stable-prefix skip ---------------------------------------------------

    def note_stable_prefix(self, origin: EntityId, frontier: int) -> None:
        """Settle ``origin``'s labels below ``frontier`` without delivery.

        A label below a gossiped stable frontier was delivered at every
        member before its body was compacted away — it can never be
        served again, and chasing it would NACK forever.  A member that
        has not delivered it (in practice: an amnesiac rejoiner whose
        delivered state was lost in a crash) treats it as settled history
        instead: the label is marked seen (stray copies dedup away) and
        counted delivered for predicate purposes, and the protocol's
        per-origin cursors fast-forward (:meth:`_on_stable_skip`).

        At a healthy member the frontier never exceeds its own delivered
        prefix (the frontier is a group-wide minimum that includes the
        member's own reports), so this is a no-op outside rejoin.
        """
        floor = self._stable_floor.get(origin, 0)
        if frontier <= floor:
            return
        self._stable_floor[origin] = frontier
        self._settled_version += 1
        for seqno in range(floor, frontier):
            label = MessageId(origin, seqno)
            if label in self._delivered_ids:
                continue
            self._seen.add(label)
            self._delivered_ids.add(label)
            self._skipped_stable.add(label)
            if label in self._pending:
                # A held copy whose predecessors were compacted: it is
                # stable too, so settle it rather than deliver it out of
                # what would be a torn prefix.
                del self._pending[label]
                self._arrival.pop(label, None)
                self._queued.discard(label)
                self._blocked_on.pop(label, None)
            self._signal_event(("delivered", label))
        self._on_stable_skip(origin, frontier)
        for agent in self._interceptors:
            hook = getattr(agent, "on_stable_skip", None)
            if hook is not None:
                hook(origin, frontier)
        self._drain()

    @property
    def skipped_stable(self) -> frozenset:
        """Labels settled via stable-prefix skip (never delivered here)."""
        return frozenset(self._skipped_stable)

    # -- crash-stop lifecycle ----------------------------------------------------

    def _on_restart(self) -> None:
        """Model volatile-state loss: wipe everything but durable identity.

        Durable across incarnations: the label allocator (labels are never
        reused), the outbox (stable-storage log of own sends), the shared
        group membership, registered callbacks and interceptors, and
        cumulative diagnostics.  Everything else — the hold-back queue,
        dedup set, delivered state, repair store and the wakeup index — is
        volatile and lost with the crash.  The previous life's delivery
        history is archived for post-hoc analysis.

        After the wipe the outbox is replayed: every logged send is
        re-received locally (rebuilding our own stream as a recovering
        process replays its log) and re-broadcast to the group (peers
        dedup known labels; the ones only we ever held fill their FIFO
        gaps).  Without this, a send whose every network copy was lost
        before the crash would leave a permanently unfillable gap in our
        stream, stalling all our post-restart traffic behind it.
        """
        self.incarnation_archive.append(
            (list(self._delivered_envelopes), frozenset(self._skipped_stable))
        )
        self._pending.clear()
        self._seen.clear()
        self._delivered_ids.clear()
        self._settled_version += 1
        self._delivery_log.clear()
        self._delivered_envelopes.clear()
        self._envelopes_by_id.clear()
        self._send_times.clear()
        self._arrival.clear()
        self._blocked_on.clear()
        self._event_waiters.clear()
        self._threshold_waiters.clear()
        self._watermarks.clear()
        self._ready.clear()
        self._current.clear()
        self._queued.clear()
        self._draining = False
        self._cursor = -1
        self._skipped_stable = set()
        self._stable_floor.clear()
        self._reset_volatile()
        for agent in self._interceptors:
            reset = getattr(agent, "reset_volatile", None)
            if reset is not None:
                reset()
        replay = sorted(
            self._outbox,
            # Control namespaces (e.g. the sequencer's order stream)
            # replay before the main stream: a replayed binding must be
            # in place before the data it binds, or the recovering
            # sequencer would mistake its own old data for unbound
            # traffic and re-issue orders for it.
            key=lambda label: (label.sender == self.entity_id, label),
        )
        for label in replay:
            envelope = self._outbox[label]
            self.on_receive(self.entity_id, envelope)
            self.broadcast(envelope)

    # -- receive path -------------------------------------------------------------

    def on_receive(self, sender: EntityId, envelope: Envelope) -> None:
        for interceptor in self._interceptors:
            if interceptor.intercept(sender, envelope):
                return
        msg_id = envelope.msg_id
        if msg_id in self._seen:
            self.duplicates_discarded += 1
            return
        self._seen.add(msg_id)
        self._envelopes_by_id[msg_id] = envelope
        self._on_received(sender, envelope)
        self._pending[msg_id] = envelope
        self._arrival[msg_id] = self._arrival_counter
        self._arrival_counter += 1
        if len(self._pending) > self.max_holdback:
            self.max_holdback = len(self._pending)
        trace = self.network.trace
        if trace.wants("hold"):
            trace.record(
                self.now,
                "hold",
                entity=self.entity_id,
                msg_id=msg_id,
                queue=len(self._pending),
            )
        if self.drain_mode == "indexed":
            self._index(envelope)
        self._drain()
        if self._recovery is not None and self._pending:
            self._recovery.notify_blocked()

    # -- wakeup index --------------------------------------------------------

    def _index(self, envelope: Envelope) -> None:
        """Register ``envelope``'s unmet wake conditions (or mark ready).

        Called on arrival and again whenever a woken envelope turns out
        not to be deliverable yet (its blocker set changed since the last
        registration).
        """
        msg_id = envelope.msg_id
        unmet: Set[WakeKey] = set()
        for key in self._blockers(envelope):
            if key[0] == _TH:
                _, dimension, value = key
                watermark = self._watermarks.get(dimension)
                if watermark is not None and watermark >= value:
                    continue  # already satisfied
                heapq.heappush(
                    self._threshold_waiters.setdefault(dimension, []),
                    (value, msg_id),
                )
            else:
                self._event_waiters.setdefault(key[1], []).append(msg_id)
            unmet.add(key)
        if unmet:
            self._blocked_on[msg_id] = unmet
        else:
            self._blocked_on.pop(msg_id, None)
            self._enqueue_runnable(msg_id, from_wake=False)

    def _signal_event(self, token: Hashable) -> None:
        """Mark discrete wake condition ``token`` satisfied (indexed mode)."""
        if self.drain_mode != "indexed":
            return
        waiters = self._event_waiters.pop(token, None)
        if waiters:
            key = (_EVT, token)
            for msg_id in waiters:
                self._resolve_key(msg_id, key)

    def _advance_watermark(self, dimension: Hashable, value: float) -> None:
        """Advance monotone counter ``dimension`` to ``value`` (indexed mode)."""
        if self.drain_mode != "indexed":
            return
        current = self._watermarks.get(dimension)
        if current is not None and value <= current:
            return
        self._watermarks[dimension] = value
        heap = self._threshold_waiters.get(dimension)
        if not heap:
            return
        while heap and heap[0][0] <= value:
            threshold, msg_id = heapq.heappop(heap)
            self._resolve_key(msg_id, (_TH, dimension, threshold))

    def _resolve_key(self, msg_id: MessageId, key: WakeKey) -> None:
        blocked = self._blocked_on.get(msg_id)
        if blocked is None or key not in blocked:
            return  # stale registration (envelope delivered or re-indexed)
        blocked.discard(key)
        if not blocked:
            del self._blocked_on[msg_id]
            self._enqueue_runnable(msg_id, from_wake=True)

    def _enqueue_runnable(self, msg_id: MessageId, from_wake: bool) -> None:
        """Queue an envelope whose wake conditions are all satisfied.

        During a drain, an envelope woken by a delivery joins the current
        pass iff it arrived after the delivering envelope (the naive
        drain's scan cursor has not passed it yet); everything else —
        including fresh arrivals — waits for the next pass.
        """
        if msg_id not in self._pending or msg_id in self._queued:
            return
        entry = (self._arrival[msg_id], msg_id)
        self._queued.add(msg_id)
        if self._draining and from_wake and entry[0] > self._cursor:
            heapq.heappush(self._current, entry)
        else:
            heapq.heappush(self._ready, entry)

    # -- drain ----------------------------------------------------------------

    def _drain(self) -> None:
        """Deliver queued envelopes until no predicate is satisfied."""
        if self.drain_mode == "naive":
            self._drain_naive()
            return
        if self.drain_mode != "indexed":
            raise ProtocolError(
                f"unknown drain_mode {self.drain_mode!r}; "
                "expected 'indexed' or 'naive'"
            )
        if self._draining:
            return  # the outer drain's pass loop will pick up new arrivals
        self._draining = True
        try:
            while self._ready:
                # One pass: everything runnable so far, in arrival order.
                self._current = self._ready
                self._ready = []
                self._cursor = -1
                while self._current:
                    arrival, msg_id = heapq.heappop(self._current)
                    envelope = self._pending.get(msg_id)
                    if envelope is None:
                        self._queued.discard(msg_id)
                        continue
                    self._queued.discard(msg_id)
                    self._cursor = arrival
                    self.predicate_evaluations += 1
                    if self._deliverable(envelope):
                        del self._pending[msg_id]
                        del self._arrival[msg_id]
                        self._deliver(envelope)
                        self._signal_event(("delivered", msg_id))
                    else:
                        # Woken too early: the blocker set grew since
                        # registration.  Re-index with current blockers.
                        self._index(envelope)
                        if msg_id not in self._blocked_on:
                            raise ProtocolError(
                                f"{self.protocol_name}: wakeup index cannot "
                                f"explain why {msg_id} is blocked"
                            )
        finally:
            self._draining = False
            self._current = []
            self._cursor = -1

    def _drain_naive(self) -> None:
        """Reference drain: rescan the queue until no predicate fires.

        Each pass scans the queue in arrival order, so among
        simultaneously-deliverable envelopes the earliest-received goes
        first — deterministic given the scheduler's determinism.  The
        indexed engine reproduces this order exactly.
        """
        progress = True
        while progress:
            progress = False
            for envelope in list(self._pending.values()):
                msg_id = envelope.msg_id
                if msg_id not in self._pending:
                    continue  # delivered by a nested drain
                self.predicate_evaluations += 1
                if self._deliverable(envelope):
                    del self._pending[msg_id]
                    self._arrival.pop(msg_id, None)
                    self._deliver(envelope)
                    progress = True

    def _deliver(self, envelope: Envelope) -> None:
        msg_id = envelope.msg_id
        if msg_id in self._delivered_ids:
            raise ProtocolError(f"double delivery of {msg_id}")
        self._delivered_ids.add(msg_id)
        record = DeliveryRecord(
            entity=self.entity_id,
            msg_id=msg_id,
            position=len(self._delivery_log),
            time=self.now,
        )
        self._delivery_log.append(record)
        self._delivered_envelopes.append(envelope)
        self._on_delivered(envelope)
        self.network.trace.record(
            self.now,
            "deliver",
            entity=self.entity_id,
            msg_id=msg_id,
            operation=envelope.message.operation,
            position=record.position,
        )
        if not self._is_control(envelope):
            for callback in self._callbacks:
                callback(envelope)

    # -- introspection ------------------------------------------------------------

    @property
    def delivered(self) -> List[MessageId]:
        """Labels delivered so far, in local delivery order."""
        return [record.msg_id for record in self._delivery_log]

    @property
    def delivery_log(self) -> List[DeliveryRecord]:
        return list(self._delivery_log)

    @property
    def delivered_envelopes(self) -> List[Envelope]:
        return list(self._delivered_envelopes)

    @property
    def delivered_count(self) -> int:
        """Number of deliveries so far (control traffic included)."""
        return len(self._delivery_log)

    @property
    def holdback_size(self) -> int:
        """Envelopes received but not yet deliverable."""
        return len(self._pending)

    @property
    def holdback_ids(self) -> List[MessageId]:
        return list(self._pending)

    @property
    def holdback_envelopes(self) -> List[Envelope]:
        """Held-back envelopes, in arrival order."""
        return list(self._pending.values())

    def has_delivered(self, msg_id: MessageId) -> bool:
        return msg_id in self._delivered_ids

    def send_time(self, msg_id: MessageId) -> Optional[float]:
        """When this member broadcast ``msg_id`` (None if not ours)."""
        return self._send_times.get(msg_id)


def make_group(
    network: Any,
    members: Sequence[EntityId],
    protocol_factory: Callable[[EntityId, GroupMembership], BroadcastProtocol],
) -> Dict[EntityId, BroadcastProtocol]:
    """Instantiate and register one protocol stack per member.

    Convenience used throughout tests, examples and benchmarks: all stacks
    share one :class:`GroupMembership`.
    """
    membership = GroupMembership(members)
    stacks: Dict[EntityId, BroadcastProtocol] = {}
    for member in members:
        stack = protocol_factory(member, membership)
        network.register(stack)
        stacks[member] = stack
    return stacks
