"""Common machinery for broadcast protocols.

Every protocol in this package is the same machine with a different
*delivery predicate*:

1. a send path that stamps protocol metadata onto an :class:`Envelope`
   and hands it to the network,
2. a receive path that deduplicates copies and places them in a
   *hold-back queue*,
3. a delivery loop that repeatedly releases queued envelopes whose
   predicate is satisfied, in deterministic order.

Keeping the chassis identical means measured differences between
protocols are exactly their ordering semantics — the comparison the
paper's Sections 3, 5 and 6 make qualitatively.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.errors import ProtocolError
from repro.group.membership import GroupMembership
from repro.sim.node import SimNode
from repro.types import (
    DeliveryRecord,
    Envelope,
    EntityId,
    Message,
    MessageId,
    MessageIdAllocator,
)

DeliveryCallback = Callable[[Envelope], None]


class BroadcastProtocol(SimNode):
    """Base class: hold-back queue + pluggable delivery predicate.

    Parameters
    ----------
    entity_id:
        This member's identity.
    group:
        Shared :class:`~repro.group.membership.GroupMembership`; the
        protocol consults the current view for member lists and ranks.
    """

    protocol_name = "base"

    def __init__(self, entity_id: EntityId, group: GroupMembership) -> None:
        super().__init__(entity_id)
        self.group = group
        self._allocator = MessageIdAllocator(entity_id)
        self._pending: List[Envelope] = []
        self._seen: Set[MessageId] = set()
        self._delivered_ids: Set[MessageId] = set()
        self._delivery_log: List[DeliveryRecord] = []
        self._delivered_envelopes: List[Envelope] = []
        self._envelopes_by_id: Dict[MessageId, Envelope] = {}
        self._callbacks: List[DeliveryCallback] = []
        self._send_times: Dict[MessageId, float] = {}
        self._recovery: Optional[Any] = None
        self._interceptors: List[Any] = []
        self.duplicates_discarded = 0
        self.max_holdback = 0

    # -- public API ----------------------------------------------------------

    def on_deliver(self, callback: DeliveryCallback) -> None:
        """Register an application upcall invoked at each delivery."""
        self._callbacks.append(callback)

    def bcast(self, operation: str, payload: Any = None, **options: Any) -> MessageId:
        """Broadcast an application operation to the group.

        ``options`` are protocol-specific (e.g. ``occurs_after=`` for
        :class:`~repro.broadcast.osend.OSendBroadcast`).  Returns the new
        message's label.
        """
        message = Message(self._allocator.next_id(), operation, payload)
        envelope = self._stamp(Envelope(message), **options)
        self._send_times[message.msg_id] = self.now
        # Keep our own stamped copy: if every network copy (including the
        # self-delivery hop) is lost, retransmission must still be possible.
        self._envelopes_by_id[message.msg_id] = envelope
        self.broadcast(envelope)
        return message.msg_id

    # -- hooks for subclasses ---------------------------------------------------

    def _stamp(self, envelope: Envelope, **options: Any) -> Envelope:
        """Attach protocol metadata to an outgoing envelope."""
        if options:
            raise ProtocolError(
                f"{self.protocol_name} does not accept options: {options}"
            )
        return envelope

    def _deliverable(self, envelope: Envelope) -> bool:
        """Whether ``envelope`` may be delivered now.  Subclasses override."""
        return True

    def _on_delivered(self, envelope: Envelope) -> None:
        """Bookkeeping after a delivery (clock merges etc.)."""

    def _on_received(self, sender: EntityId, envelope: Envelope) -> None:
        """Bookkeeping when a fresh (non-duplicate) envelope arrives."""

    def _is_control(self, envelope: Envelope) -> bool:
        """Control-plane envelopes skip application callbacks."""
        return False

    def missing_for(self, envelope: Envelope) -> frozenset[MessageId]:
        """Labels whose absence is blocking delivery of ``envelope``.

        Used by the recovery layer to know *what* to NACK.  Protocols that
        can name their blockers override this; the base implementation
        (and protocols whose blockers are anonymous, like an unclosed
        ASend epoch) report nothing.
        """
        return frozenset()

    # -- recovery integration -----------------------------------------------

    def add_interceptor(self, agent: Any) -> None:
        """Register a control-plane agent.

        Each incoming envelope is offered to interceptors in registration
        order; an interceptor returning ``True`` from ``intercept(sender,
        envelope)`` consumes it before ordering-protocol processing.
        """
        self._interceptors.append(agent)

    def attach_recovery(self, agent: Any) -> None:
        """Give a recovery agent first look at incoming envelopes."""
        self._recovery = agent
        self.add_interceptor(agent)

    def envelope_of(self, msg_id: MessageId) -> Optional[Envelope]:
        """Any stored copy of ``msg_id`` (sent or received), for repair."""
        return self._envelopes_by_id.get(msg_id)

    # -- receive path -------------------------------------------------------------

    def on_receive(self, sender: EntityId, envelope: Envelope) -> None:
        for interceptor in self._interceptors:
            if interceptor.intercept(sender, envelope):
                return
        msg_id = envelope.msg_id
        if msg_id in self._seen:
            self.duplicates_discarded += 1
            return
        self._seen.add(msg_id)
        self._envelopes_by_id[msg_id] = envelope
        self._on_received(sender, envelope)
        self._pending.append(envelope)
        if len(self._pending) > self.max_holdback:
            self.max_holdback = len(self._pending)
        self.network.trace.record(
            self.now,
            "hold",
            entity=self.entity_id,
            msg_id=msg_id,
            queue=len(self._pending),
        )
        self._drain()
        if self._recovery is not None and self._pending:
            self._recovery.notify_blocked()

    def _drain(self) -> None:
        """Deliver queued envelopes until no predicate is satisfied.

        Each pass scans the queue in arrival order, so among
        simultaneously-deliverable envelopes the earliest-received goes
        first — deterministic given the scheduler's determinism.
        """
        progress = True
        while progress:
            progress = False
            for envelope in list(self._pending):
                if envelope not in self._pending:
                    continue  # delivered by a nested drain
                if self._deliverable(envelope):
                    self._pending.remove(envelope)
                    self._deliver(envelope)
                    progress = True

    def _deliver(self, envelope: Envelope) -> None:
        msg_id = envelope.msg_id
        if msg_id in self._delivered_ids:
            raise ProtocolError(f"double delivery of {msg_id}")
        self._delivered_ids.add(msg_id)
        record = DeliveryRecord(
            entity=self.entity_id,
            msg_id=msg_id,
            position=len(self._delivery_log),
            time=self.now,
        )
        self._delivery_log.append(record)
        self._delivered_envelopes.append(envelope)
        self._on_delivered(envelope)
        self.network.trace.record(
            self.now,
            "deliver",
            entity=self.entity_id,
            msg_id=msg_id,
            operation=envelope.message.operation,
            position=record.position,
        )
        if not self._is_control(envelope):
            for callback in self._callbacks:
                callback(envelope)

    # -- introspection ------------------------------------------------------------

    @property
    def delivered(self) -> List[MessageId]:
        """Labels delivered so far, in local delivery order."""
        return [record.msg_id for record in self._delivery_log]

    @property
    def delivery_log(self) -> List[DeliveryRecord]:
        return list(self._delivery_log)

    @property
    def delivered_envelopes(self) -> List[Envelope]:
        return list(self._delivered_envelopes)

    @property
    def holdback_size(self) -> int:
        """Envelopes received but not yet deliverable."""
        return len(self._pending)

    @property
    def holdback_ids(self) -> List[MessageId]:
        return [e.msg_id for e in self._pending]

    def has_delivered(self, msg_id: MessageId) -> bool:
        return msg_id in self._delivered_ids

    def send_time(self, msg_id: MessageId) -> Optional[float]:
        """When this member broadcast ``msg_id`` (None if not ours)."""
        return self._send_times.get(msg_id)


def make_group(
    network: Any,
    members: Sequence[EntityId],
    protocol_factory: Callable[[EntityId, GroupMembership], BroadcastProtocol],
) -> Dict[EntityId, BroadcastProtocol]:
    """Instantiate and register one protocol stack per member.

    Convenience used throughout tests, examples and benchmarks: all stacks
    share one :class:`GroupMembership`.
    """
    membership = GroupMembership(members)
    stacks: Dict[EntityId, BroadcastProtocol] = {}
    for member in members:
        stack = protocol_factory(member, membership)
        network.register(stack)
        stacks[member] = stack
    return stacks
