"""CBCAST — vector-clock causal broadcast (Birman-Schiper-Stephenson).

The clock-inferred causal broadcast of ISIS [7], which the paper names as
one substrate on which its communication-interface layer can sit
(Section 3.2).  Causality here is *potential* causality: every message a
member delivered before sending is treated as a causal predecessor of the
send, whether or not the application meant it.  Contrast with
:class:`~repro.broadcast.osend.OSendBroadcast`, which transmits exactly the
dependencies the application declares — the paper's "semantic ordering
rather than incidental ordering" point (footnote 1, citing Cheriton &
Skeen).

Each broadcast carries the sender's vector clock after incrementing its own
component; the delivery predicate is
:func:`repro.clocks.vector.cbcast_deliverable`.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.broadcast.base import BroadcastProtocol, WakeKey, after_threshold
from repro.clocks.vector import VectorClock, cbcast_deliverable
from repro.errors import ProtocolError
from repro.group.membership import GroupMembership
from repro.types import Envelope, EntityId, MessageId


class CbcastBroadcast(BroadcastProtocol):
    """Causal delivery inferred from vector clocks."""

    protocol_name = "cbcast"

    #: Upper bound on gap labels enumerated per :meth:`missing_for` call.
    #: A vector clock can imply arbitrarily many missing broadcasts; the
    #: recovery layer only needs a bounded batch to chase — once repaired,
    #: the next scan names the rest.
    MISSING_ENUMERATION_CAP = 128

    def __init__(self, entity_id: EntityId, group: GroupMembership) -> None:
        super().__init__(entity_id, group)
        self._clock = VectorClock.zero()
        # Number of our own broadcasts.  Kept separately from the delivered
        # clock so that two sends racing ahead of our own self-delivery get
        # distinct (and correctly ordered) stamps.
        self._sent = 0

    @property
    def clock(self) -> VectorClock:
        """This member's delivered-state vector clock."""
        return self._clock

    def _stamp(self, envelope: Envelope, **options: object) -> Envelope:
        if options:
            raise ProtocolError(f"cbcast does not accept options: {options}")
        self._sent += 1
        send_clock = self._clock.merge(
            VectorClock({self.entity_id: self._sent})
        )
        return envelope.with_metadata(vclock=send_clock)

    def _deliverable(self, envelope: Envelope) -> bool:
        msg_clock = envelope.metadata.get("vclock")
        if not isinstance(msg_clock, VectorClock):
            raise ProtocolError(
                f"envelope {envelope.msg_id} lacks a vector clock"
            )
        return cbcast_deliverable(
            msg_clock, envelope.msg_id.sender, self._clock
        )

    def _blockers(self, envelope: Envelope) -> Iterator[WakeKey]:
        # Per-sender next-seqno index phrased as thresholds over the
        # delivered-state clock: the message needs component `sender` to
        # reach V[sender]-1 (it is then the next from that sender; it can
        # never be *behind*, dedup removes already-delivered copies) and
        # every other component to reach V[e].
        msg_clock: VectorClock = envelope.metadata["vclock"]
        sender = envelope.msg_id.sender
        for entity, count in msg_clock.items():
            needed = count - 1 if entity == sender else count
            if self._clock[entity] < needed:
                yield after_threshold(("vc", entity), needed)

    def _on_delivered(self, envelope: Envelope) -> None:
        msg_clock: VectorClock = envelope.metadata["vclock"]
        self._clock = self._clock.merge(msg_clock)
        # Only components present in the delivered stamp can have grown.
        for entity, _ in msg_clock.items():
            self._advance_watermark(("vc", entity), self._clock[entity])

    def _reset_volatile(self) -> None:
        # The delivered-state clock is volatile; `_sent` mirrors the
        # durable label allocator (label seqno = own component - 1) and
        # must survive, or post-restart stamps would contradict their
        # labels.
        self._clock = VectorClock.zero()

    def _on_stable_skip(self, origin: EntityId, frontier: int) -> None:
        if self._clock[origin] < frontier:
            self._clock = self._clock.merge(VectorClock({origin: frontier}))
            self._advance_watermark(("vc", origin), frontier)

    def _gap_labels(self, envelope: Envelope) -> Iterator[MessageId]:
        """Lazily yield the unseen labels this stamp implies we lack."""
        msg_clock: VectorClock = envelope.metadata["vclock"]
        sender = envelope.msg_id.sender
        for entity, count in msg_clock.items():
            have = self._clock[entity]
            upto = count - 1 if entity == sender else count
            for broadcast_index in range(have, upto):
                label = MessageId(entity, broadcast_index)
                if label not in self._seen:
                    yield label

    def missing_for(self, envelope: Envelope) -> frozenset:
        """Labels implied missing by the envelope's vector clock.

        The sender's own component counts its broadcasts, and a message's
        label seqno equals that component minus one, so every causal gap
        can be *named*: for each entity ``e`` the stamps say we are
        missing broadcasts ``local[e] .. msg[e]-1`` (exclusive of the
        envelope itself).  Enumeration is lazy and capped at
        :attr:`MISSING_ENUMERATION_CAP` labels so a huge clock gap does
        not materialise an unbounded label set per recovery scan.
        """
        return frozenset(
            itertools.islice(
                self._gap_labels(envelope), self.MISSING_ENUMERATION_CAP
            )
        )

    def metadata_entries(self, envelope: Envelope) -> int:
        """Non-zero vector entries carried (metadata size proxy)."""
        clock = envelope.metadata.get("vclock")
        return clock.size_entries() if isinstance(clock, VectorClock) else 0
