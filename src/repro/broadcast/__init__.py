"""Broadcast protocol stack.

All protocols share the :class:`~repro.broadcast.base.BroadcastProtocol`
chassis (hold-back queue + delivery predicate):

===========================  ====================================================
:class:`UnorderedBroadcast`  no guarantees (baseline)
:class:`FifoBroadcast`       per-sender order (baseline)
:class:`CbcastBroadcast`     vector-clock causal order (ISIS CBCAST)
:class:`OSendBroadcast`      explicit-graph causal order (the paper's ``OSend``)
:class:`ASendTotalOrder`     epoch-batched total order (the paper's ``ASend``)
:class:`SequencerTotalOrder` fixed-sequencer total order (interposed layer)
:class:`LamportTotalOrder`   all-ack decentralized total order (baseline)
===========================  ====================================================
"""

from repro.broadcast.asend import ASendTotalOrder
from repro.broadcast.base import BroadcastProtocol, make_group
from repro.broadcast.recovery import RecoveryAgent, protect_group
from repro.broadcast.gc import StabilityTracker, track_group
from repro.broadcast.rst import RstBroadcast
from repro.broadcast.cbcast import CbcastBroadcast
from repro.broadcast.fifo import FifoBroadcast
from repro.broadcast.lamport_total import LamportTotalOrder
from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.sequencer import SequencerTotalOrder
from repro.broadcast.unordered import UnorderedBroadcast

__all__ = [
    "ASendTotalOrder",
    "BroadcastProtocol",
    "CbcastBroadcast",
    "FifoBroadcast",
    "LamportTotalOrder",
    "OSendBroadcast",
    "RecoveryAgent",
    "RstBroadcast",
    "StabilityTracker",
    "SequencerTotalOrder",
    "UnorderedBroadcast",
    "make_group",
    "protect_group",
    "track_group",
]
