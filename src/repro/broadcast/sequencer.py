"""Fixed-sequencer total order.

The simplest realisation of the "function interposed between the causal
broadcast and application layers" of Section 5.2 / Figure 4: one designated
member (the sequencer, by convention the rank-0 member of the view) assigns
consecutive global sequence numbers, and every member delivers in sequence
order.

Mechanically: every broadcast travels twice — the sender broadcasts a
``data`` envelope; the sequencer, on receiving it, broadcasts a small
``order`` envelope binding the data message's label to the next global
sequence number.  Members deliver data message *n+1* once both its payload
and its order binding have arrived and *0..n* are delivered.  The doubled
message cost and the sequencer round-trip are exactly the overhead the
paper's stable-point protocol avoids for commutative traffic.

Limitation: the sequencer is the rank-0 member of the *current* view.  A
view change that removes the sequencer mid-stream would need a binding
handoff (re-issuing unassigned orders from the new rank-0 member), which
this implementation does not attempt — quiesce data traffic around
sequencer-affecting view changes, or use
:class:`~repro.broadcast.lamport_total.LamportTotalOrder` /
:class:`~repro.broadcast.asend.ASendTotalOrder`, which have no
distinguished member.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.broadcast.base import (
    BroadcastProtocol,
    WakeKey,
    after_event,
    after_threshold,
)
from repro.errors import ProtocolError
from repro.group.membership import GroupMembership
from repro.types import Envelope, EntityId, Message, MessageId


class SequencerTotalOrder(BroadcastProtocol):
    """Total order via a rank-0 sequencer member."""

    protocol_name = "sequencer"

    ORDER_OPERATION = "__order__"

    def __init__(self, entity_id: EntityId, group: GroupMembership) -> None:
        super().__init__(entity_id, group)
        # Bindings learned from the sequencer: global seq -> data label.
        self._seq_to_msg: Dict[int, MessageId] = {}
        self._msg_to_seq: Dict[MessageId, int] = {}
        self._next_to_deliver = 0
        # Sequencer-only state.
        self._next_seq_to_assign = 0
        self.order_messages_sent = 0

    # -- roles -------------------------------------------------------------

    @property
    def sequencer_id(self) -> EntityId:
        return self.group.view.members[0]

    @property
    def is_sequencer(self) -> bool:
        return self.entity_id == self.sequencer_id

    # -- receive path ---------------------------------------------------------

    def _on_received(self, sender: EntityId, envelope: Envelope) -> None:
        if envelope.message.operation == self.ORDER_OPERATION:
            seq, data_label = envelope.message.payload
            existing = self._seq_to_msg.get(seq)
            if existing is not None and existing != data_label:
                raise ProtocolError(
                    f"conflicting order bindings for seq {seq}: "
                    f"{existing} vs {data_label}"
                )
            self._seq_to_msg[seq] = data_label
            self._msg_to_seq[data_label] = seq
            self._signal_event(("bound", data_label))
            return
        if self.is_sequencer:
            self._assign_order(envelope.msg_id)

    def _assign_order(self, data_label: MessageId) -> None:
        seq = self._next_seq_to_assign
        self._next_seq_to_assign += 1
        self.order_messages_sent += 1
        order_message = Message(
            self._allocator.next_id(), self.ORDER_OPERATION, (seq, data_label)
        )
        envelope = Envelope(order_message)
        # Keep our own copy (as `bcast` does) so lost bindings are
        # recoverable from the sequencer's repair store.
        self._envelopes_by_id[envelope.msg_id] = envelope
        self.broadcast(envelope)

    # -- delivery predicate -------------------------------------------------------

    def _deliverable(self, envelope: Envelope) -> bool:
        if envelope.message.operation == self.ORDER_OPERATION:
            # Order bindings are control traffic: absorb immediately so the
            # application never sees them held back behind data.
            return True
        seq = self._msg_to_seq.get(envelope.msg_id)
        return seq is not None and seq == self._next_to_deliver

    def _blockers(self, envelope: Envelope) -> Iterator[WakeKey]:
        if envelope.message.operation == self.ORDER_OPERATION:
            return  # control traffic is always deliverable
        seq = self._msg_to_seq.get(envelope.msg_id)
        if seq is None:
            # The binding names the position; until it arrives the data
            # message cannot be sequenced at all.
            yield after_event(("bound", envelope.msg_id))
        elif seq > self._next_to_deliver:
            yield after_threshold("next_seq", seq)

    def _on_delivered(self, envelope: Envelope) -> None:
        if envelope.message.operation == self.ORDER_OPERATION:
            return
        self._next_to_deliver += 1
        self._advance_watermark("next_seq", self._next_to_deliver)

    def _is_control(self, envelope: Envelope) -> bool:
        return envelope.message.operation == self.ORDER_OPERATION

    def _reset_volatile(self) -> None:
        # NOTE: a restarted sequencer (or a rejoiner behind a compacted
        # binding history) cannot resynchronise its global sequence — the
        # module docstring's no-failover limitation.  The chaos campaigns
        # exclude this protocol from crash schedules for that reason.
        self._seq_to_msg.clear()
        self._msg_to_seq.clear()
        self._next_to_deliver = 0
        self._next_seq_to_assign = 0

    def missing_for(self, envelope: Envelope) -> frozenset:
        """Data messages with known bindings below our delivery horizon.

        A lost *binding* cannot be named (we never learned the label), but
        a lost *data* message whose binding arrived can: anything bound to
        a sequence number in ``[next_to_deliver, seq(envelope))`` that we
        have not received.
        """
        seq = self._msg_to_seq.get(envelope.msg_id)
        if seq is None:
            return frozenset()
        return frozenset(
            self._seq_to_msg[s]
            for s in range(self._next_to_deliver, seq)
            if s in self._seq_to_msg and self._seq_to_msg[s] not in self._seen
        )

    # -- filtering control traffic out of the app-visible log ----------------------

    @property
    def app_delivered(self) -> list[MessageId]:
        """Delivered *data* labels, in total order (order bindings hidden)."""
        return [
            e.msg_id
            for e in self._delivered_envelopes
            if e.message.operation != self.ORDER_OPERATION
        ]

    def global_sequence_of(self, msg_id: MessageId) -> Optional[int]:
        return self._msg_to_seq.get(msg_id)
