"""Fixed-sequencer total order with epoch-based failover.

The simplest realisation of the "function interposed between the causal
broadcast and application layers" of Section 5.2 / Figure 4: one designated
member (the sequencer, by convention the rank-0 member of the view) assigns
consecutive global sequence numbers, and every member delivers in sequence
order.

Mechanically: every broadcast travels twice — the sender broadcasts a
``data`` envelope; the sequencer, on receiving it, broadcasts a small
``order`` envelope binding the data message's label to the next global
sequence number.  Members deliver data message *n+1* once both its payload
and its order binding have arrived and *0..n* are delivered.  The doubled
message cost and the sequencer round-trip are exactly the overhead the
paper's stable-point protocol avoids for commutative traffic.

Failover
--------

The sequencer role survives crashes and view changes through *epochs*:

* Every binding carries the **epoch** in which it was assigned — the view
  id of the assigning rank-0 member.  Conflicting bindings for the same
  sequence number resolve deterministically: the higher epoch wins; a
  same-epoch conflict is a protocol bug and stays a ``ProtocolError``.
* At every view install, the (possibly new) rank-0 member runs a
  **binding handoff** (:meth:`SequencerTotalOrder._handoff_on_install`):
  it adopts the highest contiguously-known binding, drops stale old-epoch
  bindings stranded above the first gap (the gap is permanent in the old
  epoch), and re-issues orders — in the new epoch — for every data label
  left unbound.  View synchrony makes this safe: the install is preceded
  by a flush in which every survivor settles the union of known labels,
  *including order envelopes*, so the new sequencer's binding table is a
  superset of every survivor's at the moment it re-binds.
* A label may transiently hold several bindings (a restarted sequencer
  may re-issue before recovering its pre-crash assignment); members
  deliver a label at its **lowest** bound position and skip any later
  position it also occupies once the label is settled (a *consumed*
  position).  The durable ``_assigned_high`` / ``_adopted_floor``
  counters guarantee re-issues always land on fresh positions, so the
  lowest position is the same everywhere.
* A restarted sequencer resyncs its assignment counter from those
  durable counters instead of silently restarting at 0, and re-learns
  bindings through normal recovery: order envelopes live in a dedicated
  ``<member>!ord`` label namespace that the stability tracker never
  compacts (:meth:`compactable_origin`), so binding history stays
  servable to amnesiac rejoiners via plain anti-entropy.

Residual limitation: an order binding lost at *every* member while the
sequencer stays in the view stalls the positions above it until the next
view install re-binds the gap (``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.broadcast.base import (
    BroadcastProtocol,
    WakeKey,
    after_event,
    after_threshold,
)
from repro.errors import ProtocolError
from repro.group.membership import GroupMembership, GroupView
from repro.types import Envelope, EntityId, Message, MessageId, MessageIdAllocator


class SequencerTotalOrder(BroadcastProtocol):
    """Total order via a rank-0 sequencer member, with epoch failover."""

    protocol_name = "sequencer"

    ORDER_OPERATION = "__order__"
    #: Suffix of the dedicated order-label namespace; bodies from these
    #: origins are exempt from stability compaction (bindings must stay
    #: servable to amnesiac rejoiners forever).
    ORD_SUFFIX = "!ord"

    def __init__(self, entity_id: EntityId, group: GroupMembership) -> None:
        super().__init__(entity_id, group)
        # Bindings learned so far: global seq -> (epoch, data label).
        self._bindings: Dict[int, Tuple[int, MessageId]] = {}
        # Reverse map: data label -> positions currently bound to it.
        self._label_seqs: Dict[MessageId, Set[int]] = {}
        # Position each data label was actually delivered at (volatile,
        # exposed to the sequencer-epoch invariant).
        self._delivered_at_seq: Dict[MessageId, int] = {}
        self._next_to_deliver = 0
        # Sequencer-side assignment counter (volatile; resynced from the
        # durable floors below on restart / handoff).
        self._next_seq_to_assign = 0
        # Durable: highest position this member ever assigned, and the
        # highest counter baseline it ever adopted at a handoff.  Together
        # they guarantee a restarted sequencer never re-uses a position.
        self._assigned_high = -1
        self._adopted_floor = 0
        # Durable: order labels live in their own namespace so the data
        # stream's seqnos stay contiguous for GC accounting.
        self._ord_allocator = MessageIdAllocator(f"{entity_id}{self.ORD_SUFFIX}")
        self.order_messages_sent = 0
        # Durable audit of handoffs (time/epoch/previous sequencer/work
        # done); the chaos harness derives repair latency from it.
        self.handoffs: List[dict] = []
        self._known_rank0: EntityId = group.view.members[0]
        group.subscribe(self._on_view_change)

    # -- roles -------------------------------------------------------------

    @property
    def sequencer_id(self) -> EntityId:
        return self.group.view.members[0]

    @property
    def is_sequencer(self) -> bool:
        return self.entity_id == self.sequencer_id

    @property
    def epoch(self) -> int:
        """The epoch this member would assign in: the current view id."""
        return self.group.view.view_id

    # -- binding table ------------------------------------------------------

    def _accept_binding(self, seq: int, label: MessageId, epoch: int) -> None:
        """Merge one ``(seq, label, epoch)`` binding into the table.

        Deterministic cross-epoch resolution: the higher epoch wins a
        position; a same-epoch conflict means two assignments were issued
        for one position within one sequencer tenure — a protocol bug.
        The merge is order-independent, so every member converges to the
        same table from any arrival order of the same binding set.
        """
        existing = self._bindings.get(seq)
        if existing is not None:
            ex_epoch, ex_label = existing
            if ex_label == label:
                if epoch > ex_epoch:
                    self._bindings[seq] = (epoch, label)
                return
            if epoch == ex_epoch:
                raise ProtocolError(
                    f"conflicting order bindings for seq {seq} in epoch "
                    f"{epoch}: {ex_label} vs {label}"
                )
            if epoch < ex_epoch:
                return  # stale straggler from a superseded epoch
            # Higher epoch takes the position from the old occupant.
            old_seqs = self._label_seqs.get(ex_label)
            if old_seqs is not None:
                old_seqs.discard(seq)
                if not old_seqs:
                    del self._label_seqs[ex_label]
                self._rewake(ex_label)
        self._bindings[seq] = (epoch, label)
        self._label_seqs.setdefault(label, set()).add(seq)
        self._signal_event(("bound", label))
        self._rewake(label)
        self._advance_past_consumed()
        self._advance_watermark("next_seq", self._next_to_deliver)

    def _rewake(self, label: MessageId) -> None:
        """Re-index a held data envelope whose bound position changed."""
        if self.drain_mode != "indexed":
            return
        envelope = self._pending.get(label)
        if envelope is None or label in self._queued:
            return
        self._blocked_on.pop(label, None)
        self._index(envelope)

    def _advance_past_consumed(self) -> None:
        """Skip positions whose bound label is already settled.

        A label bound at several positions (failover re-issue races)
        delivers at its lowest one; every later position it occupies is
        consumed the moment the cursor reaches it.
        """
        while True:
            binding = self._bindings.get(self._next_to_deliver)
            if binding is None or binding[1] not in self._delivered_ids:
                break
            self._next_to_deliver += 1

    def _position_of(self, label: MessageId) -> Optional[int]:
        seqs = self._label_seqs.get(label)
        return min(seqs) if seqs else None

    # -- receive path ---------------------------------------------------------

    def _on_received(self, sender: EntityId, envelope: Envelope) -> None:
        if envelope.message.operation == self.ORDER_OPERATION:
            seq, data_label, epoch = envelope.message.payload
            self._accept_binding(seq, data_label, epoch)
            return
        if self.is_sequencer and not self._label_seqs.get(envelope.msg_id):
            self._assign_order(envelope.msg_id)

    def _assign_order(self, data_label: MessageId) -> None:
        seq = self._next_seq_to_assign
        self._next_seq_to_assign = seq + 1
        if seq > self._assigned_high:
            self._assigned_high = seq
        epoch = self.epoch
        self.order_messages_sent += 1
        order_message = Message(
            self._ord_allocator.next_id(),
            self.ORDER_OPERATION,
            (seq, data_label, epoch),
        )
        envelope = Envelope(order_message)
        # Apply the binding locally first — it must hold even if the
        # network drops every broadcast copy including the self-delivery
        # hop — then send with stable-storage logging so the binding is
        # recoverable from the repair store across our own crashes.
        self._accept_binding(seq, data_label, epoch)
        self.send_logged(envelope)

    # -- failover ------------------------------------------------------------

    def _on_view_change(self, view: GroupView) -> None:
        previous = self._known_rank0
        self._known_rank0 = view.members[0]
        if view.members[0] == self.entity_id:
            # Deferred a tick: the install listener fires from inside the
            # installer's flush bookkeeping; crash-guarded, so a member
            # that is down when it becomes rank 0 skips the handoff (and
            # resyncs conservatively on restart instead).
            self.call_in(0.0, self._handoff_on_install, view.view_id, previous)

    def _handoff_on_install(self, epoch: int, previous: EntityId) -> None:
        """Binding handoff, run by the rank-0 member at a view install.

        The preceding flush settled the union of known labels (order
        envelopes included) at every survivor, so this member's table now
        covers everything any survivor knows.  Adopt the contiguous
        prefix, drop old-epoch bindings stranded above the first gap, and
        re-issue orders in the new epoch for every label left unbound —
        dropped occupants first (by old position), then received-but-
        unbound data envelopes (by label).
        """
        if self.crashed or not self.is_sequencer:
            return
        if self.group.view.view_id != epoch:
            return  # a later install superseded this handoff
        gap = self._next_to_deliver
        while gap in self._bindings:
            gap += 1
        stale = sorted(seq for seq in self._bindings if seq > gap)
        reissue: List[MessageId] = []
        for seq in stale:
            _old_epoch, label = self._bindings.pop(seq)
            seqs = self._label_seqs.get(label)
            if seqs is not None:
                seqs.discard(seq)
                if not seqs:
                    del self._label_seqs[label]
            if label in self._delivered_ids or self._label_seqs.get(label):
                continue  # settled, or still bound below the gap
            if label not in reissue:
                reissue.append(label)
        unbound = sorted(
            msg_id
            for msg_id, envelope in self._pending.items()
            if envelope.message.operation != self.ORDER_OPERATION
            and not self._label_seqs.get(msg_id)
        )
        for label in unbound:
            if label not in reissue:
                reissue.append(label)
        self._next_seq_to_assign = gap
        took_over = previous != self.entity_id
        for label in reissue:
            self._assign_order(label)
        # Durable baseline: even after amnesia, never assign below the
        # positions this tenure adopted or re-issued.
        self._adopted_floor = max(self._adopted_floor, self._next_seq_to_assign)
        if took_over or stale or reissue:
            self.handoffs.append({
                "time": self.now,
                "epoch": epoch,
                "previous": previous,
                "took_over": took_over,
                "adopted": gap,
                "reissued": len(reissue),
                "dropped": len(stale),
            })
        self._drain()

    # -- delivery predicate -------------------------------------------------------

    def _deliverable(self, envelope: Envelope) -> bool:
        if envelope.message.operation == self.ORDER_OPERATION:
            # Order bindings are control traffic: absorb immediately so the
            # application never sees them held back behind data.
            return True
        seq = self._position_of(envelope.msg_id)
        return seq is not None and seq == self._next_to_deliver

    def _blockers(self, envelope: Envelope) -> Iterator[WakeKey]:
        if envelope.message.operation == self.ORDER_OPERATION:
            return  # control traffic is always deliverable
        seq = self._position_of(envelope.msg_id)
        if seq is None:
            # The binding names the position; until it arrives the data
            # message cannot be sequenced at all.
            yield after_event(("bound", envelope.msg_id))
        elif seq > self._next_to_deliver:
            yield after_threshold("next_seq", seq)

    def _on_delivered(self, envelope: Envelope) -> None:
        if envelope.message.operation == self.ORDER_OPERATION:
            return
        self._delivered_at_seq[envelope.msg_id] = self._next_to_deliver
        self._next_to_deliver += 1
        self._advance_past_consumed()
        self._advance_watermark("next_seq", self._next_to_deliver)

    def _on_stable_skip(self, origin: EntityId, frontier: int) -> None:
        # Skipped labels count as settled, so positions bound to them are
        # consumed without delivery.
        self._advance_past_consumed()
        self._advance_watermark("next_seq", self._next_to_deliver)

    def _is_control(self, envelope: Envelope) -> bool:
        return envelope.message.operation == self.ORDER_OPERATION

    def compactable_origin(self, origin: EntityId) -> bool:
        # Binding history must stay servable forever: a compacted order
        # envelope would leave amnesiac rejoiners with an unfillable
        # position (data labels can be skipped via stable frontiers;
        # positions cannot).
        return not origin.endswith(self.ORD_SUFFIX)

    def _reset_volatile(self) -> None:
        self._bindings.clear()
        self._label_seqs.clear()
        self._delivered_at_seq.clear()
        self._next_to_deliver = 0
        # Counter resync: never re-use a position this member assigned
        # (durable `_assigned_high`) nor one below a baseline it adopted
        # at a handoff (`_adopted_floor`); bindings themselves are
        # re-learned through recovery, which the never-compacted order
        # namespace makes always possible.
        self._next_seq_to_assign = max(
            self._assigned_high + 1, self._adopted_floor
        )

    def missing_for(self, envelope: Envelope) -> frozenset:
        """Data messages with known bindings below our delivery horizon.

        A lost *binding* cannot be named (we never learned the label), but
        a lost *data* message whose binding arrived can: anything bound to
        a sequence number in ``[next_to_deliver, seq(envelope))`` that we
        have not received.
        """
        seq = self._position_of(envelope.msg_id)
        if seq is None:
            return frozenset()
        missing = set()
        for position in range(self._next_to_deliver, seq):
            binding = self._bindings.get(position)
            if binding is not None and binding[1] not in self._seen:
                missing.add(binding[1])
        return frozenset(missing)

    # -- filtering control traffic out of the app-visible log ----------------------

    @property
    def app_delivered(self) -> list[MessageId]:
        """Delivered *data* labels, in total order (order bindings hidden)."""
        return [
            e.msg_id
            for e in self._delivered_envelopes
            if e.message.operation != self.ORDER_OPERATION
        ]

    @property
    def binding_table(self) -> Dict[int, Tuple[int, MessageId]]:
        """Winning ``(epoch, label)`` per position (invariant audits)."""
        return dict(self._bindings)

    @property
    def delivered_positions(self) -> Dict[MessageId, int]:
        """Position each data label was delivered at (this incarnation)."""
        return dict(self._delivered_at_seq)

    def global_sequence_of(self, msg_id: MessageId) -> Optional[int]:
        delivered_at = self._delivered_at_seq.get(msg_id)
        if delivered_at is not None:
            return delivered_at
        return self._position_of(msg_id)
