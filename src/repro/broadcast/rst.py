"""Raynal-Schiper-Toueg (RST) causal broadcast.

The third classic causal-ordering realisation, alongside explicit graphs
(``OSend``) and vector clocks (CBCAST).  Each member maintains a matrix
``SENT[i][j]`` — how many broadcasts from ``i`` it knows have been made
visible to ``j`` — and every outgoing message carries a snapshot of it.
A message from sender ``s`` is deliverable at member ``p`` once ``p`` has
delivered at least ``SENT_msg[q][p]`` messages from every ``q``: all the
broadcasts the sender knew ``p`` was owed have arrived.

Metadata is O(n²), the worst of the three — which is exactly why the
paper's explicit graphs are interesting; ``bench_proto_overhead``
includes RST in its comparison.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator

from repro.broadcast.base import BroadcastProtocol, WakeKey, after_threshold
from repro.errors import ProtocolError
from repro.group.membership import GroupMembership
from repro.types import Envelope, EntityId, MessageId

SentMatrix = Dict[EntityId, Dict[EntityId, int]]


def _copy_matrix(matrix: SentMatrix) -> SentMatrix:
    return {row: dict(cols) for row, cols in matrix.items()}


class RstBroadcast(BroadcastProtocol):
    """Causal broadcast with sent-count matrices (RST 1991)."""

    protocol_name = "rst"

    #: Upper bound on gap labels enumerated per :meth:`missing_for` call
    #: (same rationale as :class:`~repro.broadcast.cbcast.CbcastBroadcast`).
    MISSING_ENUMERATION_CAP = 128

    def __init__(self, entity_id: EntityId, group: GroupMembership) -> None:
        super().__init__(entity_id, group)
        self._sent: SentMatrix = {}
        # Contiguous *settled prefix* per origin — not a raw delivery
        # count.  The two coincide in crash-free runs (a message's matrix
        # owes every receiver all lower seqnos from its origin, so
        # deliveries per origin happen in seqno order), but differ at an
        # amnesiac rejoiner: delivering the origin's *new* post-restart
        # send must not count toward pre-crash history it never settled,
        # or held messages owing that history unlock out of causal order.
        self._delivered_from: Dict[EntityId, int] = {}
        # Out-of-prefix delivered seqnos awaiting contiguity.
        self._delivered_seqnos: Dict[EntityId, set] = {}

    # -- matrix helpers -------------------------------------------------------

    def _get(self, matrix: SentMatrix, row: EntityId, col: EntityId) -> int:
        return matrix.get(row, {}).get(col, 0)

    def _bump(self, matrix: SentMatrix, row: EntityId, col: EntityId) -> None:
        matrix.setdefault(row, {})[col] = self._get(matrix, row, col) + 1

    def _merge(self, into: SentMatrix, other: SentMatrix) -> None:
        for row, cols in other.items():
            for col, count in cols.items():
                if count > self._get(into, row, col):
                    into.setdefault(row, {})[col] = count

    def matrix_entries(self) -> int:
        """Non-zero matrix entries currently held (metadata size proxy)."""
        return sum(
            1 for cols in self._sent.values() for c in cols.values() if c
        )

    # -- protocol hooks -----------------------------------------------------------

    def _stamp(self, envelope: Envelope, **options: object) -> Envelope:
        if options:
            raise ProtocolError(f"rst does not accept options: {options}")
        snapshot = _copy_matrix(self._sent)
        # Record this broadcast as sent to every current member (after
        # snapshotting: the constraint applies to *prior* traffic).
        for member in self.group.view.members:
            self._bump(self._sent, self.entity_id, member)
        return envelope.with_metadata(sent_matrix=snapshot)

    def _deliverable(self, envelope: Envelope) -> bool:
        matrix = envelope.metadata.get("sent_matrix")
        if not isinstance(matrix, dict):
            raise ProtocolError(
                f"envelope {envelope.msg_id} lacks an RST sent-matrix"
            )
        me = self.entity_id
        for origin in matrix:
            owed = self._get(matrix, origin, me)
            if self._delivered_from.get(origin, 0) < owed:
                return False
        return True

    def _blockers(self, envelope: Envelope) -> Iterator[WakeKey]:
        # One threshold per origin still owing us broadcasts: wake when
        # our delivered count from that origin reaches the owed count.
        matrix = envelope.metadata.get("sent_matrix", {})
        me = self.entity_id
        for origin in matrix:
            owed = self._get(matrix, origin, me)
            if self._delivered_from.get(origin, 0) < owed:
                yield after_threshold(("from", origin), owed)

    def _advance_prefix(self, origin: EntityId, floor: int = 0) -> None:
        seqnos = self._delivered_seqnos.setdefault(origin, set())
        prefix = max(self._delivered_from.get(origin, 0), floor)
        while prefix in seqnos:
            seqnos.discard(prefix)
            prefix += 1
        if prefix > self._delivered_from.get(origin, 0):
            self._delivered_from[origin] = prefix
            self._advance_watermark(("from", origin), prefix)

    def _on_delivered(self, envelope: Envelope) -> None:
        origin = envelope.msg_id.sender
        self._delivered_seqnos.setdefault(origin, set()).add(
            envelope.msg_id.seqno
        )
        self._advance_prefix(origin)
        matrix = envelope.metadata["sent_matrix"]
        self._merge(self._sent, matrix)
        # The delivered message itself is now known sent to us and (by the
        # broadcast) to every member of the sender's view.
        floor = self._delivered_from.get(origin, 0)
        for member in self.group.view.members:
            if self._get(self._sent, origin, member) < floor:
                self._sent.setdefault(origin, {})[member] = floor

    def _reset_volatile(self) -> None:
        self._sent = {}
        self._delivered_from = {}
        self._delivered_seqnos = {}

    def _on_stable_skip(self, origin: EntityId, frontier: int) -> None:
        self._advance_prefix(origin, floor=frontier)
        # Mirror the delivered floor kept by `_on_delivered`: skipped
        # prefixes were broadcast to the whole group.
        floor = self._delivered_from.get(origin, 0)
        for member in self.group.view.members:
            if self._get(self._sent, origin, member) < floor:
                self._sent.setdefault(origin, {})[member] = floor

    def _gap_labels(self, envelope: Envelope) -> Iterator[MessageId]:
        """Lazily yield unseen labels the owed counts imply we lack."""
        matrix = envelope.metadata.get("sent_matrix", {})
        me = self.entity_id
        for origin in matrix:
            owed = self._get(matrix, origin, me)
            for seqno in range(self._delivered_from.get(origin, 0), owed):
                label = MessageId(origin, seqno)
                if label not in self._seen:
                    yield label

    def missing_for(self, envelope: Envelope) -> frozenset:
        """FIFO gaps per origin implied by the owed counts.

        RST counts are per-(origin, destination) totals, and label seqnos
        are per-origin send counters, so owed broadcasts can be named.
        Enumeration is lazy and capped at :attr:`MISSING_ENUMERATION_CAP`.
        """
        return frozenset(
            itertools.islice(
                self._gap_labels(envelope), self.MISSING_ENUMERATION_CAP
            )
        )
