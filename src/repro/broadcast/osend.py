"""``OSend`` — the paper's explicit-graph causal broadcast primitive.

Section 3.1::

    OSend(Msg, G, Occurs-After(m))

The sender names the *exact* causal ancestors of each message; members
deliver a message once every named ancestor has been delivered locally.
Unlike clock-based causal broadcast, ordering reflects the application's
*semantic* causality, not whatever the sender happened to have seen
("incidental ordering", footnote 1) — so unrelated messages stay
concurrent and can be processed with maximum asynchrony.

Every member also *extracts the message dependency graph* from the traffic
(Section 3.2: the stable graph "is extractable by observing [the]
execution behaviour").  The graph is shared knowledge: because the same
labels and ancestor sets reach every member, each member's extracted graph
converges to the same DAG, which is what makes stable points locally
detectable (Section 4.2).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union

from repro.broadcast.base import BroadcastProtocol, WakeKey, after_event
from repro.errors import ProtocolError
from repro.graph.depgraph import DependencyGraph
from repro.graph.predicates import OccursAfter
from repro.group.membership import GroupMembership
from repro.types import Envelope, EntityId, MessageId, freeze_ancestors

AncestorSpec = Union[None, MessageId, Iterable[MessageId], OccursAfter]


class OSendBroadcast(BroadcastProtocol):
    """Causal broadcast with application-declared dependencies."""

    protocol_name = "osend"

    def __init__(self, entity_id: EntityId, group: GroupMembership) -> None:
        super().__init__(entity_id, group)
        self._graph = DependencyGraph()

    # -- sending ---------------------------------------------------------

    def osend(
        self,
        operation: str,
        payload: object = None,
        occurs_after: AncestorSpec = None,
        cross_deps: AncestorSpec = None,
    ) -> MessageId:
        """Broadcast ``operation`` constrained by ``Occurs-After``.

        ``occurs_after`` may be ``None`` (spontaneous message), a single
        label, an iterable of labels (AND dependency, relation (3)), or a
        prebuilt :class:`OccursAfter`.

        ``cross_deps`` declares causal ancestors that live in *other*
        replication groups (``repro.shard``): they are stamped onto the
        envelope for observation and audit, but the local delivery
        predicate ignores them — a foreign label is never delivered in
        this group, so the sender must discharge such precedence before
        issuing the send (by projecting the foreign ancestor's in-group
        causal past into ``occurs_after``; see ``docs/SHARDING.md``).
        """
        return self.bcast(
            operation, payload, occurs_after=occurs_after, cross_deps=cross_deps
        )

    def _stamp(self, envelope: Envelope, **options: object) -> Envelope:
        occurs_after = options.pop("occurs_after", None)
        cross_deps = freeze_ancestors(options.pop("cross_deps", None))
        if options:
            raise ProtocolError(f"unknown OSend options: {options}")
        if isinstance(occurs_after, OccursAfter):
            predicate = occurs_after
        else:
            predicate = OccursAfter.after(occurs_after)  # type: ignore[arg-type]
        if envelope.msg_id in predicate.ancestors:
            raise ProtocolError(
                f"{envelope.msg_id} cannot occur after itself"
            )
        if cross_deps & predicate.ancestors:
            raise ProtocolError(
                "a label cannot be both an in-group Occurs-After ancestor "
                f"and a cross-group dependency: "
                f"{sorted(map(str, cross_deps & predicate.ancestors))}"
            )
        if cross_deps:
            return envelope.with_metadata(
                occurs_after=predicate, cross_deps=cross_deps
            )
        return envelope.with_metadata(occurs_after=predicate)

    # -- receiving ---------------------------------------------------------

    def _predicate_of(self, envelope: Envelope) -> OccursAfter:
        predicate = envelope.metadata.get("occurs_after")
        if not isinstance(predicate, OccursAfter):
            raise ProtocolError(
                f"envelope {envelope.msg_id} lacks an Occurs-After predicate"
            )
        return predicate

    def _on_received(self, sender: EntityId, envelope: Envelope) -> None:
        self._graph.add(envelope.msg_id, self._predicate_of(envelope))

    def _deliverable(self, envelope: Envelope) -> bool:
        return self._predicate_of(envelope).satisfied_by(self._delivered_ids)

    def _reset_volatile(self) -> None:
        # The extracted graph is re-derived from observed traffic; the
        # stable-prefix skip needs no cursor work here because skipped
        # labels enter `_delivered_ids`, which the predicate consults.
        self._graph = DependencyGraph()

    def _blockers(self, envelope: Envelope) -> Iterator[WakeKey]:
        # The Occurs-After ancestor index: one wake per undelivered
        # ancestor, resolved by the chassis's own delivered events.
        predicate = self._predicate_of(envelope)
        for ancestor in predicate.unmet(self._delivered_ids):
            yield after_event(("delivered", ancestor))

    def missing_for(self, envelope: Envelope) -> frozenset[MessageId]:
        """Ancestors named by Occurs-After that have not been received.

        Ancestors that were received but are themselves still held back
        are excluded — NACKing them would be useless; their own blockers
        will be reported instead.
        """
        blocked = self._predicate_of(envelope).missing(self._delivered_ids)
        return frozenset(l for l in blocked if l not in self._seen)

    @staticmethod
    def cross_deps_of(envelope: Envelope) -> frozenset[MessageId]:
        """Cross-group causal ancestors stamped on ``envelope`` (if any)."""
        return envelope.metadata.get("cross_deps", frozenset())

    # -- the extracted graph -------------------------------------------------

    @property
    def graph(self) -> DependencyGraph:
        """The dependency graph extracted from observed traffic.

        Identical at every member once the same messages have been
        received (tested as an invariant).
        """
        return self._graph

    def blocking_ancestors(self, msg_id: MessageId) -> frozenset[MessageId]:
        """Ancestors still preventing delivery of a held-back message."""
        envelope = self._pending.get(msg_id)
        if envelope is None:
            return frozenset()
        return self._predicate_of(envelope).missing(self._delivered_ids)

    def last_delivered(self) -> Optional[MessageId]:
        """Label of the most recently delivered message, if any."""
        return self._delivery_log[-1].msg_id if self._delivery_log else None
