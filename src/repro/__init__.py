"""repro — Causal Broadcasting and Consistency of Distributed Shared Data.

A full reproduction of Ravindran & Shah (ICDCS 1994).  The library builds,
from the bottom up:

* a deterministic discrete-event simulator and network (:mod:`repro.sim`,
  :mod:`repro.net`),
* logical clocks and message dependency graphs (:mod:`repro.clocks`,
  :mod:`repro.graph`),
* a family of broadcast protocols sharing one chassis
  (:mod:`repro.broadcast`): unordered, FIFO, vector-clock causal (CBCAST),
  the paper's explicit-graph causal ``OSend``, the paper's epoch-batched
  total-order ``ASend``, plus sequencer and Lamport total-order baselines,
* the paper's core model (:mod:`repro.core`): commutativity specs, causal
  activities, stable points, front-end managers, replicas and assembled
  data-access systems,
* consistency checkers and metrics (:mod:`repro.analysis`), workload
  generators (:mod:`repro.workload`) and the example applications from the
  paper's motivation (:mod:`repro.apps`).

Quickstart::

    from repro import StablePointSystem, counter_machine, counter_spec

    system = StablePointSystem(
        ["a", "b", "c"], counter_machine, counter_spec(), seed=42
    )
    system.request("a", "inc")
    system.request("b", "dec")
    system.request("a", "rd")      # non-commutative: a sync point
    system.run()
    assert len(set(system.states().values())) == 1
"""

from repro.broadcast import (
    ASendTotalOrder,
    BroadcastProtocol,
    CbcastBroadcast,
    FifoBroadcast,
    LamportTotalOrder,
    OSendBroadcast,
    RecoveryAgent,
    RstBroadcast,
    SequencerTotalOrder,
    UnorderedBroadcast,
    make_group,
    protect_group,
)
from repro.clocks import LamportClock, MatrixClock, Timestamp, VectorClock
from repro.core import (
    CausalActivity,
    CausalSystem,
    CommutativitySpec,
    DataAccessSystem,
    FrontEndManager,
    Replica,
    StablePoint,
    StablePointDetector,
    StablePointSystem,
    StateMachine,
    TotalOrderSystem,
    counter_machine,
    counter_spec,
    registry_machine,
    registry_spec,
)
from repro.errors import (
    CausalityViolationError,
    ConfigurationError,
    DependencyError,
    InconsistencyDetected,
    MembershipError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.graph import DependencyGraph, OccursAfter
from repro.group import GroupMembership, GroupView, HeartbeatFailureDetector
from repro.net import (
    ConstantLatency,
    FaultPlan,
    LognormalLatency,
    Network,
    PerPairLatency,
    UniformLatency,
)
from repro.sim import RngRegistry, Scheduler, TraceRecorder
from repro.types import Envelope, EntityId, Message, MessageId

__version__ = "1.0.0"

__all__ = [
    "ASendTotalOrder",
    "BroadcastProtocol",
    "CausalActivity",
    "CausalSystem",
    "CausalityViolationError",
    "CbcastBroadcast",
    "CommutativitySpec",
    "ConfigurationError",
    "ConstantLatency",
    "DataAccessSystem",
    "DependencyError",
    "DependencyGraph",
    "Envelope",
    "EntityId",
    "FaultPlan",
    "FifoBroadcast",
    "FrontEndManager",
    "GroupMembership",
    "GroupView",
    "HeartbeatFailureDetector",
    "InconsistencyDetected",
    "LamportClock",
    "LamportTotalOrder",
    "LognormalLatency",
    "MatrixClock",
    "MembershipError",
    "Message",
    "MessageId",
    "Network",
    "OSendBroadcast",
    "OccursAfter",
    "RecoveryAgent",
    "RstBroadcast",
    "PerPairLatency",
    "ProtocolError",
    "Replica",
    "ReproError",
    "RngRegistry",
    "Scheduler",
    "SequencerTotalOrder",
    "SimulationError",
    "StablePoint",
    "StablePointDetector",
    "StablePointSystem",
    "StateMachine",
    "Timestamp",
    "TotalOrderSystem",
    "TraceRecorder",
    "UniformLatency",
    "UnorderedBroadcast",
    "VectorClock",
    "counter_machine",
    "counter_spec",
    "make_group",
    "protect_group",
    "registry_machine",
    "registry_spec",
]
