"""CLAIM-SCALE — §5.2: "Total ordering may be feasible when the group
size is not large [12]."

Fixed workload, growing group: per-message agreement cost makes the
all-ack total order scale as O(N²) messages, the sequencer doubles every
broadcast and serializes through one member, while the stable-point
protocol stays at one broadcast per request (N hops each, like any
broadcast) with latency independent of N.  Nodes have a small per-arrival
processing cost (``SERVICE_TIME``), so the O(N) arrivals-per-request of
the ack-based scheme also show up as queueing delay.

Reported series per N: protocol, broadcasts, hops, mean latency.
"""

from __future__ import annotations

import random
from typing import List

from repro.analysis.metrics import latency_summary
from repro.core.access_protocol import StablePointSystem, TotalOrderSystem
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.net.latency import UniformLatency
from repro.workload.generators import WorkloadDriver, cycle_schedule

TITLE = "CLAIM-SCALE — ordering cost as the group grows"
HEADERS = ["N", "protocol", "broadcasts", "hops", "mean latency"]

CYCLES = 3
F = 4
SIZES = (3, 6, 12, 24)
SERVICE_TIME = 0.02
APP_OPS = {"inc", "dec", "rd"}
PROTOCOLS = ("stable-point", "sequencer", "lamport")


def run_protocol(protocol: str, size: int, seed: int = 23) -> dict:
    """One (protocol, group size) cell of the sweep."""
    members = [f"m{i}" for i in range(size)]
    if protocol == "stable-point":
        system = StablePointSystem(
            members, counter_machine, counter_spec(),
            latency=UniformLatency(0.2, 2.0), seed=seed,
            service_time=SERVICE_TIME,
        )
    else:
        system = TotalOrderSystem(
            members, counter_machine, counter_spec(),
            engine=protocol, latency=UniformLatency(0.2, 2.0), seed=seed,
            service_time=SERVICE_TIME,
        )
    schedule = cycle_schedule(
        members, ["inc", "dec"], "rd",
        cycles=CYCLES, f=F, rng=random.Random(seed),
        payload_factory=lambda op, i: {"item": "x", "amount": 1},
        issuer=members[0],
    )
    WorkloadDriver(system.scheduler, system.request, schedule)
    system.run()
    stats = latency_summary(system.network.trace, operations=APP_OPS)
    return {
        "broadcasts": len(system.network.trace.of_kind("send")),
        "hops": system.network.hops_sent,
        "latency": stats.mean,
    }


def rows() -> List[list]:
    result = []
    for size in SIZES:
        for protocol in PROTOCOLS:
            r = run_protocol(protocol, size)
            result.append(
                [size, protocol, r["broadcasts"], r["hops"], r["latency"]]
            )
    return result
