"""FIG2 — Figure 2: ``R(M) = mk ≺ ‖{mi, mj}`` causal-broadcast scenario.

After ``mk``, entities process the concurrent pair ``mi ‖ mj`` in
different local orders, yet agree at the synchronizing message ``ml``
(``‖{mi, mj} ≺ ml``) — with no agreement traffic.
"""

from __future__ import annotations

from typing import List

from repro.analysis.causal_check import verify_against_graph
from repro.analysis.convergence import same_message_sets_between_sync_points
from repro.broadcast.osend import OSendBroadcast
from repro.group.membership import GroupMembership
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler

TITLE = "FIG2 — mk ≺ ‖{mi,mj} ≺ ml scenario over seeds"
HEADERS = [
    "runs",
    "diverged mid-cycle",
    "causal violations",
    "sync disagreements",
]

SEEDS = 40


def run_scenario(seed: int) -> dict:
    """One Figure 2 run; reports divergence and safety outcomes."""
    scheduler = Scheduler()
    network = Network(
        scheduler, latency=UniformLatency(0.2, 3.0), rng=RngRegistry(seed)
    )
    membership = GroupMembership(["ai", "aj", "ak"])
    stacks = {
        m: network.register(OSendBroadcast(m, membership))
        for m in ("ai", "aj", "ak")
    }
    mk = stacks["ak"].osend("mk")
    mi = stacks["ai"].osend("mi", occurs_after=mk)
    mj = stacks["aj"].osend("mj", occurs_after=mk)
    ml = stacks["ai"].osend("ml", occurs_after=[mi, mj])
    scheduler.run()
    sequences = {m: s.delivered for m, s in stacks.items()}
    pair_orders = {
        tuple(l for l in seq if l in (mi, mj)) for seq in sequences.values()
    }
    return {
        "diverged": len(pair_orders) > 1,
        "causal_violations": len(
            verify_against_graph(stacks["ai"].graph, sequences)
        ),
        "sync_disagreements": len(
            same_message_sets_between_sync_points(sequences, [ml])
        ),
    }


def summary() -> dict:
    results = [run_scenario(seed) for seed in range(SEEDS)]
    return {
        "runs": SEEDS,
        "diverged_mid_cycle": sum(r["diverged"] for r in results),
        "causal_violations": sum(r["causal_violations"] for r in results),
        "sync_disagreements": sum(r["sync_disagreements"] for r in results),
    }


def rows() -> List[list]:
    s = summary()
    return [
        [
            s["runs"],
            s["diverged_mid_cycle"],
            s["causal_violations"],
            s["sync_disagreements"],
        ]
    ]
