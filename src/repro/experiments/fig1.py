"""FIG1 — Figure 1: shared data access via message broadcast.

N entities share one datum; every access message is broadcast and "seen
by all entities concerned with the data".  Sweeps the group size and
reports transport cost and convergence.
"""

from __future__ import annotations

import random
from typing import List

from repro.analysis.convergence import states_agree
from repro.analysis.metrics import latency_summary
from repro.core.access_protocol import StablePointSystem
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.net.latency import UniformLatency
from repro.workload.generators import WorkloadDriver, cycle_schedule

TITLE = "FIG1 — shared data access via broadcast (group-size sweep)"
HEADERS = ["N", "accesses", "hops", "mean latency", "all copies agree"]

ACCESSES_PER_CYCLE = 4
CYCLES = 5
SIZES = (2, 3, 5, 8)


def run_group(size: int, seed: int = 42) -> dict:
    """One run at a given group size; returns the measured metrics."""
    members = [f"a{i}" for i in range(size)]
    system = StablePointSystem(
        members,
        counter_machine,
        counter_spec(),
        latency=UniformLatency(0.2, 2.0),
        seed=seed,
    )
    schedule = cycle_schedule(
        members,
        ["inc", "dec"],
        "rd",
        cycles=CYCLES,
        f=ACCESSES_PER_CYCLE,
        rng=random.Random(seed),
        payload_factory=lambda op, i: {"item": "x", "amount": 1},
        issuer=members[0],
    )
    WorkloadDriver(system.scheduler, system.request, schedule)
    system.run()
    stats = latency_summary(system.network.trace)
    return {
        "size": size,
        "accesses": len(schedule),
        "hops": system.network.hops_sent,
        "mean_latency": stats.mean,
        "agree": states_agree(system.states()) == [],
    }


def rows() -> List[list]:
    return [
        [r["size"], r["accesses"], r["hops"], r["mean_latency"], r["agree"]]
        for r in (run_group(n) for n in SIZES)
    ]
