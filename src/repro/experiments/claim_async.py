"""CLAIM-ASYNC — §3.2/§7: causal order buys asynchronism.

One artificially distant member; compare delivery latency and hold-back
pressure for the stable-point protocol vs both total-order engines.
"""

from __future__ import annotations

import random
from typing import List

from repro.analysis.metrics import hold_durations, latency_summary
from repro.core.access_protocol import StablePointSystem, TotalOrderSystem
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.net.latency import ConstantLatency, PerPairLatency, UniformLatency
from repro.workload.generators import WorkloadDriver, cycle_schedule

TITLE = "CLAIM-ASYNC — delivery latency under one slow member"
HEADERS = [
    "skew",
    "protocol",
    "mean latency",
    "p95 latency",
    "mean hold",
    "broadcasts",
]

MEMBERS = ["a", "b", "c", "far"]
APP_OPS = {"inc", "dec", "rd"}
CYCLES = 4
F = 6
SKEWS = (2.0, 5.0, 10.0)


def skewed_latency(skew: float) -> PerPairLatency:
    """Everyone near each other except ``far``, which is ``skew`` away."""
    pairs = {}
    for member in MEMBERS:
        if member != "far":
            pairs[(member, "far")] = ConstantLatency(skew)
            pairs[("far", member)] = ConstantLatency(skew)
    return PerPairLatency(pairs, default=UniformLatency(0.2, 1.0))


def run_protocol(protocol: str, skew: float, seed: int = 17) -> dict:
    """Run one (protocol, skew) cell of the sweep."""
    latency = skewed_latency(skew)
    if protocol == "stable-point":
        system = StablePointSystem(
            MEMBERS, counter_machine, counter_spec(),
            latency=latency, seed=seed,
        )
    else:
        system = TotalOrderSystem(
            MEMBERS, counter_machine, counter_spec(),
            engine=protocol, latency=latency, seed=seed,
        )
    schedule = cycle_schedule(
        MEMBERS, ["inc", "dec"], "rd",
        cycles=CYCLES, f=F, rng=random.Random(seed),
        arrival_rate=1.0,
        payload_factory=lambda op, i: {"item": "x", "amount": 1},
        issuer="a",
    )
    WorkloadDriver(system.scheduler, system.request, schedule)
    system.run()
    latency_stats = latency_summary(system.network.trace, operations=APP_OPS)
    hold_stats = hold_durations(system.network.trace)
    return {
        "mean": latency_stats.mean,
        "p95": latency_stats.p95,
        "hold": hold_stats.mean,
        "broadcasts": len(system.network.trace.of_kind("send")),
    }


def rows() -> List[list]:
    result = []
    for skew in SKEWS:
        for protocol in ("stable-point", "sequencer", "lamport"):
            r = run_protocol(protocol, skew)
            result.append(
                [skew, protocol, r["mean"], r["p95"], r["hold"], r["broadcasts"]]
            )
    return result
