"""CLAIM-CONCUR — §5.1: relaxed ordering yields higher concurrency.

The multiplayer card game swept over the dependency distance ``d``.
"""

from __future__ import annotations

from typing import List

from repro.apps.card_game import CardGame
from repro.net.latency import UniformLatency

TITLE = "CLAIM-CONCUR — card game: ordering distance vs concurrency"
HEADERS = [
    "d",
    "concurrent pairs",
    "completion time",
    "mean gap",
    "speedup vs strict",
]

PLAYERS = ["p0", "p1", "p2", "p3"]
ROUNDS = 4
DISTANCES = (1, 2, 3, 4)


def run_game(distance: int, seed: int = 5) -> dict:
    """One full game at a given dependency distance."""
    game = CardGame(
        PLAYERS,
        rounds=ROUNDS,
        dependency_distance=distance,
        think_time=0.1,
        latency=UniformLatency(0.2, 1.0),
        seed=seed,
    )
    game.play()
    assert game.all_windows_converged()
    times = sorted(game.delivery_times.values())
    gaps = [b - a for a, b in zip(times, times[1:])]
    return {
        "distance": distance,
        "concurrency": game.concurrency_degree(),
        "completion": game.completion_time,
        "mean_gap": sum(gaps) / len(gaps) if gaps else 0.0,
    }


def rows() -> List[list]:
    results = [run_game(d) for d in DISTANCES]
    strict_completion = results[0]["completion"]
    return [
        [
            r["distance"],
            r["concurrency"],
            r["completion"],
            r["mean_gap"],
            strict_completion / r["completion"],
        ]
        for r in results
    ]
