"""CLAIM-COMMUTE — §6.1: exploiting the commutative fraction ``f``.

Sweeps ``f`` and runs the same schedule through the stable-point protocol
and a sequencer total order.
"""

from __future__ import annotations

import random
from typing import List

from repro.analysis.convergence import (
    divergence_between_sync_points,
    states_agree,
)
from repro.analysis.metrics import latency_summary
from repro.core.access_protocol import StablePointSystem, TotalOrderSystem
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.net.latency import UniformLatency
from repro.workload.generators import WorkloadDriver, cycle_schedule

TITLE = "CLAIM-COMMUTE — stable points vs total order as f grows"
HEADERS = [
    "f",
    "protocol",
    "requests",
    "broadcasts",
    "mean latency",
    "divergence",
    "agree",
]

MEMBERS = ["a", "b", "c", "d"]
CYCLES = 4
F_VALUES = (0, 1, 2, 5, 10, 20)
APP_OPS = {"inc", "dec", "rd"}


def make_schedule(f: int, seed: int):
    return cycle_schedule(
        MEMBERS,
        ["inc", "dec"],
        "rd",
        cycles=CYCLES,
        f=f,
        rng=random.Random(seed),
        arrival_rate=2.0,
        payload_factory=lambda op, i: {"item": "x", "amount": 1},
        issuer="a",
    )


def run_protocol(protocol: str, f: int, seed: int = 33) -> dict:
    """Run one (protocol, f) cell of the sweep."""
    if protocol == "stable-point":
        system = StablePointSystem(
            MEMBERS,
            counter_machine,
            counter_spec(),
            latency=UniformLatency(0.2, 3.0),
            seed=seed,
        )
    else:
        system = TotalOrderSystem(
            MEMBERS,
            counter_machine,
            counter_spec(),
            engine="sequencer",
            latency=UniformLatency(0.2, 3.0),
            seed=seed,
        )
    WorkloadDriver(system.scheduler, system.request, make_schedule(f, seed))
    system.run()
    latency = latency_summary(system.network.trace, operations=APP_OPS)
    # Compare application-visible delivery orders (order bindings and other
    # control traffic are per-member and would inflate divergence).
    sequences = {
        member: getattr(stack, "app_delivered", stack.delivered)
        for member, stack in system.protocols.items()
    }
    return {
        "broadcasts": len(system.network.trace.of_kind("send")),
        "latency": latency.mean,
        "divergence": divergence_between_sync_points(sequences),
        "agree": states_agree(system.states()) == [],
    }


def rows() -> List[list]:
    result = []
    for f in F_VALUES:
        for protocol in ("stable-point", "total-order"):
            r = run_protocol(protocol, f)
            result.append(
                [
                    f,
                    protocol,
                    CYCLES * (f + 1),
                    r["broadcasts"],
                    r["latency"],
                    r["divergence"],
                    r["agree"],
                ]
            )
    return result
