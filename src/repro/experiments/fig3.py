"""FIG3 — Figure 3: message dependency graphs.

Builds cycle-structured graphs of growing width and reports the costs of
the graph operations the protocols lean on, including the paper's
``L <= (r+1)!`` bound on allowed event sequences.
"""

from __future__ import annotations

from typing import List

from repro.graph.depgraph import DependencyGraph
from repro.types import MessageId

TITLE = "FIG3 — dependency-graph structure and operation costs"
HEADERS = [
    "r (middles)",
    "nodes",
    "edges",
    "one-cycle extensions",
    "edges saved by reduction",
]

CYCLES = 3
WIDTHS = (1, 2, 3, 4, 5)


def build_cycles(middles: int) -> DependencyGraph:
    """CYCLES chained activities, each ``nc ≺ ‖{r middles} ≺ nc'``."""
    graph = DependencyGraph()
    previous_sync = MessageId("nc", 0)
    graph.add(previous_sync)
    for cycle in range(CYCLES):
        mids = [MessageId(f"c{cycle}", i) for i in range(middles)]
        for label in mids:
            graph.add(label, previous_sync)
        next_sync = MessageId("nc", cycle + 1)
        graph.add(next_sync, mids if mids else previous_sync)
        previous_sync = next_sync
    return graph


def one_cycle_extensions(middles: int) -> int:
    graph = DependencyGraph()
    root = MessageId("nc", 0)
    graph.add(root)
    mids = [MessageId("c", i) for i in range(middles)]
    for label in mids:
        graph.add(label, root)
    graph.add(MessageId("nc", 1), mids)
    return graph.count_linear_extensions(cap=100_000)


def rows() -> List[list]:
    result = []
    for middles in WIDTHS:
        graph = build_cycles(middles)
        reduced = graph.transitive_reduction()
        result.append(
            [
                middles,
                len(graph),
                graph.edge_count(),
                one_cycle_extensions(middles),
                graph.edge_count() - reduced.edge_count(),
            ]
        )
    return result
