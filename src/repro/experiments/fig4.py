"""FIG4 — Figure 4: total ordering vs application-specific protocols.

Spontaneous name-service traffic handled by a sequencer total order
versus causal order plus application-level staleness checks.
"""

from __future__ import annotations

import random
from typing import List

from repro.analysis.metrics import latency_summary
from repro.apps.name_service import NameServiceSystem
from repro.net.latency import UniformLatency
from repro.workload.generators import mixed_schedule

TITLE = "FIG4 — total ordering vs application-specific handling"
HEADERS = [
    "workload / engine",
    "broadcasts",
    "qry latency",
    "inconsistent",
    "flagged",
]

MEMBERS = ["n1", "n2", "n3", "n4"]
REQUESTS = 60
NAMES = ["www", "mail", "db"]
UPDATE_WEIGHTS = (0.1, 0.3)


def run_engine(engine: str, update_weight: float, seed: int = 11) -> dict:
    """One run of the qry/upd workload over one ordering engine."""
    system = NameServiceSystem(
        MEMBERS,
        engine=engine,
        latency=UniformLatency(0.2, 3.0),
        seed=seed,
    )
    rng = random.Random(seed)
    schedule = mixed_schedule(
        MEMBERS,
        {"qry": 1.0 - update_weight, "upd": update_weight},
        REQUESTS,
        rng,
        arrival_rate=2.0,
    )
    counter = 0
    for request in schedule:
        member = system.members[request.member]
        name = rng.choice(NAMES)
        if request.operation == "upd":
            counter += 1
            system.scheduler.call_at(
                request.time, member.update, name, f"v{counter}"
            )
        else:
            system.scheduler.call_at(request.time, member.query, name)
    system.run()
    latency = latency_summary(system.network.trace, operations={"qry"})
    return {
        "engine": engine,
        "broadcasts": len(system.network.trace.of_kind("send")),
        "qry_latency": latency.mean,
        "inconsistent": len(system.inconsistent_queries()),
        "flagged": len(system.flagged_queries()),
    }


def rows() -> List[list]:
    result = []
    for update_weight in UPDATE_WEIGHTS:
        for engine in ("causal", "total"):
            r = run_engine(engine, update_weight)
            result.append(
                [
                    f"{update_weight:.0%} upd / {engine}",
                    r["broadcasts"],
                    r["qry_latency"],
                    r["inconsistent"],
                    r["flagged"],
                ]
            )
    return result
