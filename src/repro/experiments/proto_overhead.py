"""PROTO-OVERHEAD — ablation: explicit graphs vs clock metadata.

Per-message metadata entries for OSend (declared ancestors), CBCAST
(vector clocks), RST (sent-matrices) and steady-state full matrix clocks,
swept over group size; plus the clock-implied (incidental) ordered pairs.
"""

from __future__ import annotations

import random
from typing import List

from repro.broadcast.cbcast import CbcastBroadcast
from repro.broadcast.rst import RstBroadcast
from repro.clocks.matrix import MatrixClock
from repro.clocks.vector import VectorClock
from repro.core.access_protocol import StablePointSystem
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.group.membership import GroupMembership
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.workload.generators import WorkloadDriver, cycle_schedule

TITLE = "PROTO-OVERHEAD — metadata cost: explicit graph vs clocks"
HEADERS = [
    "N",
    "OSend ancestors/msg",
    "vclock entries/msg",
    "RST entries/msg",
    "matrix entries (steady)",
    "clock-implied pairs",
]

CYCLES = 3
F = 5
SIZES = (3, 5, 8, 12)


def run_osend(size: int, seed: int = 13) -> dict:
    """Mean declared ancestors per message under the cycle workload."""
    members = [f"m{i}" for i in range(size)]
    system = StablePointSystem(
        members, counter_machine, counter_spec(),
        latency=UniformLatency(0.2, 2.0), seed=seed,
    )
    schedule = cycle_schedule(
        members, ["inc", "dec"], "rd",
        cycles=CYCLES, f=F, rng=random.Random(seed),
        payload_factory=lambda op, i: {"item": "x", "amount": 1},
        issuer=members[0],
    )
    WorkloadDriver(system.scheduler, system.request, schedule)
    system.run()
    graph = system.protocols[members[0]].graph
    return {"mean_ancestors": graph.edge_count() / max(1, len(graph))}


def run_cbcast(size: int, seed: int = 13) -> dict:
    """Mean vector entries per message + clock-implied ordered pairs."""
    members = [f"m{i}" for i in range(size)]
    scheduler = Scheduler()
    network = Network(
        scheduler, latency=UniformLatency(0.2, 2.0), rng=RngRegistry(seed)
    )
    membership = GroupMembership(members)
    stacks = {
        m: network.register(CbcastBroadcast(m, membership)) for m in members
    }
    rng = random.Random(seed)
    for i in range(CYCLES * (F + 1)):
        scheduler.call_at(i * 0.7, stacks[rng.choice(members)].bcast, "op")
    scheduler.run()
    entries = 0
    count = 0
    false_deps = 0
    envelopes = stacks[members[0]].delivered_envelopes
    for index, env in enumerate(envelopes):
        clock: VectorClock = env.metadata["vclock"]
        entries += clock.size_entries()
        count += 1
        for earlier in envelopes[:index]:
            if earlier.metadata["vclock"] < clock:
                false_deps += 1
    return {
        "mean_entries": entries / max(1, count),
        "clock_implied_pairs": false_deps,
    }


def run_rst(size: int, seed: int = 13) -> dict:
    """Measured RST sent-matrix entries per message."""
    members = [f"m{i}" for i in range(size)]
    scheduler = Scheduler()
    network = Network(
        scheduler, latency=UniformLatency(0.2, 2.0), rng=RngRegistry(seed)
    )
    membership = GroupMembership(members)
    stacks = {
        m: network.register(RstBroadcast(m, membership)) for m in members
    }
    rng = random.Random(seed)
    for i in range(CYCLES * (F + 1)):
        scheduler.call_at(i * 0.7, stacks[rng.choice(members)].bcast, "op")
    scheduler.run()
    entries = 0
    count = 0
    for env in stacks[members[0]].delivered_envelopes:
        matrix = env.metadata["sent_matrix"]
        entries += sum(
            1 for cols in matrix.values() for c in cols.values() if c
        )
        count += 1
    return {"mean_entries": entries / max(1, count)}


def matrix_entries(size: int) -> float:
    """Steady-state matrix clock entries after everyone has spoken."""
    members = [f"m{i}" for i in range(size)]
    clock = MatrixClock.zero()
    for member in members:
        clock = clock.record_event(member)
    for member in members:
        for other in members:
            if member != other:
                clock = clock.receive_at(member, other, clock)
    return float(clock.size_entries())


def rows() -> List[list]:
    result = []
    for size in SIZES:
        osend = run_osend(size)
        cbcast = run_cbcast(size)
        rst = run_rst(size)
        result.append(
            [
                size,
                osend["mean_ancestors"],
                cbcast["mean_entries"],
                rst["mean_entries"],
                matrix_entries(size),
                cbcast["clock_implied_pairs"],
            ]
        )
    return result
