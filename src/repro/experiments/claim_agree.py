"""CLAIM-AGREE — §4/§7: stable points need no agreement protocol.

Counts the messages each approach spends to reach one agreed value per
synchronization point: stable points (zero), per-message Lamport total
order (N-1 acks per message), and an explicit 2-phase agreement baseline
(3N messages per sync point).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.analysis.convergence import stable_points_agree, states_agree
from repro.analysis.metrics import message_cost
from repro.core.access_protocol import StablePointSystem, TotalOrderSystem
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.node import SimNode
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.types import Envelope, EntityId, Message, MessageId
from repro.workload.generators import WorkloadDriver, cycle_schedule

TITLE = "CLAIM-AGREE — agreement cost per synchronization point"
HEADERS = [
    "f",
    "protocol",
    "app bcasts",
    "extra msgs",
    "extra / sync point",
    "agreed",
]

MEMBERS = ["a", "b", "c", "d"]
CYCLES = 3
F_VALUES = (2, 5, 10)


def make_schedule(f: int, seed: int):
    return cycle_schedule(
        MEMBERS, ["inc", "dec"], "rd",
        cycles=CYCLES, f=f, rng=random.Random(seed),
        payload_factory=lambda op, i: {"item": "x", "amount": 1},
        issuer="a",
    )


def run_stable(f: int, seed: int = 3) -> dict:
    system = StablePointSystem(
        MEMBERS, counter_machine, counter_spec(),
        latency=UniformLatency(0.2, 2.0), seed=seed,
    )
    WorkloadDriver(system.scheduler, system.request, make_schedule(f, seed))
    system.run()
    cost = message_cost(system.network.trace, system.network)
    agreed = (
        stable_points_agree(system.replicas) == []
        and states_agree(system.states()) == []
    )
    return {
        "app": cost.app_broadcasts,
        "extra": cost.control_broadcasts,
        "agreed": agreed,
    }


def run_lamport(f: int, seed: int = 3) -> dict:
    system = TotalOrderSystem(
        MEMBERS, counter_machine, counter_spec(), engine="lamport",
        latency=UniformLatency(0.2, 2.0), seed=seed,
    )
    WorkloadDriver(system.scheduler, system.request, make_schedule(f, seed))
    system.run()
    cost = message_cost(system.network.trace, system.network)
    return {
        "app": cost.app_broadcasts,
        "extra": cost.control_broadcasts,
        "agreed": states_agree(system.states()) == [],
    }


class TwoPhaseMember(SimNode):
    """Minimal explicit-agreement baseline: coordinator-driven 2-phase
    value agreement, one round per sync point."""

    def __init__(self, entity_id: EntityId, members: List[EntityId]) -> None:
        super().__init__(entity_id)
        self.members = members
        self.value = 0
        self.agreed_values: List[int] = []
        self._acks: Dict[int, int] = {}
        self._seq = 0
        self.messages_sent = 0

    def propose(self, round_id: int, value: int) -> None:
        """Coordinator: PREPARE to all."""
        for member in self.members:
            self._send_control(member, "PREPARE", (round_id, value))

    def _send_control(self, member: EntityId, operation: str, payload) -> None:
        self.messages_sent += 1
        self._seq += 1
        self.send(
            member,
            Envelope(
                Message(MessageId(self.entity_id, self._seq), operation, payload)
            ),
        )

    def on_receive(self, sender: EntityId, envelope: Envelope) -> None:
        operation = envelope.message.operation
        if operation == "PREPARE":
            round_id, value = envelope.message.payload
            self.value = value
            self._send_control(sender, "ACK", round_id)
        elif operation == "ACK":
            round_id = envelope.message.payload
            self._acks[round_id] = self._acks.get(round_id, 0) + 1
            if self._acks[round_id] == len(self.members):
                for member in self.members:
                    self._send_control(member, "COMMIT", round_id)
        elif operation == "COMMIT":
            self.agreed_values.append(self.value)


def run_two_phase(f: int, seed: int = 3) -> dict:
    """Explicit agreement: one 2-phase round per sync point."""
    scheduler = Scheduler()
    network = Network(
        scheduler, latency=UniformLatency(0.2, 2.0), rng=RngRegistry(seed)
    )
    nodes = {
        m: network.register(TwoPhaseMember(m, MEMBERS)) for m in MEMBERS
    }
    coordinator = nodes["a"]
    for round_id in range(CYCLES):
        scheduler.call_at(
            round_id * 10.0, coordinator.propose, round_id, round_id + 1
        )
    scheduler.run()
    extra = sum(node.messages_sent for node in nodes.values())
    agreed = all(
        node.agreed_values == nodes["a"].agreed_values
        for node in nodes.values()
    )
    # The f commutative operations per cycle would ride on the app's own
    # broadcasts; only agreement traffic is counted here.
    return {"app": CYCLES * (f + 1), "extra": extra, "agreed": agreed}


RUNNERS = (
    ("stable-point", run_stable),
    ("lamport-total", run_lamport),
    ("2-phase", run_two_phase),
)


def rows() -> List[list]:
    result = []
    for f in F_VALUES:
        for name, runner in RUNNERS:
            r = runner(f)
            result.append(
                [f, name, r["app"], r["extra"], r["extra"] / CYCLES, r["agreed"]]
            )
    return result
