"""ABLATION-GC — stability tracking vs unbounded repair stores.

Sweeps workload length; reports retained store sizes with and without
delivered-prefix gossip, plus the gossip cost.
"""

from __future__ import annotations

from typing import List

from repro.broadcast.gc import track_group
from repro.broadcast.osend import OSendBroadcast
from repro.group.membership import GroupMembership
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler

TITLE = "ABLATION-GC — repair-store growth with/without stability gossip"
HEADERS = ["messages", "gossip", "total store", "reclaimed", "gossip bcasts"]

MEMBERS = ("a", "b", "c", "d")
GOSSIP_EVERY = 10  # messages between gossip rounds
LENGTHS = (20, 40, 80)


def run_workload(messages: int, gossip: bool, seed: int = 6) -> dict:
    """One chained workload with optional periodic stability gossip."""
    scheduler = Scheduler()
    network = Network(
        scheduler, latency=UniformLatency(0.2, 1.5), rng=RngRegistry(seed)
    )
    membership = GroupMembership(MEMBERS)
    stacks = {
        m: network.register(OSendBroadcast(m, membership)) for m in MEMBERS
    }
    trackers = track_group(stacks) if gossip else {}
    previous = None
    for i in range(messages):
        sender = MEMBERS[i % len(MEMBERS)]
        previous = stacks[sender].osend("op", occurs_after=previous)
        scheduler.run()
        if gossip and (i + 1) % GOSSIP_EVERY == 0:
            for tracker in trackers.values():
                tracker.gossip_round()
            scheduler.run()
    if gossip:  # final settling rounds so the tail becomes stable too
        for _ in range(2):
            for tracker in trackers.values():
                tracker.gossip_round()
            scheduler.run()
    store_total = sum(len(s._envelopes_by_id) for s in stacks.values())
    reclaimed = sum(t.envelopes_reclaimed for t in trackers.values())
    gossip_sends = sum(
        1
        for event in network.trace.of_kind("send")
        if event.get("operation") == "__gcvec__"
    )
    return {
        "store": store_total,
        "reclaimed": reclaimed,
        "gossip_sends": gossip_sends,
    }


def rows() -> List[list]:
    result = []
    for messages in LENGTHS:
        for gossip in (False, True):
            r = run_workload(messages, gossip)
            result.append(
                [
                    messages,
                    "on" if gossip else "off",
                    r["store"],
                    r["reclaimed"],
                    r["gossip_sends"],
                ]
            )
    return result
