"""The experiment registry: every reproduced figure, claim and ablation.

Each experiment module exposes ``TITLE``, ``HEADERS`` and ``rows()``;
the registry makes them runnable from anywhere:

* the benchmarks (``benchmarks/bench_*.py``) time them and assert the
  paper's expected shape;
* the CLI (``python -m repro experiment FIG2``) prints their tables;
* EXPERIMENTS.md records their output.

``rows()`` returns the table body for the experiment's reported series —
the same rows the paper's figure or claim describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.analysis.reporting import format_table
from repro.errors import ConfigurationError

from repro.experiments import (
    ablation_batching,
    ablation_gc,
    ablation_recovery,
    claim_agree,
    claim_async,
    claim_commute,
    claim_concur,
    claim_scale,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    proto_overhead,
)


@dataclass(frozen=True)
class Experiment:
    """One runnable experiment."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: Callable[[], List[list]]

    def table(self) -> str:
        """Run the experiment and format its table."""
        return format_table(self.headers, self.rows(), title=self.title)


def _register(module, exp_id: str) -> Experiment:
    return Experiment(
        exp_id=exp_id,
        title=module.TITLE,
        headers=module.HEADERS,
        rows=module.rows,
    )


EXPERIMENTS: Dict[str, Experiment] = {
    exp.exp_id: exp
    for exp in (
        _register(fig1, "FIG1"),
        _register(fig2, "FIG2"),
        _register(fig3, "FIG3"),
        _register(fig4, "FIG4"),
        _register(fig5, "FIG5"),
        _register(claim_commute, "CLAIM-COMMUTE"),
        _register(claim_async, "CLAIM-ASYNC"),
        _register(claim_concur, "CLAIM-CONCUR"),
        _register(claim_agree, "CLAIM-AGREE"),
        _register(claim_scale, "CLAIM-SCALE"),
        _register(proto_overhead, "PROTO-OVERHEAD"),
        _register(ablation_recovery, "ABLATION-RECOVERY"),
        _register(ablation_batching, "ABLATION-BATCH"),
        _register(ablation_gc, "ABLATION-GC"),
    )
}


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment by id (case-insensitive)."""
    experiment = EXPERIMENTS.get(exp_id.upper())
    if experiment is None:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return experiment


__all__ = ["EXPERIMENTS", "Experiment", "get_experiment"]
