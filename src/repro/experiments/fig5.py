"""FIG5 — Figure 5 / §6.2: LOCK/TFR decentralized arbitration.

Consensus on the lock-holder sequence with exactly 2M broadcasts per
cycle and zero additional agreement messages.
"""

from __future__ import annotations

from typing import List

from repro.apps.lock_service import LockService
from repro.net.latency import UniformLatency

TITLE = "FIG5 — LOCK/TFR arbitration (Figure 5 scenario, size sweep)"
HEADERS = ["M", "cycles", "bcasts/cycle", "consensus", "mean gap", "total time"]

CYCLES = 3
SIZES = (2, 3, 5, 8)


def run_service(size: int, seed: int = 21) -> dict:
    """One arbitration run at a given group size."""
    members = [chr(ord("A") + i) for i in range(size)]
    service = LockService(
        members,
        cycles=CYCLES,
        access_time=0.5,
        latency=UniformLatency(0.2, 1.5),
        seed=seed,
    )
    service.run()
    times = [t for _, __, t in service.acquisition_times]
    gaps = [b - a for a, b in zip(times, times[1:])]
    broadcasts = len(service.network.trace.of_kind("send"))
    return {
        "size": size,
        "broadcasts_per_cycle": broadcasts / CYCLES,
        "consensus": service.consensus_reached(),
        "mean_gap": sum(gaps) / len(gaps) if gaps else 0.0,
        "total_time": service.scheduler.now,
        "acquisitions": service.total_acquisitions(),
    }


def rows() -> List[list]:
    return [
        [
            r["size"],
            CYCLES,
            r["broadcasts_per_cycle"],
            r["consensus"],
            r["mean_gap"],
            r["total_time"],
        ]
        for r in (run_service(m) for m in SIZES)
    ]
