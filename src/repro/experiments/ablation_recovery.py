"""ABLATION-RECOVERY — loss recovery: NACKs + anti-entropy vs nothing.

Sweeps the drop probability; reports delivery completeness and repair
traffic with the recovery layer on and off.
"""

from __future__ import annotations

from typing import List

from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.recovery import protect_group
from repro.group.membership import GroupMembership
from repro.net.faults import FaultPlan
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler

TITLE = "ABLATION-RECOVERY — liveness under loss"
HEADERS = ["drop", "recovery", "delivered fraction", "nacks", "repairs"]

MEMBERS = ("a", "b", "c")
MESSAGES = 12
DROPS = (0.0, 0.1, 0.25, 0.4)
ANTI_ENTROPY_ROUNDS = 25


def run_chain(drop: float, recovery: bool, seed: int = 4) -> dict:
    """One causally chained workload over a lossy network."""
    scheduler = Scheduler()
    faults = FaultPlan(drop_probability=drop)
    network = Network(
        scheduler,
        latency=UniformLatency(0.2, 1.5),
        faults=faults,
        rng=RngRegistry(seed),
    )
    membership = GroupMembership(MEMBERS)
    stacks = {
        m: network.register(OSendBroadcast(m, membership)) for m in MEMBERS
    }
    agents = (
        protect_group(stacks, scan_interval=1.0, nack_backoff=2.0)
        if recovery
        else {}
    )
    previous = None
    for i in range(MESSAGES):
        sender = MEMBERS[i % len(MEMBERS)]
        previous = stacks[sender].osend("op", occurs_after=previous)
    scheduler.run(max_events=500_000)
    if recovery:
        for _ in range(ANTI_ENTROPY_ROUNDS):
            if all(len(s.delivered) == MESSAGES for s in stacks.values()):
                break
            for agent in agents.values():
                agent.anti_entropy_round()
            scheduler.run(max_events=500_000)
    delivered_pairs = sum(len(s.delivered) for s in stacks.values())
    return {
        "completeness": delivered_pairs / (MESSAGES * len(MEMBERS)),
        "nacks": sum(a.nacks_sent for a in agents.values()),
        "repairs": sum(a.repairs_sent for a in agents.values()),
    }


def rows() -> List[list]:
    result = []
    for drop in DROPS:
        for recovery in (False, True):
            r = run_chain(drop, recovery)
            result.append(
                [
                    drop,
                    "on" if recovery else "off",
                    r["completeness"],
                    r["nacks"],
                    r["repairs"],
                ]
            )
    return result
