"""ABLATION-BATCH — ASend epoch granularity.

Sweeps the batch size for a fixed message budget; larger batches
synchronize less often but each waits for its slowest member.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import latency_summary
from repro.broadcast.asend import ASendTotalOrder
from repro.group.membership import GroupMembership
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler

TITLE = "ABLATION-BATCH — ASend epoch size vs delivery latency"
HEADERS = ["batch size", "epochs", "mean latency", "p95 latency", "max holdback"]

MEMBERS = ("a", "b", "c", "d", "e", "f")
TOTAL_MESSAGES = 24
BATCH_SIZES = (1, 2, 3, 6)


def run_batched(batch: int, seed: int = 19) -> dict:
    """One run with a fixed message budget split into epochs of ``batch``."""
    assert TOTAL_MESSAGES % batch == 0
    scheduler = Scheduler()
    network = Network(
        scheduler, latency=UniformLatency(0.2, 3.0), rng=RngRegistry(seed)
    )
    membership = GroupMembership(MEMBERS)
    stacks = {
        m: network.register(
            ASendTotalOrder(m, membership, expected_per_epoch=batch)
        )
        for m in MEMBERS
    }
    epochs = TOTAL_MESSAGES // batch
    index = 0
    for epoch in range(epochs):
        for _ in range(batch):
            sender = MEMBERS[index % len(MEMBERS)]
            scheduler.call_at(
                index * 0.5, stacks[sender].asend, "op", None, epoch
            )
            index += 1
    scheduler.run()
    for stack in stacks.values():
        assert len(stack.delivered) == TOTAL_MESSAGES
    orders = [s.delivered for s in stacks.values()]
    assert all(order == orders[0] for order in orders)
    stats = latency_summary(network.trace)
    return {
        "epochs": epochs,
        "mean": stats.mean,
        "p95": stats.p95,
        "max_holdback": max(s.max_holdback for s in stacks.values()),
    }


def rows() -> List[list]:
    return [
        [batch, r["epochs"], r["mean"], r["p95"], r["max_holdback"]]
        for batch, r in ((b, run_batched(b)) for b in BATCH_SIZES)
    ]
