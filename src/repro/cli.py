"""Command-line interface: quick demos of the paper's scenarios.

Usage::

    python -m repro list
    python -m repro demo counter --seed 7
    python -m repro demo lock --members 4 --cycles 3
    python -m repro graph [--dot]

Every demo is deterministic given ``--seed``.  The full experiment suite
(with assertions and timing) lives in ``benchmarks/`` and runs with
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.analysis.convergence import stable_points_agree, states_agree
from repro.analysis.metrics import latency_summary
from repro.analysis.reporting import format_table
from repro.apps.card_game import CardGame
from repro.apps.lock_service import LockService
from repro.apps.name_service import NameServiceSystem
from repro.broadcast.osend import OSendBroadcast
from repro.core.access_protocol import StablePointSystem
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.graph.render import to_ascii, to_dot
from repro.group.membership import GroupMembership
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


def demo_counter(args: argparse.Namespace) -> int:
    """Replicated counter with a deferred read at a stable point."""
    members = [f"r{i}" for i in range(args.members)]
    system = StablePointSystem(
        members, counter_machine, counter_spec(),
        latency=UniformLatency(0.2, 2.0), seed=args.seed,
    )
    scheduler = system.scheduler
    scheduler.call_at(0.0, system.request, members[0], "inc", {"item": "x"})
    scheduler.call_at(1.0, system.request, members[-1], "dec", {"item": "x"})
    scheduler.call_at(2.0, system.request, members[0], "inc", {"item": "x"})
    answers = []
    for name, replica in system.replicas.items():
        replica.read_at_next_stable_point(
            lambda value, point, name=name: answers.append((name, value))
        )
    scheduler.call_at(3.0, system.request, members[0], "rd", {"item": "x"})
    system.run()
    print(format_table(
        ["replica", "VAL(rd)"], sorted(answers),
        title="Deferred read answers (agreed at the stable point)",
    ))
    disagreements = stable_points_agree(system.replicas)
    print(f"\nstable-point agreement: {'OK' if not disagreements else disagreements}")
    return 0


def demo_lock(args: argparse.Namespace) -> int:
    """LOCK/TFR arbitration (Figure 5)."""
    members = [chr(ord("A") + i) for i in range(args.members)]
    service = LockService(
        members, cycles=args.cycles, access_time=0.5,
        latency=UniformLatency(0.2, 1.5), seed=args.seed,
    )
    service.run()
    rows = [
        [holder, cycle, time]
        for holder, cycle, time in service.acquisition_times
    ]
    print(format_table(
        ["holder", "cycle", "time"], rows, title="Lock acquisitions",
    ))
    print(f"\nconsensus on holder sequence: {service.consensus_reached()}")
    return 0


def demo_cardgame(args: argparse.Namespace) -> int:
    """Relaxed turn ordering (Section 5.1)."""
    rows = []
    players = [f"p{i}" for i in range(args.members)]
    for distance in range(1, args.members + 1):
        game = CardGame(
            players, rounds=args.cycles, dependency_distance=distance,
            latency=UniformLatency(0.2, 1.0), seed=args.seed,
        )
        game.play()
        rows.append(
            [distance, game.concurrency_degree(), game.completion_time]
        )
    print(format_table(
        ["dependency distance", "concurrent pairs", "completion time"],
        rows,
        title="Card game: ordering relaxation vs concurrency",
    ))
    return 0


def demo_nameservice(args: argparse.Namespace) -> int:
    """Causal vs total engines for spontaneous qry/upd traffic (§5.2)."""
    import random

    rows = []
    for engine in ("causal", "total"):
        system = NameServiceSystem(
            [f"ns{i}" for i in range(args.members)],
            engine=engine,
            latency=UniformLatency(0.2, 3.0),
            seed=args.seed,
        )
        rng = random.Random(args.seed)
        time, version = 0.0, 0
        for _ in range(40):
            time += rng.expovariate(1.5)
            member = system.members[rng.choice(list(system.members))]
            if rng.random() < 0.25:
                version += 1
                system.scheduler.call_at(
                    time, member.update, "www", f"v{version}"
                )
            else:
                system.scheduler.call_at(time, member.query, "www")
        system.run()
        stats = latency_summary(system.network.trace, operations={"qry"})
        rows.append([
            engine,
            len(system.network.trace.of_kind("send")),
            stats.mean,
            len(system.inconsistent_queries()),
            len(system.flagged_queries()),
        ])
    print(format_table(
        ["engine", "broadcasts", "qry latency", "inconsistent", "flagged"],
        rows,
        title="Name service: total order vs app-specific checks",
    ))
    return 0


def demo_graph(args: argparse.Namespace) -> int:
    """Run the Figure 2 scenario and render the extracted graph."""
    scheduler = Scheduler()
    network = Network(
        scheduler, latency=UniformLatency(0.2, 3.0),
        rng=RngRegistry(args.seed),
    )
    membership = GroupMembership(["ai", "aj", "ak"])
    stacks = {
        m: network.register(OSendBroadcast(m, membership))
        for m in ("ai", "aj", "ak")
    }
    mk = stacks["ak"].osend("mk")
    mi = stacks["ai"].osend("mi", occurs_after=mk)
    mj = stacks["aj"].osend("mj", occurs_after=mk)
    ml = stacks["ai"].osend("ml", occurs_after=[mi, mj])
    scheduler.run()
    graph = stacks["ai"].graph
    if args.dot:
        print(to_dot(graph, title="Figure 2", highlight={ml}))
    else:
        print("Figure 2 scenario — graph extracted by member 'ai':\n")
        print(to_ascii(graph, highlight={ml}))
        print("\n(* marks the synchronizing message; run with --dot for Graphviz)")
    return 0


def demo_timeline(args: argparse.Namespace) -> int:
    """Run the Figure 2 scenario and draw its space-time diagram."""
    from repro.analysis.timeline import render_timeline

    scheduler = Scheduler()
    network = Network(
        scheduler, latency=UniformLatency(0.2, 3.0),
        rng=RngRegistry(args.seed),
    )
    membership = GroupMembership(["ai", "aj", "ak"])
    stacks = {
        m: network.register(OSendBroadcast(m, membership))
        for m in ("ai", "aj", "ak")
    }
    mk = stacks["ak"].osend("mk")
    mi = stacks["ai"].osend("mi", occurs_after=mk)
    mj = stacks["aj"].osend("mj", occurs_after=mk)
    stacks["ai"].osend("ml", occurs_after=[mi, mj])
    scheduler.run()
    print("Figure 2 scenario — space-time diagram:\n")
    print(render_timeline(network.trace))
    return 0


def run_chaos(args: argparse.Namespace) -> int:
    """Run seeded chaos campaigns and audit every safety invariant."""
    from repro.chaos import CHAOS_PROTOCOLS, ChaosCluster, random_campaign

    if args.protocol == "all":
        protocols = sorted(CHAOS_PROTOCOLS)
    elif args.protocol in CHAOS_PROTOCOLS:
        protocols = [args.protocol]
    else:
        print(
            f"unknown protocol {args.protocol!r}; choose from "
            f"{', '.join(sorted(CHAOS_PROTOCOLS))} or 'all'",
            file=sys.stderr,
        )
        return 2
    members = tuple(f"n{i}" for i in range(args.members))
    failures = 0
    for seed in range(args.seed, args.seed + args.seeds):
        for protocol in protocols:
            cluster = ChaosCluster(
                protocol=protocol,
                members=members,
                seed=seed,
                overlap=args.overlap,
            )
            campaign = random_campaign(
                members, seed=seed, overlap=args.overlap
            )
            result = cluster.run_campaign(campaign)
            print(result.summary())
            if not result.ok:
                failures += 1
                for violation in result.violations:
                    print(f"    {violation}")
    total = len(protocols) * args.seeds
    status = "all safe" if not failures else f"{failures} FAILED"
    mode = "overlapping" if args.overlap else "serialised"
    print(f"\nchaos: {total} {mode} campaign(s), {status}")
    return 1 if failures else 0


def run_shard(args: argparse.Namespace) -> int:
    """Run seeded sharded campaigns with the cross-shard causal audit."""
    from repro.shard import (
        SHARDED_DISTURBANCES,
        ShardedCluster,
        sharded_campaign,
    )

    if args.disturbances == "all":
        disturbances = SHARDED_DISTURBANCES
    else:
        disturbances = tuple(args.disturbances.split(","))
        unknown = set(disturbances) - set(SHARDED_DISTURBANCES)
        if unknown:
            print(
                f"unknown disturbances {sorted(unknown)}; choose from "
                f"{', '.join(SHARDED_DISTURBANCES)} or 'all'",
                file=sys.stderr,
            )
            return 2
    failures = 0
    for seed in range(args.seed, args.seed + args.seeds):
        cluster = ShardedCluster(
            shards=args.shards,
            members_per_shard=args.members,
            seed=seed,
        )
        campaign = sharded_campaign(
            cluster.shard_map,
            {s: g.members for s, g in cluster.groups.items()},
            seed=seed,
            sessions=args.sessions,
            ops_per_session=args.ops,
            cross_fraction=args.cross,
            read_fraction=args.reads,
            disturbances=disturbances,
            rebalance=not args.no_rebalance,
        )
        result = cluster.run_campaign(campaign)
        print(result.summary())
        if not result.ok:
            failures += 1
            for violation in result.violations:
                print(f"    {violation}")
    status = "all consistent" if not failures else f"{failures} FAILED"
    print(
        f"\nshard: {args.seeds} campaign(s) x {args.shards} shard(s), "
        f"{status}"
    )
    return 1 if failures else 0


def run_serve(args: argparse.Namespace) -> int:
    """Serve the sharded object space to real TCP clients."""
    import asyncio
    import signal

    from repro.serve import MultiProcServeServer, ServeServer

    async def main() -> int:
        if args.procs > 1:
            server = MultiProcServeServer(
                shards=args.shards,
                members_per_shard=args.members,
                seed=args.seed,
                procs=args.procs,
                host=args.host,
                port=args.port,
            )
        else:
            server = ServeServer(
                shards=args.shards,
                members_per_shard=args.members,
                seed=args.seed,
                host=args.host,
                port=args.port,
            )
        await server.start()
        # Explicit handlers: a backgrounded shell job inherits SIGINT as
        # ignored, so the default KeyboardInterrupt path never fires.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without unix signal support
        topology = f" across {args.procs} worker process(es)" if args.procs > 1 else ""
        print(
            f"serving {args.shards} shard(s) x {args.members} member(s)"
            f"{topology} on {args.host}:{server.port}  "
            "(SIGINT/SIGTERM drains and stops)"
        )
        serve_task = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        await server.shutdown()
        serve_task.cancel()
        try:
            await serve_task
        except asyncio.CancelledError:
            pass
        if args.stats:
            if args.procs > 1:
                print("aggregated stats:")
                for key, value in sorted(server.aggregate_stats().items()):
                    if key not in ("latency", "workers", "frontend"):
                        print(f"  {key:<22} {value}")
            else:
                print(server.metrics.render())
        if args.procs > 1:
            violations = list(server.heal_violations)
            violations += server.session_guarantee_violations()
        else:
            violations = server.check_invariants()
        status = "clean" if not violations else f"{len(violations)} VIOLATION(S)"
        print(f"drained; audit: {status}")
        for violation in violations:
            print(f"    {violation}")
        return 1 if violations else 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        return 0


def run_loadgen(args: argparse.Namespace) -> int:
    """Drive a running server with pipelined client sessions."""
    import asyncio

    from repro.serve import run_load

    async def main() -> int:
        report = await run_load(
            args.host,
            args.port,
            clients=args.clients,
            ops_per_client=args.ops,
            pipeline=args.pipeline,
            read_every=args.read_every,
            get_every=args.get_every,
            reconnect_every=args.reconnect_every,
            rate=args.rate,
            seed=args.seed,
            fetch_stats=args.stats,
            codec=args.codec,
        )
        print(report.summary())
        if args.stats and report.server_stats is not None:
            print("server stats:")
            for key, value in sorted(report.server_stats.items()):
                if key not in ("latency", "workers", "frontend"):
                    print(f"  {key:<22} {value}")
            for kind, quantiles in report.server_stats.get(
                "latency", {}
            ).items():
                print(f"  latency[{kind}]: {quantiles}")
        return 1 if report.errors else 0

    return asyncio.run(main())


def run_chaos_wire(args: argparse.Namespace) -> int:
    """Run seeded chaos-over-the-wire campaigns with black-box auditing."""
    import asyncio

    from repro.chaos.wire import WIRE_CAMPAIGNS, run_wire_campaigns

    kinds = [k.strip() for k in args.campaigns.split(",") if k.strip()]
    for kind in kinds:
        if kind not in WIRE_CAMPAIGNS:
            print(
                f"unknown campaign {kind!r} "
                f"(know {', '.join(WIRE_CAMPAIGNS)})"
            )
            return 2

    async def main() -> int:
        failures = 0
        total = 0
        for offset in range(args.runs):
            results = await run_wire_campaigns(
                kinds, args.seed + offset * 101,
                procs=args.procs, codec=args.codec,
                clients=args.clients, ops_per_client=args.ops,
            )
            for result in results:
                total += 1
                print(result.summary())
                if not result.ok:
                    failures += 1
        status = "all clean" if not failures else f"{failures} FAILED"
        print(
            f"\nchaos-wire: {total} campaign(s) "
            f"(procs={args.procs}, codec={args.codec}), {status}"
        )
        return 1 if failures else 0

    return asyncio.run(main())


DEMOS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "counter": demo_counter,
    "lock": demo_lock,
    "cardgame": demo_cardgame,
    "nameservice": demo_nameservice,
    "timeline": demo_timeline,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Demos for the causal-broadcast reproduction "
        "(Ravindran & Shah, ICDCS 1994).",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available demos")

    demo = subparsers.add_parser("demo", help="run a demo scenario")
    demo.add_argument("name", choices=sorted(DEMOS))
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--members", type=int, default=3)
    demo.add_argument("--cycles", type=int, default=3)

    graph = subparsers.add_parser(
        "graph", help="render the Figure 2 dependency graph"
    )
    graph.add_argument("--seed", type=int, default=42)
    graph.add_argument("--dot", action="store_true", help="emit Graphviz DOT")

    chaos = subparsers.add_parser(
        "chaos",
        help="run seeded fault-injection campaigns with invariant checks",
    )
    chaos.add_argument(
        "--protocol",
        default="all",
        help="protocol to torture, or 'all' (default)",
    )
    chaos.add_argument("--seed", type=int, default=1, help="first seed")
    chaos.add_argument(
        "--seeds", type=int, default=3, help="number of seeds per protocol"
    )
    chaos.add_argument(
        "--members", type=int, default=4, help="group size (>= 2)"
    )
    chaos.add_argument(
        "--overlap",
        action="store_true",
        help="let disturbances overlap (detector-driven repair mode)",
    )

    shard = subparsers.add_parser(
        "shard",
        help="run sharded campaigns with the cross-shard causal audit",
    )
    shard.add_argument(
        "--shards", type=int, default=3, help="replication groups (>= 1)"
    )
    shard.add_argument(
        "--members", type=int, default=3, help="members per shard (>= 2)"
    )
    shard.add_argument("--seed", type=int, default=1, help="first seed")
    shard.add_argument(
        "--seeds", type=int, default=3, help="number of campaigns"
    )
    shard.add_argument(
        "--sessions", type=int, default=4, help="client sessions"
    )
    shard.add_argument(
        "--ops", type=int, default=10, help="operations per session"
    )
    shard.add_argument(
        "--cross", type=float, default=0.5,
        help="fraction of writes leaving a session's home shard",
    )
    shard.add_argument(
        "--reads", type=float, default=0.2,
        help="fraction of operations that are multi-shard barrier reads",
    )
    shard.add_argument(
        "--disturbances", default="crash,partition,loss",
        help="comma-separated fault kinds, or 'all'",
    )
    shard.add_argument(
        "--no-rebalance", action="store_true",
        help="skip the mid-campaign slot move",
    )

    serve = subparsers.add_parser(
        "serve", help="serve the sharded object space over TCP"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7411,
        help="listen port (0 picks an ephemeral port)",
    )
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument(
        "--members", type=int, default=3, help="replicas per shard group"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--procs", type=int, default=1,
        help="worker processes; >1 runs each shard subset in its own "
        "process behind a routing front-end",
    )
    serve.add_argument(
        "--stats", action="store_true",
        help="print the server metrics table after drain",
    )

    loadgen = subparsers.add_parser(
        "loadgen", help="drive a running serve instance with pipelined load"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7411)
    loadgen.add_argument("--clients", type=int, default=8)
    loadgen.add_argument(
        "--ops", type=int, default=100, help="operations per client"
    )
    loadgen.add_argument(
        "--pipeline", type=int, default=8,
        help="writes kept in flight per connection",
    )
    loadgen.add_argument(
        "--read-every", type=int, default=10,
        help="every Nth op is a consistent barrier read (0 disables)",
    )
    loadgen.add_argument(
        "--get-every", type=int, default=0,
        help="every Nth op is a causally gated replica get (0 disables)",
    )
    loadgen.add_argument(
        "--reconnect-every", type=int, default=0,
        help="reconnect with the causal token every N ops (0 disables)",
    )
    loadgen.add_argument(
        "--rate", type=float, default=None,
        help="open-loop target ops/s per client (default: closed loop)",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--codec", choices=["json", "binary"], default="json",
        help="frame codec to negotiate (binary skips the JSON round-trip)",
    )
    loadgen.add_argument(
        "--stats", action="store_true",
        help="also fetch and print the server metrics snapshot",
    )

    chaos_wire = subparsers.add_parser(
        "chaos-wire",
        help="end-to-end wire fault injection with black-box "
        "causal-consistency auditing",
    )
    chaos_wire.add_argument(
        "--campaigns",
        default="disconnects,stalls,truncations,overload",
        help="comma-separated campaign kinds "
        "(disconnects, stalls, truncations, overload, workers)",
    )
    chaos_wire.add_argument("--seed", type=int, default=1, help="first seed")
    chaos_wire.add_argument(
        "--runs", type=int, default=1,
        help="repeat the campaign list this many times with shifted seeds",
    )
    chaos_wire.add_argument(
        "--procs", type=int, default=1,
        help="1 = single-process server; >1 = multi-process front-end "
        "(required for the workers campaign)",
    )
    chaos_wire.add_argument(
        "--codec", choices=["json", "binary"], default="json",
        help="frame codec the campaign clients negotiate",
    )
    chaos_wire.add_argument("--clients", type=int, default=4)
    chaos_wire.add_argument(
        "--ops", type=int, default=20, help="operations per client session"
    )

    experiment = subparsers.add_parser(
        "experiment", help="run a reproduced experiment and print its table"
    )
    experiment.add_argument(
        "exp_id",
        metavar="ID",
        help="experiment id, e.g. FIG2 or CLAIM-COMMUTE (see 'repro list')",
    )

    return parser


def main(argv: List[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        from repro.experiments import EXPERIMENTS

        print("demos:", ", ".join(sorted(DEMOS)))
        print("also: graph (Figure 2 rendering)")
        print("experiments:", ", ".join(sorted(EXPERIMENTS)))
        print("  (run with: python -m repro experiment <ID>; "
              "timed + asserted via pytest benchmarks/)")
        return 0
    if args.command == "demo":
        return DEMOS[args.name](args)
    if args.command == "graph":
        return demo_graph(args)
    if args.command == "chaos":
        return run_chaos(args)
    if args.command == "shard":
        return run_shard(args)
    if args.command == "serve":
        return run_serve(args)
    if args.command == "loadgen":
        return run_loadgen(args)
    if args.command == "chaos-wire":
        return run_chaos_wire(args)
    if args.command == "experiment":
        from repro.errors import ConfigurationError
        from repro.experiments import get_experiment

        try:
            experiment = get_experiment(args.exp_id)
        except ConfigurationError as exc:
            print(exc)
            return 1
        print(experiment.table())
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
