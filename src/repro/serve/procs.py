"""Multi-process serve mode: shard workers behind a routing front-end.

One process per shard subset, each running a full
:class:`~repro.serve.server.ServeServer` over a *subset*
:class:`~repro.shard.cluster.ShardedCluster` (same global
:class:`~repro.shard.map.ShardMap`, same per-shard seeds, so the hosted
groups are byte-identical to the single-process layout).  A front-end
acceptor process — the one that constructed
:class:`MultiProcServeServer` — speaks the ordinary serve wire protocol
to clients and routes each frame to the worker hosting its shard:

* ``put``/``get``/``chaos`` go to exactly one worker, and the reply body
  is forwarded back to the client *verbatim* — the front-end decodes
  replies only far enough to match the ``rid``, never re-encodes;
* ``hello``/``read``/``token``/``stats`` fan out to every worker and the
  front-end merges the replies (shards are disjoint across workers, so
  value maps and token frontiers merge by plain union);
* codec negotiation happens at the front-end *and* is mirrored to every
  worker, so both hops of a binary connection speak binary.

Per client connection the front-end keeps one upstream TCP connection to
each worker.  That makes routing trivial (the client's ``rid`` space is
private to its own upstreams, so no rid rewriting) and preserves the
serving layer's FIFO session semantics: frames are forwarded in arrival
order, so a session's operations reach each worker in issue order.

A worker that dies mid-run surfaces as clean ``error`` replies on every
request routed to it — never a hang — and the remaining workers keep
serving their shards.

Session-guarantee auditing stays per worker: each worker records the
wire history of its hosted shards and checks all four guarantees at
shutdown; the front-end aggregates the verdicts (and the metrics) into
one report.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ProtocolError
from repro.serve.metrics import ServeMetrics
from repro.serve.wire import (
    CODEC_BINARY,
    CODEC_JSON,
    FRAME_OVERLOAD,
    SERVE_WIRE_VERSION,
    SUPPORTED_CODECS,
    decode_frame,
    peek_frame_fields,
    read_frame_bytes,
    write_frame,
    write_frame_bytes,
)
from repro.shard.map import ShardMap

#: Seconds the front-end waits for a worker to report its port.
WORKER_START_TIMEOUT = 60.0

#: Seconds the front-end waits for a worker's shutdown report.
WORKER_STOP_TIMEOUT = 60.0


def partition_shards(shards: int, procs: int) -> List[Tuple[int, ...]]:
    """Round-robin shard→worker assignment; worker *i* gets ``s % procs == i``."""
    procs = max(1, min(procs, shards))
    return [
        tuple(s for s in range(shards) if s % procs == i)
        for i in range(procs)
    ]


def merge_tokens(
    tokens: Sequence[str],
    *,
    owners: Optional[Dict[str, int]] = None,
    on_overlap: Optional[Callable[[str], None]] = None,
) -> str:
    """Merge per-worker session tokens into one full-space token.

    Workers host disjoint shard sets, so normally each shard's frontier
    comes from exactly one token and the merge is a plain union.  If a
    shard ever shows up in more than one token (mid-rebalance races,
    misconfigured subset clusters) a blind union would *fabricate* a
    frontier no worker actually holds — and the front-end has no
    dependency graph, so it cannot prune the combined label set to a
    true per-shard ``maximal``.  Instead the shard's *owning* token
    (``owners``: shard key -> token position, derived from the routing
    table) wins outright, and the overlap is surfaced through
    ``on_overlap`` so it lands in stats rather than vanishing.  The
    owning worker's importer prunes its pairs to the maximal antichain
    when the token comes back, which is the closest sound approximation
    of ``maximal`` available off-graph.  Without an ``owners`` entry the
    overlapping shard falls back to the deduplicated union (the old
    behaviour), still reported via ``on_overlap``.
    """
    session: Optional[str] = None
    per_shard: Dict[str, Dict[int, set]] = {}
    for position, token in enumerate(tokens):
        document = json.loads(token)
        session = document.get("session", session)
        for shard_key, pairs in document.get("frontier", {}).items():
            per_shard.setdefault(shard_key, {})[position] = {
                tuple(pair) for pair in pairs
            }
    frontier: Dict[str, list] = {}
    for shard_key in sorted(per_shard):
        contributions = per_shard[shard_key]
        if len(contributions) > 1:
            if on_overlap is not None:
                on_overlap(shard_key)
            owner = None if owners is None else owners.get(shard_key)
            if owner in contributions:
                chosen = contributions[owner]
            else:
                chosen = set().union(*contributions.values())
        else:
            (chosen,) = contributions.values()
        frontier[shard_key] = sorted(list(pair) for pair in chosen)
    return json.dumps(
        {"v": 1, "session": session, "frontier": frontier},
        separators=(",", ":"),
    )


# -- the worker process ------------------------------------------------------


def _worker_main(
    control,
    shards: int,
    members_per_shard: int,
    seed: int,
    shard_ids: Tuple[int, ...],
    host: str,
    repair_interval: float,
    batch_window: float,
    read_policy: str = "replica",
    read_fallback: str = "forward",
    max_queue: Optional[int] = None,
) -> None:
    """Entry point of one shard worker (spawned process)."""
    import signal

    # A ^C lands on the whole process group; workers must survive it so
    # the front-end can still drain them and collect their reports (the
    # stop order arrives over the control pipe, not as a signal).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    asyncio.run(
        _worker_async(
            control, shards, members_per_shard, seed, shard_ids, host,
            repair_interval, batch_window, read_policy, read_fallback,
            max_queue,
        )
    )


async def _worker_async(
    control,
    shards: int,
    members_per_shard: int,
    seed: int,
    shard_ids: Tuple[int, ...],
    host: str,
    repair_interval: float,
    batch_window: float,
    read_policy: str = "replica",
    read_fallback: str = "forward",
    max_queue: Optional[int] = None,
) -> None:
    from repro.serve.server import ServeServer
    from repro.shard.cluster import ShardedCluster

    cluster = ShardedCluster(
        shards=shards,
        members_per_shard=members_per_shard,
        seed=seed,
        shard_ids=shard_ids,
        hop_events="off",
    )
    server = ServeServer(
        cluster=cluster, host=host, port=0,
        repair_interval=repair_interval, batch_window=batch_window,
        read_policy=read_policy, read_fallback=read_fallback,
        max_queue=max_queue,
    )
    await server.start()
    control.send({"port": server.port, "shards": list(shard_ids)})
    loop = asyncio.get_event_loop()
    try:
        command = await loop.run_in_executor(None, control.recv)
    except (EOFError, OSError):
        # The front-end died without saying stop; nothing left to report.
        return
    heal = bool(command.get("heal", True)) if isinstance(command, dict) else True
    await server.shutdown(heal=heal)
    try:
        control.send({
            "stats": server.metrics.snapshot(),
            "heal_violations": [str(v) for v in server.heal_violations],
            "session_guarantee_violations": [
                str(v) for v in server.session_guarantee_violations()
            ],
        })
    except (BrokenPipeError, OSError):
        pass
    # Reap connection-handler tasks before asyncio.run() tears the loop
    # down, so a reader blocked on a half-closed socket does not spew a
    # CancelledError traceback into the worker's stderr.
    leftovers = [
        task for task in asyncio.all_tasks()
        if task is not asyncio.current_task()
    ]
    for task in leftovers:
        task.cancel()
    await asyncio.gather(*leftovers, return_exceptions=True)


class _Worker:
    """Front-end-side handle on one worker process."""

    def __init__(self, index: int, shard_ids: Tuple[int, ...]) -> None:
        self.index = index
        self.shard_ids = shard_ids
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.control = None
        self.port: Optional[int] = None
        self.report: Optional[Dict[str, Any]] = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


# -- per-connection routing state --------------------------------------------


class _Route:
    """One client request in flight at one worker."""

    __slots__ = ("kind", "started", "future")

    def __init__(
        self,
        kind: str,
        started: float,
        future: "Optional[asyncio.Future]" = None,
    ) -> None:
        self.kind = kind
        self.started = started
        #: Present for fan-out verbs; ``None`` means forward verbatim.
        self.future = future


class _Upstream:
    """One client's connection to one worker."""

    __slots__ = (
        "worker", "reader", "writer", "codec", "pending", "pump", "dead",
    )

    def __init__(
        self,
        worker: _Worker,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.worker = worker
        self.reader = reader
        self.writer = writer
        self.codec = CODEC_JSON
        self.pending: Dict[int, _Route] = {}
        self.pump: Optional[asyncio.Task] = None
        self.dead = False


class _FrontConn:
    """Per-client-connection state at the front-end."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.codec = CODEC_JSON
        self.session: Optional[str] = None
        #: worker index -> upstream connection (opened at hello time).
        self.upstreams: Dict[int, _Upstream] = {}
        self.tasks: Set[asyncio.Task] = set()
        self.closed = False


# -- the front-end -----------------------------------------------------------


class MultiProcServeServer:
    """Routing front-end over per-shard-subset worker processes.

    API mirrors :class:`~repro.serve.server.ServeServer` where it
    matters (``start``/``serve_forever``/``shutdown``, ``port``,
    ``metrics``) so the load generator and the CLI can drive either.
    """

    def __init__(
        self,
        *,
        shards: int = 2,
        members_per_shard: int = 3,
        seed: int = 0,
        procs: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        repair_interval: float = 0.25,
        batch_window: float = 0.0,
        read_policy: str = "replica",
        read_fallback: str = "forward",
        max_queue: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ProtocolError("need at least one shard")
        self.read_policy = read_policy
        self.read_fallback = read_fallback
        #: Per-worker batch-queue shed threshold (None disables).
        self.max_queue = max_queue
        self.shards = shards
        self.members_per_shard = members_per_shard
        self.seed = seed
        self.host = host
        self.port = port
        self.repair_interval = repair_interval
        #: Worker-side batch coalescing window (seconds of real time).
        #: 0 batches whatever one event-loop tick delivers; a positive
        #: window parks the worker so requests staggered through the
        #: front-end hop can pile up into bigger drain cycles, at the
        #: cost of sleeping on every cycle.  Measured on the dev box the
        #: sleep costs more than the bigger batches save, so the default
        #: stays 0 — the knob is for deployments where the per-cycle
        #: fixed cost dominates (many shards per worker).
        self.batch_window = batch_window
        self.shard_map = ShardMap(shards)
        self.workers: List[_Worker] = [
            _Worker(index, shard_ids)
            for index, shard_ids in enumerate(partition_shards(shards, procs))
        ]
        #: shard id -> index of the worker hosting it.
        self.worker_of_shard: Dict[int, int] = {
            shard: worker.index
            for worker in self.workers
            for shard in worker.shard_ids
        }
        #: Token-merge authority for full fan-outs (hello/token): every
        #: worker replies in index order, so the token at position *i*
        #: belongs to worker *i* and a shard's owner is its routed worker.
        self._token_owners: Dict[str, int] = {
            str(shard): index for shard, index in self.worker_of_shard.items()
        }
        self.procs = len(self.workers)
        self.metrics = ServeMetrics()
        self.worker_reports: List[Optional[Dict[str, Any]]] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[_FrontConn] = set()
        self._draining = False

    # -- lifecycle ---------------------------------------------------------

    def _spawn_worker(self, worker: _Worker) -> None:
        context = multiprocessing.get_context("spawn")
        parent, child = context.Pipe()
        worker.control = parent
        worker.process = context.Process(
            target=_worker_main,
            args=(
                child, self.shards, self.members_per_shard, self.seed,
                worker.shard_ids, self.host, self.repair_interval,
                self.batch_window, self.read_policy, self.read_fallback,
                self.max_queue,
            ),
            daemon=True,
        )
        worker.process.start()
        child.close()

    async def _await_worker_ready(self, worker: _Worker) -> None:
        loop = asyncio.get_event_loop()
        try:
            ready = await asyncio.wait_for(
                loop.run_in_executor(None, worker.control.recv),
                WORKER_START_TIMEOUT,
            )
        except (asyncio.TimeoutError, EOFError, OSError) as exc:
            await self._kill_workers()
            raise ProtocolError(
                f"worker {worker.index} failed to start: {exc!r}"
            ) from exc
        worker.port = ready["port"]

    async def start(self) -> None:
        """Spawn the workers, collect their ports, bind the acceptor."""
        for worker in self.workers:
            self._spawn_worker(worker)
        for worker in self.workers:
            await self._await_worker_ready(worker)
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    # -- worker fault injection (chaos campaigns) --------------------------

    async def kill_worker(self, index: int) -> None:
        """SIGKILL one worker process — no drain, no goodbye.

        Everything the worker hosted is gone (workers are in-memory);
        requests routed to it get clean error replies, and new hellos
        are refused until :meth:`respawn_worker` brings it back — the
        deliberate no-partial-sessions rule.
        """
        worker = self.workers[index]
        process = worker.process
        if process is None or not process.is_alive():
            return
        loop = asyncio.get_event_loop()
        process.kill()
        await loop.run_in_executor(None, process.join, 5.0)

    async def respawn_worker(self, index: int) -> None:
        """Start a fresh (empty) process for one killed worker's shards.

        The replacement hosts the same shard ids with the same seeds but
        none of the dead worker's data — clients must treat the shards as
        reset, exactly as they would a wiped replica set.
        """
        worker = self.workers[index]
        if worker.alive:
            return
        if worker.control is not None:
            try:
                worker.control.close()
            except OSError:
                pass
        self._spawn_worker(worker)
        await self._await_worker_ready(worker)

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, *, heal: bool = True) -> None:
        """Close client connections, stop every worker, collect reports."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            try:
                write_frame(conn.writer, {"t": "bye"}, conn.codec)
                await conn.writer.drain()
            except (ConnectionError, RuntimeError):
                pass
            await self._close_conn(conn)
        loop = asyncio.get_event_loop()
        self.worker_reports = [None] * len(self.workers)
        stopped: List[_Worker] = []
        for worker in self.workers:
            if worker.process is None:
                continue
            try:
                worker.control.send({"stop": True, "heal": heal})
                stopped.append(worker)
            except (BrokenPipeError, OSError):
                pass
        for worker in stopped:
            # A crashed worker's pipe EOFs immediately; a healthy one
            # answers with its final report once its drain completes.
            try:
                report = await asyncio.wait_for(
                    loop.run_in_executor(None, worker.control.recv),
                    WORKER_STOP_TIMEOUT,
                )
                worker.report = report
                self.worker_reports[worker.index] = report
            except (asyncio.TimeoutError, EOFError, OSError):
                pass
        await self._kill_workers()

    async def _kill_workers(self) -> None:
        loop = asyncio.get_event_loop()
        for worker in self.workers:
            process = worker.process
            if process is None:
                continue
            await loop.run_in_executor(None, process.join, 5.0)
            if process.is_alive():
                process.terminate()
                await loop.run_in_executor(None, process.join, 5.0)

    # -- aggregated auditing ----------------------------------------------

    @property
    def heal_violations(self) -> List[str]:
        return [
            violation
            for report in self.worker_reports
            if report is not None
            for violation in report.get("heal_violations", [])
        ]

    def session_guarantee_violations(self) -> List[str]:
        """Union of every worker's session-guarantee verdicts."""
        return [
            violation
            for report in self.worker_reports
            if report is not None
            for violation in report.get("session_guarantee_violations", [])
        ]

    def aggregate_stats(self) -> Dict[str, Any]:
        """One coherent ``stats`` document from per-worker snapshots.

        Counters sum across workers; gauges (``inflight``,
        ``queue_depth``) sum too (they are per-worker pipelines);
        ``batch_mean`` is the ops-weighted mean.  The per-worker
        snapshots ride along untouched, as does the front-end's own
        metrics view, so nothing is lost to the aggregation.
        """
        snapshots = [
            report["stats"]
            for report in self.worker_reports
            if report is not None and "stats" in report
        ]
        return _merge_stats(
            snapshots, procs=self.procs, frontend=self.metrics.snapshot()
        )

    # -- client handling ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _FrontConn(reader, writer)
        self._connections.add(conn)
        self.metrics.bump("connections_opened")
        try:
            while True:
                body = await read_frame_bytes(reader)
                if body is None:
                    break
                # Routing needs only a handful of top-level fields; for
                # binary bodies peeking skips the full decode (the bytes
                # are forwarded verbatim anyway).  For JSON the peek IS
                # the full decode.
                frame = peek_frame_fields(
                    body, conn.codec, ("t", "rid", "key", "shard", "shards")
                )
                kind = frame.get("t")
                if kind == "bye":
                    break
                self.metrics.bump("frames_in")
                if kind == "hello":
                    await self._handle_hello(
                        conn, decode_frame(body, conn.codec)
                    )
                elif kind in ("put", "get", "chaos"):
                    await self._route_single(conn, frame, body)
                elif kind in ("read", "token", "stats"):
                    await self._route_fanout(conn, frame)
                else:
                    await self._send_error(
                        conn, frame.get("rid"),
                        f"unknown request type: {kind!r}",
                    )
        except ProtocolError as exc:
            await self._send_error(conn, None, str(exc))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            await self._close_conn(conn)

    async def _close_conn(self, conn: _FrontConn) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._connections.discard(conn)
        self.metrics.bump("connections_closed")
        for upstream in conn.upstreams.values():
            if upstream.pump is not None:
                upstream.pump.cancel()
            try:
                upstream.writer.close()
            except RuntimeError:
                pass
        for task in list(conn.tasks):
            task.cancel()
        try:
            conn.writer.close()
        except RuntimeError:
            pass

    async def _send(self, conn: _FrontConn, document: Dict[str, Any]) -> None:
        if conn.closed:
            return
        try:
            write_frame(conn.writer, document, conn.codec)
            self.metrics.bump("frames_out")
            await conn.writer.drain()
        except (ConnectionError, RuntimeError):
            pass

    async def _send_error(
        self, conn: _FrontConn, rid: Optional[int], message: str
    ) -> None:
        self.metrics.bump("errors")
        await self._send(conn, {"t": "error", "rid": rid, "error": message})

    # -- hello: connect upstreams, negotiate, merge ------------------------

    async def _handle_hello(
        self, conn: _FrontConn, frame: Dict[str, Any]
    ) -> None:
        rid = frame.get("rid")
        name = frame.get("session")
        if not isinstance(name, str) or not name:
            await self._send_error(conn, rid, "hello needs a session name")
            return
        requested = frame.get("codec", CODEC_JSON)
        if requested not in SUPPORTED_CODECS:
            self.metrics.bump("errors")
            await self._send(conn, {
                "t": "error", "rid": rid,
                "error": f"unknown codec: {requested!r}",
                "codecs": list(SUPPORTED_CODECS),
            })
            return
        if self._draining:
            await self._send_error(conn, rid, "server is draining")
            return
        try:
            await self._ensure_upstreams(conn)
        except ProtocolError as exc:
            await self._send_error(conn, rid, str(exc))
            return
        conn.session = name
        sub_hello = {
            "t": "hello", "rid": rid, "session": name,
            "token": frame.get("token"), "codec": requested,
        }
        replies = await self._gather(conn, rid, "hello", sub_hello)
        error = _first_error(replies)
        if error is not None:
            await self._send(conn, {**error, "rid": rid})
            return
        granted = [r for r in replies if r is not None]
        if len(granted) < len(self.workers):
            await self._send_error(conn, rid, "a shard worker is unavailable")
            return
        merged = {
            "t": "reply", "rid": rid, "ok": True,
            "wire_version": SERVE_WIRE_VERSION,
            "session": name,
            "shards": sum(r.get("shards", 0) for r in granted),
            "procs": self.procs,
            "codec": requested,
            "codecs": list(SUPPORTED_CODECS),
            "token": merge_tokens(
                [r["token"] for r in granted],
                owners=self._token_owners,
                on_overlap=self._note_token_overlap,
            ),
            "token_labels_dropped": sum(
                r.get("token_labels_dropped", 0) for r in granted
            ),
        }
        await self._send(conn, merged)
        # Reply went out in the old codec; both hops speak the granted
        # codec from here on (the workers switched when they replied).
        conn.codec = requested
        self.metrics.bump(f"codec_{requested}")

    async def _ensure_upstreams(self, conn: _FrontConn) -> None:
        for worker in self.workers:
            if worker.index in conn.upstreams:
                continue
            if not worker.alive or worker.port is None:
                raise ProtocolError(
                    f"worker {worker.index} (shards {list(worker.shard_ids)}) "
                    "is not running"
                )
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, worker.port
                )
            except (ConnectionError, OSError) as exc:
                raise ProtocolError(
                    f"cannot reach worker {worker.index}: {exc}"
                ) from exc
            upstream = _Upstream(worker, reader, writer)
            conn.upstreams[worker.index] = upstream
            upstream.pump = asyncio.ensure_future(self._pump(conn, upstream))

    # -- single-worker verbs: forward, reply verbatim ----------------------

    async def _route_single(
        self, conn: _FrontConn, frame: Dict[str, Any], body: bytes
    ) -> None:
        rid = frame.get("rid")
        kind = frame.get("t")
        if conn.session is None:
            await self._send_error(conn, rid, "hello required first")
            return
        if kind == "chaos":
            shard = frame.get("shard")
        else:
            key = frame.get("key")
            if not isinstance(key, str):
                await self._send_error(conn, rid, f"{kind} needs a string key")
                return
            shard = self.shard_map.shard_of(key)
        index = self.worker_of_shard.get(shard)
        if index is None:
            await self._send_error(conn, rid, f"unknown shard: {shard!r}")
            return
        upstream = conn.upstreams.get(index)
        if upstream is None or upstream.dead:
            await self._send_error(
                conn, rid,
                f"worker {index} for shard {shard} is unavailable",
            )
            return
        loop = asyncio.get_event_loop()
        upstream.pending[rid] = _Route(kind, loop.time())
        try:
            # No drain: frames are tiny and bounded by the clients'
            # pipeline depth, so the transport buffer flushes on the
            # next loop iteration without a per-frame suspension.
            write_frame_bytes(upstream.writer, body)
        except (ConnectionError, RuntimeError):
            upstream.pending.pop(rid, None)
            await self._send_error(
                conn, rid,
                f"worker {index} for shard {shard} is unavailable",
            )

    # -- fan-out verbs: split, gather, merge -------------------------------

    async def _route_fanout(
        self, conn: _FrontConn, frame: Dict[str, Any]
    ) -> None:
        rid = frame.get("rid")
        kind = frame.get("t")
        if conn.session is None:
            await self._send_error(conn, rid, "hello required first")
            return
        per_worker: Dict[int, Dict[str, Any]] = {}
        if kind == "read" and frame.get("shards") is not None:
            shards = frame.get("shards")
            if not isinstance(shards, list) or any(
                s not in self.worker_of_shard for s in shards
            ):
                await self._send_error(
                    conn, rid, f"read names unknown shards: {shards!r}"
                )
                return
            for shard in shards:
                index = self.worker_of_shard[shard]
                sub = per_worker.setdefault(
                    index, {"t": "read", "rid": rid, "shards": []}
                )
                if shard not in sub["shards"]:
                    sub["shards"].append(shard)
        else:
            for worker in self.workers:
                per_worker[worker.index] = {"t": kind, "rid": rid}
        # Sub-requests go out synchronously, in the arrival order of the
        # client's frames — session FIFO order reaches every worker
        # intact.  Only the merge waits in a task.
        futures = self._send_fanout(conn, rid, kind, per_worker)
        task = asyncio.ensure_future(
            self._merge_fanout(conn, rid, kind, futures)
        )
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)

    def _send_fanout(
        self,
        conn: _FrontConn,
        rid: Optional[int],
        kind: str,
        per_worker: Dict[int, Dict[str, Any]],
    ) -> List["asyncio.Future"]:
        loop = asyncio.get_event_loop()
        futures: List[asyncio.Future] = []
        for index, sub in sorted(per_worker.items()):
            future: asyncio.Future = loop.create_future()
            upstream = conn.upstreams.get(index)
            if upstream is None or upstream.dead:
                future.set_exception(ProtocolError(
                    f"worker {index} is unavailable"
                ))
                futures.append(future)
                continue
            upstream.pending[rid] = _Route(kind, loop.time(), future)
            try:
                write_frame(upstream.writer, sub, upstream.codec)
            except (ConnectionError, RuntimeError):
                upstream.pending.pop(rid, None)
                future.set_exception(ProtocolError(
                    f"worker {index} is unavailable"
                ))
            futures.append(future)
        return futures

    async def _gather(
        self,
        conn: _FrontConn,
        rid: Optional[int],
        kind: str,
        sub: Dict[str, Any],
    ) -> List[Optional[Dict[str, Any]]]:
        """Send ``sub`` to every worker and await all replies."""
        futures = self._send_fanout(
            conn, rid, kind, {w.index: sub for w in self.workers}
        )
        results = await asyncio.gather(*futures, return_exceptions=True)
        replies: List[Optional[Dict[str, Any]]] = []
        for result in results:
            if isinstance(result, BaseException):
                replies.append({
                    "t": "error", "error": str(result),
                })
            else:
                replies.append(result)
        return replies

    async def _merge_fanout(
        self,
        conn: _FrontConn,
        rid: Optional[int],
        kind: str,
        futures: List["asyncio.Future"],
    ) -> None:
        results = await asyncio.gather(*futures, return_exceptions=True)
        replies: List[Dict[str, Any]] = []
        for result in results:
            if isinstance(result, BaseException):
                await self._send_error(conn, rid, str(result))
                return
            replies.append(result)
        error = _first_error(replies)
        if error is not None:
            self.metrics.bump(
                "sheds" if error.get("t") == FRAME_OVERLOAD else "errors"
            )
            await self._send(conn, {**error, "rid": rid})
            return
        if kind == "read":
            merged = self._merge_read(rid, replies)
        elif kind == "token":
            merged = {
                "t": "reply", "rid": rid, "ok": True,
                "token": merge_tokens(
                    [r["token"] for r in replies],
                    owners=self._token_owners,
                    on_overlap=self._note_token_overlap,
                ),
            }
        else:  # stats
            merged = {
                "t": "reply", "rid": rid, "ok": True,
                "stats": _merge_stats(
                    [r["stats"] for r in replies],
                    procs=self.procs,
                    frontend=self.metrics.snapshot(),
                ),
            }
        await self._send(conn, merged)

    def _note_token_overlap(self, shard_key: str) -> None:
        """A shard appeared in two worker tokens — count it, loudly."""
        self.metrics.bump("token_shard_overlaps")

    def _merge_read(
        self, rid: Optional[int], replies: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        value: Dict[str, Any] = {}
        shards: List[int] = []
        barrier_labels: Dict[str, list] = {}
        tokens: List[str] = []
        #: shard key -> position in ``tokens`` of its *serving* worker's
        #: token (a subset read only gathers some workers, so positions
        #: are derived from each reply's own shard list rather than the
        #: global routing table).
        owners: Dict[str, int] = {}
        rounds = 0
        for reply in replies:
            value.update(reply.get("value", {}))
            shards.extend(reply.get("shards", []))
            barrier_labels.update(reply.get("barrier_labels", {}))
            rounds = max(rounds, reply.get("rounds", 0))
            if "token" in reply:
                for shard in reply.get("shards", []):
                    owners[str(shard)] = len(tokens)
                tokens.append(reply["token"])
        return {
            "t": "reply", "rid": rid, "ok": True,
            "value": value,
            "shards": sorted(shards),
            "rounds": rounds,
            "barrier_labels": barrier_labels,
            "token": merge_tokens(
                tokens, owners=owners, on_overlap=self._note_token_overlap
            ),
        }

    # -- the reply pump ----------------------------------------------------

    async def _pump(self, conn: _FrontConn, upstream: _Upstream) -> None:
        """Read one worker's replies: resolve gathers, forward the rest."""
        try:
            while True:
                body = await read_frame_bytes(upstream.reader)
                if body is None:
                    break
                codec_in = upstream.codec
                # Pass-through replies only need matching up by rid; the
                # full decode is reserved for gathered (fan-out) replies.
                fields = peek_frame_fields(body, codec_in, ("t", "rid"))
                kind_in = fields.get("t")
                if kind_in == "bye":
                    break
                route = upstream.pending.pop(fields.get("rid"), None)
                if route is None:
                    continue
                frame = fields
                if route.future is not None and codec_in == CODEC_BINARY:
                    frame = decode_frame(body, codec_in)
                if route.kind == "hello" and kind_in != "error":
                    # Mirror the worker's codec switch before the next
                    # frame on this upstream is decoded.
                    upstream.codec = frame.get("codec", CODEC_JSON)
                loop = asyncio.get_event_loop()
                millis = (loop.time() - route.started) * 1000.0
                self.metrics.record_latency(route.kind, millis)
                self.metrics.record_latency("op", millis)
                if route.future is not None:
                    if not route.future.done():
                        route.future.set_result(frame)
                    continue
                # Pass-through reply: the worker's bytes are already in
                # the client's codec — forward them verbatim.
                if not conn.closed:
                    try:
                        # No drain: reply frames are as bounded as the
                        # requests that provoked them.
                        write_frame_bytes(conn.writer, body)
                        self.metrics.bump("frames_out")
                    except (ConnectionError, RuntimeError):
                        pass
        except (ProtocolError, ConnectionError):
            pass
        finally:
            upstream.dead = True
            await self._fail_pending(conn, upstream)

    async def _fail_pending(
        self, conn: _FrontConn, upstream: _Upstream
    ) -> None:
        """A worker connection died: answer everything it still owed."""
        pending, upstream.pending = upstream.pending, {}
        message = (
            f"worker {upstream.worker.index} "
            f"(shards {list(upstream.worker.shard_ids)}) connection lost"
        )
        for rid, route in pending.items():
            if route.future is not None:
                if not route.future.done():
                    route.future.set_exception(ProtocolError(message))
            else:
                await self._send_error(conn, rid, message)


def _first_error(
    replies: Sequence[Optional[Dict[str, Any]]],
) -> Optional[Dict[str, Any]]:
    """First non-success reply (error or overload) to forward, or None.

    An overloaded worker sheds with a parseable ``overload`` frame; the
    fan-out cannot merge a partial answer, so the front-end forwards the
    shed verbatim — the client backs off and retries the whole verb.
    """
    for reply in replies:
        if reply is not None and reply.get("t") in ("error", FRAME_OVERLOAD):
            return dict(reply)
    return None


def _merge_stats(
    snapshots: Sequence[Dict[str, Any]],
    *,
    procs: int,
    frontend: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Sum worker metric snapshots into one coherent report."""
    merged: Dict[str, Any] = {"procs": procs}
    total_batches = 0
    total_batched = 0.0
    batch_max: Optional[int] = None
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if key in ("latency", "batch_mean", "batch_max"):
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                merged[key] = merged.get(key, 0) + value
        batches = snapshot.get("batches", 0) or 0
        mean = snapshot.get("batch_mean")
        if batches and mean is not None:
            total_batches += batches
            total_batched += batches * mean
        if snapshot.get("batch_max") is not None:
            batch_max = max(batch_max or 0, snapshot["batch_max"])
    merged["batch_mean"] = (
        total_batched / total_batches if total_batches else None
    )
    merged["batch_max"] = batch_max
    merged["workers"] = {
        str(index): snapshot for index, snapshot in enumerate(snapshots)
    }
    if frontend is not None:
        merged["frontend"] = frontend
    return merged
