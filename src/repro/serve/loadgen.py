"""Multi-connection load generator for the serving layer.

Drives N concurrent :class:`~repro.serve.client.ServeClient` sessions
against one server in either of two shapes:

* **closed loop** (the default): each client keeps up to ``pipeline``
  writes outstanding and issues the next as soon as one completes —
  throughput is whatever the server sustains at that concurrency;
* **open loop**: each client targets ``rate`` operations per second,
  sleeping between issues regardless of completions — latency under a
  fixed offered load, the shape that exposes queueing.

Every ``read_every``-th operation is a consistent barrier read (a sync
point for the session's pipeline), and every ``get_every``-th is a
pipelined causally gated ``get`` of a previously written key — the
replica-routed read path.  With ``reconnect_every`` set, a client
periodically drains its pipeline, disconnects, and reconnects presenting
its causal token — exercising exactly the session-continuity path the
tokens exist for.

Latencies are measured client-side (request write to reply dispatch) and
reported as p50/p99 over all clients; the report also folds in the
server's own metrics snapshot when ``fetch_stats`` is set, so one object
carries both sides of the wire.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.serve.client import (
    DEFAULT_REQUEST_TIMEOUT,
    ServeClient,
    ServeError,
    ServeOverload,
    reconnect,
)
from repro.serve.metrics import percentile
from repro.serve.wire import CODEC_JSON


@dataclass
class LoadReport:
    """Outcome of one load run (plus the server's view, if fetched)."""

    clients: int
    pipeline: int
    ops: int
    reads: int
    errors: int
    reconnects: int
    elapsed: float
    gets: int = 0
    retries: int = 0
    #: Degradation counters: how much the run had to heal or shed.
    timeouts: int = 0
    overloads: int = 0
    latencies_ms: List[float] = field(repr=False, default_factory=list)
    server_stats: Optional[Dict[str, object]] = field(
        repr=False, default=None
    )

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def p50_ms(self) -> Optional[float]:
        return percentile(self.latencies_ms, 0.50)

    @property
    def p99_ms(self) -> Optional[float]:
        return percentile(self.latencies_ms, 0.99)

    def summary(self) -> str:
        p50 = f"{self.p50_ms:.2f}" if self.p50_ms is not None else "-"
        p99 = f"{self.p99_ms:.2f}" if self.p99_ms is not None else "-"
        return (
            f"clients={self.clients} pipeline={self.pipeline} "
            f"ops={self.ops} reads={self.reads} gets={self.gets} "
            f"errors={self.errors} reconnects={self.reconnects} "
            f"timeouts={self.timeouts} overloads={self.overloads} "
            f"{self.ops_per_sec:.0f} ops/s p50={p50}ms p99={p99}ms"
        )


async def _drive_client(
    host: str,
    port: int,
    name: str,
    *,
    ops: int,
    pipeline: int,
    read_every: int,
    get_every: int,
    reconnect_every: int,
    key_space: int,
    rate: Optional[float],
    seed: int,
    codec: str,
    request_timeout: Optional[float],
    report: LoadReport,
) -> None:
    rng = random.Random(seed)
    client = ServeClient(
        host, port, name, codec=codec, request_timeout=request_timeout
    )
    await client.connect()
    outstanding: List[asyncio.Future] = []
    written: List[str] = []
    issued = 0

    async def reap(down_to: int) -> None:
        nonlocal outstanding
        while len(outstanding) > down_to:
            future = outstanding.pop(0)
            started = getattr(future, "_lg_started", None)
            try:
                reply = await future
                if isinstance(reply, dict) and reply.get("t") == "retry":
                    # Reject-with-retry on a pipelined get: let the
                    # client's retrying get absorb the wait (rare).
                    report.retries += 1
                    await client.get(getattr(future, "_lg_key"))
                if started is not None:
                    report.latencies_ms.append(
                        (time.perf_counter() - started) * 1000.0
                    )
                report.ops += 1
                if getattr(future, "_lg_get", False):
                    report.gets += 1
            except ServeOverload:
                report.overloads += 1
            except ServeError:
                report.errors += 1

    try:
        while issued < ops:
            issued += 1
            if read_every and issued % read_every == 0:
                # A barrier read is a session sync point: drain the
                # pipeline first, then await the read itself.
                await reap(0)
                started = time.perf_counter()
                try:
                    await client.read()
                    report.latencies_ms.append(
                        (time.perf_counter() - started) * 1000.0
                    )
                    report.ops += 1
                    report.reads += 1
                except ServeOverload:
                    report.overloads += 1
                except ServeError:
                    report.errors += 1
            elif get_every and issued % get_every == 0 and written:
                # A causally gated get of a key this session wrote —
                # pipelined like a put; the replica routing serves it.
                key = rng.choice(written)
                future = client.get_submit(key)
                future._lg_started = time.perf_counter()  # type: ignore[attr-defined]
                future._lg_get = True  # type: ignore[attr-defined]
                future._lg_key = key  # type: ignore[attr-defined]
                outstanding.append(future)
                await reap(pipeline - 1)
            else:
                key = f"k{rng.randrange(key_space)}"
                written.append(key)
                future = client.put(key, f"{name}:{issued}")
                future._lg_started = time.perf_counter()  # type: ignore[attr-defined]
                outstanding.append(future)
                await reap(pipeline - 1)
            if reconnect_every and issued % reconnect_every == 0:
                await reap(0)
                client = await reconnect(client)
                report.reconnects += 1
            if rate is not None and rate > 0:
                await asyncio.sleep(rng.expovariate(rate))
        await reap(0)
    finally:
        report.timeouts += client.timeouts
        await client.close()


async def run_load(
    host: str,
    port: int,
    *,
    clients: int = 8,
    ops_per_client: int = 50,
    pipeline: int = 8,
    read_every: int = 10,
    get_every: int = 0,
    reconnect_every: int = 0,
    key_space: int = 64,
    rate: Optional[float] = None,
    seed: int = 0,
    session_prefix: str = "load",
    fetch_stats: bool = False,
    codec: str = CODEC_JSON,
    request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
) -> LoadReport:
    """Run the load shape and return a :class:`LoadReport`."""
    report = LoadReport(
        clients=clients, pipeline=pipeline,
        ops=0, reads=0, errors=0, reconnects=0, elapsed=0.0,
    )
    started = time.perf_counter()
    await asyncio.gather(*[
        _drive_client(
            host, port, f"{session_prefix}{index}",
            ops=ops_per_client,
            pipeline=max(1, pipeline),
            read_every=read_every,
            get_every=get_every,
            reconnect_every=reconnect_every,
            key_space=key_space,
            rate=rate,
            seed=seed * 10_007 + index,
            codec=codec,
            request_timeout=request_timeout,
            report=report,
        )
        for index in range(clients)
    ])
    report.elapsed = time.perf_counter() - started
    if fetch_stats:
        probe = ServeClient(host, port, f"{session_prefix}-probe", codec=codec)
        await probe.connect()
        report.server_stats = await probe.stats()
        await probe.close()
    return report
