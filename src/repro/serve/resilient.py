"""Self-healing wrapper around :class:`~repro.serve.client.ServeClient`.

:class:`ResilientClient` is what a real application would run against a
faulty network: it owns a plain :class:`ServeClient` underneath and adds
the recovery loop the inner client deliberately does not have —

* **token-carrying reconnect**: when the connection dies (EOF, reset,
  deadline poison), a fresh connection is opened presenting the newest
  causal token, so the resumed session's floor covers everything already
  acknowledged; the reconnect is invisible to the session guarantees;
* **exponential backoff with jitter** on reconnect and on server
  overload frames, capped, so a flapping server sees a thinning herd
  rather than a synchronized stampede;
* **safe replay**: every put carries a session-unique ``opid``, and the
  server applies each opid at most once — so a put whose fate is unknown
  (connection lost between send and ack) can be *retried verbatim*
  without risking double-application.  Reads are idempotent and are
  simply retried.
* **degradation counters** (timeouts, reconnects, replays, overloads,
  backoff sleeps) so campaigns and load generators can report how much
  healing the wire demanded.

Every verb resolves or raises within a bounded time: per-attempt
deadlines come from the inner client, and the attempt budget
(``op_attempts``) bounds the healing loop.  The wrapper is one-op-at-a-
time by design — pipelining plus transparent replay is a recipe for
reordering writes; callers that want pipelining use ``ServeClient``
directly and do their own bookkeeping.

If a :class:`~repro.analysis.wire_history.WireRecorder` is attached, the
client records exactly what it *observed*: puts on ack only (a put whose
reply never arrived may or may not have happened — recording it would
assert knowledge the client does not have), gets and barrier reads on
completion.  Those recordings are what the black-box auditor checks.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, Optional, Sequence

from repro.serve.client import (
    DEFAULT_REQUEST_TIMEOUT,
    ServeClient,
    ServeError,
    ServeOverload,
)
from repro.serve.wire import CODEC_JSON

#: Default attempt budget per operation (first try + retries).
DEFAULT_OP_ATTEMPTS = 6

#: Default backoff base / cap, in seconds.
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0


class GaveUp(ServeError):
    """An operation exhausted its attempt budget without an answer."""


class ResilientClient:
    """A serve client that survives cuts, stalls, and overload."""

    def __init__(
        self,
        host: str,
        port: int,
        session: str,
        *,
        token: Optional[str] = None,
        codec: str = CODEC_JSON,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        op_attempts: int = DEFAULT_OP_ATTEMPTS,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        seed: Optional[int] = None,
        recorder: Optional[Any] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.session = session
        self.codec = codec
        self.request_timeout = request_timeout
        self.op_attempts = op_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.recorder = recorder
        self._token = token
        self._inner: Optional[ServeClient] = None
        self._connect_lock = asyncio.Lock()
        self._ever_connected = False
        self._rng = random.Random(
            seed if seed is not None else f"resilient:{session}"
        )
        self._next_opid = 0
        #: How much healing this client had to do.
        self.counters: Dict[str, int] = {
            "attempts": 0,
            "timeouts": 0,
            "reconnects": 0,
            "replays": 0,
            "overloads": 0,
            "backoffs": 0,
            "retries": 0,
            "errors": 0,
        }

    # -- connection management ---------------------------------------------

    @property
    def token(self) -> Optional[str]:
        inner = self._inner
        if inner is not None and inner.token is not None:
            return inner.token
        return self._token

    @property
    def connected(self) -> bool:
        inner = self._inner
        return (
            inner is not None
            and not inner._recv_dead
            and inner._writer is not None
        )

    async def connect(self) -> None:
        await self._ensure_connected()

    async def close(self) -> None:
        inner = self._inner
        self._inner = None
        if inner is not None:
            if inner.token is not None:
                self._token = inner.token
            await inner.close()

    async def _ensure_connected(self) -> ServeClient:
        """Return a live inner client, (re)connecting with backoff."""
        inner = self._inner
        if inner is not None and not inner._recv_dead:
            return inner
        async with self._connect_lock:
            # Another waiter may have reconnected while we queued.
            inner = self._inner
            if inner is not None and not inner._recv_dead:
                return inner
            if inner is not None:
                if inner.token is not None:
                    self._token = inner.token
                await inner.close()
                self._inner = None
            last_error: Optional[Exception] = None
            for attempt in range(self.op_attempts):
                fresh = ServeClient(
                    self.host, self.port, self.session,
                    token=self._token, codec=self.codec,
                    request_timeout=self.request_timeout,
                )
                try:
                    await fresh.connect()
                except (ServeError, ConnectionError, OSError) as exc:
                    last_error = exc
                    try:
                        await fresh.close()
                    except (ServeError, ConnectionError, OSError):
                        pass
                    await self._backoff(attempt)
                    continue
                self._inner = fresh
                if self._ever_connected:
                    self.counters["reconnects"] += 1
                self._ever_connected = True
                return fresh
            raise GaveUp(
                f"could not reconnect after {self.op_attempts} attempts: "
                f"{last_error}"
            )

    async def _backoff(self, attempt: int) -> None:
        """Exponential backoff with full jitter, capped."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        self.counters["backoffs"] += 1
        await asyncio.sleep(self._rng.uniform(ceiling / 2, ceiling))

    # -- the healing loop --------------------------------------------------

    async def _call(self, make_call, *, describe: str) -> Dict[str, Any]:
        """Run one operation to completion through faults.

        ``make_call`` receives the live inner client and returns an
        awaitable for one attempt.  On a dead/poisoned connection the
        loop reconnects (token-carrying) and replays; on overload it
        backs off for the server-suggested interval (jittered).
        """
        last_error: Optional[Exception] = None
        for attempt in range(self.op_attempts):
            self.counters["attempts"] += 1
            try:
                inner = await self._ensure_connected()
            except GaveUp as exc:
                raise GaveUp(f"{describe}: {exc}") from exc
            try:
                result = await make_call(inner)
                if attempt:
                    self.counters["replays"] += 1
                return result
            except ServeOverload as exc:
                self.counters["overloads"] += 1
                last_error = exc
                self.counters["backoffs"] += 1
                await asyncio.sleep(
                    exc.retry_after * (0.5 + self._rng.random())
                )
            except (ServeError, ConnectionError, OSError) as exc:
                # Connection-level failure (cut, poison, deadline) — the
                # op's fate is unknown; reconnect and replay.  Safe for
                # puts because of opid idempotency; reads are idempotent.
                last_error = exc
                if inner.timeouts:
                    self.counters["timeouts"] += inner.timeouts
                    inner.timeouts = 0
                await self._backoff(attempt)
        self.counters["errors"] += 1
        raise GaveUp(
            f"{describe}: gave up after {self.op_attempts} attempts "
            f"({last_error})"
        )

    # -- verbs -------------------------------------------------------------

    async def put(self, key: str, value: object) -> Dict[str, Any]:
        """At-most-once write, retried until acknowledged or budget spent."""
        opid = f"{self.session}#{self._next_opid}"
        self._next_opid += 1
        reply = await self._call(
            lambda inner: inner.put_wait(key, value, opid=opid),
            describe=f"put {key!r}",
        )
        if self.recorder is not None:
            self.recorder.put(key, value)
        return reply

    async def get(self, key: str) -> Optional[object]:
        """Causally gated read through faults."""
        value = await self._call(
            lambda inner: inner.get(key),
            describe=f"get {key!r}",
        )
        if self.recorder is not None:
            self.recorder.get(key, value)
        return value

    async def read(
        self, shards: Optional[Sequence[int]] = None
    ) -> Dict[str, Any]:
        """Consistent barrier read through faults."""
        reply = await self._call(
            lambda inner: inner.read(shards),
            describe="read",
        )
        if self.recorder is not None:
            values = reply.get("value")
            if isinstance(values, dict):
                self.recorder.read(values)
        return reply

    async def fetch_token(self) -> str:
        token = await self._call(
            lambda inner: inner.fetch_token(),
            describe="token",
        )
        self._token = token
        return token

    async def stats(self) -> Dict[str, Any]:
        return await self._call(
            lambda inner: inner.stats(),
            describe="stats",
        )

    async def chaos(
        self, action: str, shard: int, member: Optional[str] = None
    ) -> Dict[str, Any]:
        return await self._call(
            lambda inner: inner.chaos(action, shard, member),
            describe=f"chaos {action}",
        )
