"""Length-prefixed JSON framing for the serving layer.

One frame = a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  Frame documents are flat dicts whose values go through the
envelope codec's structural value encoding
(:func:`repro.runtime.codec.encode_value`), so :class:`~repro.types.
MessageId` labels and label sets cross the client wire exactly as they
cross the replica wire.

Request documents carry ``t`` (the request type) and ``rid`` (a
client-chosen correlation id echoed on the reply) — nothing in the
framing layer assumes requests are answered in order, which is what
makes pipelining possible.  Unknown document fields are preserved by
:func:`decode_frame` and ignored by the server, mirroring the envelope
codec's forward-compatibility rule.

The frame length is bounded (:data:`MAX_FRAME`): a malformed or
malicious length prefix must not make the server allocate gigabytes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from repro.errors import ProtocolError
from repro.runtime.codec import decode_value, encode_value

#: Serving-wire schema version, carried by ``hello`` replies.
SERVE_WIRE_VERSION = 1

#: Upper bound on a single frame's payload, in bytes.
MAX_FRAME = 4 * 1024 * 1024

_LENGTH_BYTES = 4


def encode_frame(document: Dict[str, Any]) -> bytes:
    """Serialize one frame document to length-prefixed bytes."""
    encoded = {key: encode_value(value) for key, value in document.items()}
    body = json.dumps(encoded, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return len(body).to_bytes(_LENGTH_BYTES, "big") + body


def decode_frame(body: bytes) -> Dict[str, Any]:
    """Parse one frame body (the bytes after the length prefix)."""
    try:
        document = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed wire frame: {exc}") from exc
    if not isinstance(document, dict):
        raise ProtocolError("malformed wire frame: not an object")
    return {key: decode_value(value) for key, value in document.items()}


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF in the middle of a frame, an oversized length prefix, or a body
    that does not parse all raise :class:`ProtocolError` — the connection
    is unusable past any of them.
    """
    try:
        prefix = await reader.readexactly(_LENGTH_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    length = int.from_bytes(prefix, "big")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_frame(body)


def write_frame(
    writer: asyncio.StreamWriter, document: Dict[str, Any]
) -> None:
    """Queue one frame on ``writer`` (callers await ``writer.drain()``)."""
    writer.write(encode_frame(document))
