"""Length-prefixed framing for the serving layer (JSON or binary).

One frame = a 4-byte big-endian length followed by that many body bytes.
A connection's *codec* decides how the body encodes the frame document:

* ``json`` (the default, and the only form PR-5 clients speak): UTF-8
  JSON of a flat dict whose values go through the envelope codec's
  structural value encoding (:func:`repro.runtime.codec.encode_value`),
  so :class:`~repro.types.MessageId` labels and label sets cross the
  client wire exactly as they cross the replica wire.
* ``binary``: a magic byte then the document as tag-encoded pairs via
  :func:`repro.runtime.codec.encode_value_binary` — no JSON string
  round-trip, no structural ``__mid__`` wrapping.

Both codecs carry the same document domain; which one a connection
speaks is negotiated in the ``hello`` exchange (the hello itself is
always JSON — see :mod:`repro.serve.server`).

Request documents carry ``t`` (the request type) and ``rid`` (a
client-chosen correlation id echoed on the reply) — nothing in the
framing layer assumes requests are answered in order, which is what
makes pipelining possible.  Unknown document fields are preserved by
:func:`decode_frame` and ignored by the server, mirroring the envelope
codec's forward-compatibility rule.  Besides ``reply``/``error``, a
``get`` may be answered with a :data:`FRAME_RETRY` frame (reject-with-
retry under replica routing), and replica-served replies carry the
:data:`FIELD_REPLICA`/``shard`` fields so clients can stick to a warm
replica.

The frame length is bounded (:data:`MAX_FRAME`): a malformed or
malicious length prefix must not make the server allocate gigabytes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional

from repro.errors import ProtocolError
from repro.runtime.codec import (
    _read_value,
    _read_varint,
    _skip_value,
    decode_value,
    decode_value_binary,
    encode_value,
    encode_value_binary,
)

#: Serving-wire schema version, carried by ``hello`` replies.
SERVE_WIRE_VERSION = 1

#: Upper bound on a single frame's payload, in bytes.
MAX_FRAME = 4 * 1024 * 1024

_LENGTH_BYTES = 4

#: Codec names as they appear in the ``hello`` negotiation.
CODEC_JSON = "json"
CODEC_BINARY = "binary"
SUPPORTED_CODECS = (CODEC_JSON, CODEC_BINARY)

#: Frame type of a reject-with-retry answer to a ``get``: no replica of
#: the key's shard currently covers the session's causal floor, so the
#: server asks the client to resubmit after ``retry_after`` seconds
#: (fields: ``rid``, ``key``, ``shard``, ``retry_after``).  Only sent
#: when the server runs with ``read_fallback="retry"``.
FRAME_RETRY = "retry"

#: Default client back-off carried by ``retry`` frames, in seconds.
DEFAULT_RETRY_AFTER = 0.05

#: Frame type of a load-shed answer: the server refused (queue full) or
#: abandoned (deadline passed before execution) the request instead of
#: stalling silently.  Fields: ``rid``, ``reason`` (``"queue-full"`` or
#: ``"deadline"``), ``retry_after`` (suggested back-off, seconds) and
#: ``queue_depth``.  Nothing was applied — the request is safe to retry.
FRAME_OVERLOAD = "overload"

#: Default client back-off carried by ``overload`` frames, in seconds.
#: Longer than :data:`DEFAULT_RETRY_AFTER` — overload means *shed load*,
#: not *try the next replica*.
DEFAULT_OVERLOAD_RETRY_AFTER = 0.1

#: Reply fields identifying which member answered a replica-routed get:
#: ``replica`` (the member id) and ``shard`` (its shard).  Clients may
#: echo ``replica`` on later gets of the same key as a sticky-routing
#: hint; the server honours it only while that member stays eligible.
FIELD_REPLICA = "replica"

#: First body byte of every binary frame — catches a peer that switched
#: codecs out of step (a JSON body can never start with 0xB1).
_BINARY_MAGIC = 0xB1


def encode_frame_body(
    document: Dict[str, Any], codec: str = CODEC_JSON
) -> bytes:
    """Serialize a frame document to body bytes (no length prefix)."""
    if codec == CODEC_JSON:
        encoded = {
            key: encode_value(value) for key, value in document.items()
        }
        return json.dumps(encoded, separators=(",", ":")).encode("utf-8")
    if codec == CODEC_BINARY:
        return bytes([_BINARY_MAGIC]) + encode_value_binary(dict(document))
    raise ProtocolError(f"unknown frame codec: {codec!r}")


def encode_frame(document: Dict[str, Any], codec: str = CODEC_JSON) -> bytes:
    """Serialize one frame document to length-prefixed bytes."""
    body = encode_frame_body(document, codec)
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return len(body).to_bytes(_LENGTH_BYTES, "big") + body


def decode_frame(body: bytes, codec: str = CODEC_JSON) -> Dict[str, Any]:
    """Parse one frame body (the bytes after the length prefix)."""
    if codec == CODEC_JSON:
        try:
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"malformed wire frame: {exc}") from exc
        if not isinstance(document, dict):
            raise ProtocolError("malformed wire frame: not an object")
        return {key: decode_value(value) for key, value in document.items()}
    if codec == CODEC_BINARY:
        if not body or body[0] != _BINARY_MAGIC:
            raise ProtocolError("malformed wire frame: bad binary magic")
        document = decode_value_binary(body[1:])
        if not isinstance(document, dict):
            raise ProtocolError("malformed wire frame: not an object")
        return document
    raise ProtocolError(f"unknown frame codec: {codec!r}")


#: Binary dict tag — the first body byte after the magic in every
#: well-formed binary frame (frame documents are dicts).
_BINARY_DICT_TAG = 0x0A


def peek_frame_fields(
    body: bytes, codec: str, fields: tuple
) -> Dict[str, Any]:
    """Extract just ``fields`` from a frame body, skipping the rest.

    For the JSON codec this is a full decode (the C parser is faster
    than any Python-level skipping).  For the binary codec it walks the
    top-level document, materialising only the wanted keys and skipping
    other values byte-wise — the multi-process front-end uses it to
    route requests and match replies without paying a full decode.
    Missing fields are simply absent from the result.
    """
    if codec != CODEC_BINARY:
        return decode_frame(body, codec)
    if not body or body[0] != _BINARY_MAGIC or len(body) < 3:
        raise ProtocolError("malformed wire frame: bad binary magic")
    if body[1] != _BINARY_DICT_TAG:
        raise ProtocolError("malformed wire frame: not an object")
    try:
        count, offset = _read_varint(body, 2)
        found: Dict[str, Any] = {}
        remaining = len(fields)
        for _ in range(count):
            key, offset = _read_value(body, offset)
            if key in fields:
                found[key], offset = _read_value(body, offset)
                remaining -= 1
                if not remaining:
                    break
            else:
                offset = _skip_value(body, offset)
        return found
    except IndexError as exc:
        raise ProtocolError("malformed wire frame: truncated") from exc


async def read_frame(
    reader: asyncio.StreamReader, codec: str = CODEC_JSON
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF in the middle of a frame, an oversized length prefix, or a body
    that does not parse all raise :class:`ProtocolError` — the connection
    is unusable past any of them.
    """
    body = await read_frame_bytes(reader)
    if body is None:
        return None
    return decode_frame(body, codec)


async def read_frame_bytes(
    reader: asyncio.StreamReader,
) -> Optional[bytes]:
    """Read one raw frame body; ``None`` on clean EOF at a boundary.

    The codec-agnostic half of :func:`read_frame` — the multi-process
    front-end uses it to forward bodies verbatim without re-encoding.
    """
    try:
        prefix = await reader.readexactly(_LENGTH_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    length = int.from_bytes(prefix, "big")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc


def write_frame(
    writer: asyncio.StreamWriter,
    document: Dict[str, Any],
    codec: str = CODEC_JSON,
) -> None:
    """Queue one frame on ``writer`` (callers await ``writer.drain()``)."""
    writer.write(encode_frame(document, codec))


def write_frame_bytes(writer: asyncio.StreamWriter, body: bytes) -> None:
    """Queue one raw frame body (re-adding the length prefix)."""
    writer.write(len(body).to_bytes(_LENGTH_BYTES, "big") + body)


class FrameBuffer:
    """Incremental splitter for length-prefixed frame streams.

    Feed it arbitrary byte chunks; it yields complete frame *bodies* in
    arrival order.  Purely synchronous, so transports that are not
    asyncio streams (worker pipes, tests) can reuse the exact framing
    rules — including the :data:`MAX_FRAME` bound.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._offset = 0

    def feed(self, chunk: bytes) -> List[bytes]:
        self._buffer += chunk
        bodies: List[bytes] = []
        while True:
            available = len(self._buffer) - self._offset
            if available < _LENGTH_BYTES:
                break
            start = self._offset
            length = int.from_bytes(
                self._buffer[start:start + _LENGTH_BYTES], "big"
            )
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"incoming frame of {length} bytes exceeds "
                    f"MAX_FRAME={MAX_FRAME}"
                )
            if available < _LENGTH_BYTES + length:
                break
            body_start = start + _LENGTH_BYTES
            bodies.append(bytes(self._buffer[body_start:body_start + length]))
            self._offset = body_start + length
        if self._offset and self._offset == len(self._buffer):
            self._buffer.clear()
            self._offset = 0
        elif self._offset > 65536:
            del self._buffer[:self._offset]
            self._offset = 0
        return bodies

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer) - self._offset
