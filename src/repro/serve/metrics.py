"""Per-server counters and latency quantiles for the serving layer.

Deliberately dependency-free: counters are plain ints, latencies go into
a bounded ring (newest :data:`RESERVOIR` samples win), and quantiles are
computed on demand by sorting the ring — exact over the retained window,
cheap at serving scale.  ``snapshot()`` is the single source for the
wire ``stats`` reply, ``repro serve --stats``, the load generator's
report, and the benchmark JSON, so every surface shows the same numbers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

#: Latency samples retained per kind (newest win).
RESERVOIR = 4096


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """The ``q``-quantile (0..1) of ``samples`` by nearest-rank, or None.

    Nearest-rank on the sorted sample: exact for the retained window,
    and monotone in ``q`` — good enough for serving dashboards without
    inventing an interpolation scheme.
    """
    if not samples:
        return None
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class ServeMetrics:
    """Counters + latency reservoirs for one server (or one load run)."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {
            "connections_opened": 0,
            "connections_closed": 0,
            "frames_in": 0,
            "frames_out": 0,
            "ops": 0,
            "puts": 0,
            "puts_dropped": 0,
            "puts_deduped": 0,
            "sheds": 0,
            "deadline_drops": 0,
            "gets": 0,
            "reads": 0,
            "reads_failed": 0,
            "errors": 0,
            "batches": 0,
            "batched_ops": 0,
            "admission_waits": 0,
            "tokens_imported": 0,
            "token_labels_dropped": 0,
        }
        #: op kind -> service-time ring, in milliseconds.
        self._latency: Dict[str, Deque[float]] = {}
        #: batch-size ring (ops per flush cycle).
        self._batch_sizes: Deque[int] = deque(maxlen=RESERVOIR)
        #: live gauges, maintained by the server.
        self.inflight = 0
        self.queue_depth = 0

    # -- recording ---------------------------------------------------------

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def record_latency(self, kind: str, millis: float) -> None:
        ring = self._latency.get(kind)
        if ring is None:
            ring = self._latency[kind] = deque(maxlen=RESERVOIR)
        ring.append(millis)

    def record_batch(self, size: int) -> None:
        self.bump("batches")
        self.bump("batched_ops", size)
        self._batch_sizes.append(size)

    # -- reporting ---------------------------------------------------------

    def latency_quantiles(self, kind: str = "op") -> Dict[str, Optional[float]]:
        samples = list(self._latency.get(kind, ()))
        return {
            "p50_ms": percentile(samples, 0.50),
            "p99_ms": percentile(samples, 0.99),
            "max_ms": max(samples) if samples else None,
            "samples": len(samples),
        }

    def snapshot(self) -> Dict[str, object]:
        """One JSON-compatible dict with every counter, gauge and quantile."""
        sizes = list(self._batch_sizes)
        return {
            **self.counters,
            "inflight": self.inflight,
            "queue_depth": self.queue_depth,
            "batch_mean": (sum(sizes) / len(sizes)) if sizes else None,
            "batch_max": max(sizes) if sizes else None,
            "latency": {
                kind: self.latency_quantiles(kind)
                for kind in sorted(self._latency)
            },
        }

    def render(self) -> str:
        """Human-readable multi-line summary (``repro serve --stats``)."""
        snap = self.snapshot()
        lines: List[str] = ["serve metrics:"]
        for key in sorted(self.counters):
            lines.append(f"  {key:<22} {self.counters[key]}")
        lines.append(f"  {'inflight':<22} {snap['inflight']}")
        lines.append(f"  {'queue_depth':<22} {snap['queue_depth']}")
        if snap["batch_mean"] is not None:
            lines.append(
                f"  {'batch size':<22} mean={snap['batch_mean']:.1f} "
                f"max={snap['batch_max']}"
            )
        for kind, quantiles in snap["latency"].items():
            if quantiles["samples"]:
                lines.append(
                    f"  {kind + ' latency':<22} "
                    f"p50={quantiles['p50_ms']:.2f}ms "
                    f"p99={quantiles['p99_ms']:.2f}ms "
                    f"(n={quantiles['samples']})"
                )
        return "\n".join(lines)
