"""Wire-facing serving layer over the sharded causal object space.

The paper's Section 6.1 front-end managers, made real: an asyncio TCP
server (:mod:`repro.serve.server`) fronts a
:class:`~repro.shard.cluster.ShardedCluster` for external clients over a
length-prefixed JSON protocol (:mod:`repro.serve.wire`), with pipelining,
per-cycle write batching, admission control, causal *session tokens*
that let a client reconnect anywhere without losing read-your-writes or
monotonic causal order, and read-anywhere replica routing that serves
each ``get`` from any shard member whose settled prefix covers the
session's causal floor.  A pipelined client and a closed/open-loop load
generator ride along; see ``docs/SERVING.md``.
"""

from repro.serve.client import (
    DEFAULT_REQUEST_TIMEOUT,
    ServeClient,
    ServeError,
    ServeOverload,
    reconnect,
)
from repro.serve.faults import ChaosProxy, FaultPlan
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.metrics import ServeMetrics, percentile
from repro.serve.procs import MultiProcServeServer, merge_tokens, partition_shards
from repro.serve.resilient import GaveUp, ResilientClient
from repro.serve.server import ServeServer
from repro.serve.wire import (
    CODEC_BINARY,
    CODEC_JSON,
    DEFAULT_OVERLOAD_RETRY_AFTER,
    DEFAULT_RETRY_AFTER,
    FRAME_OVERLOAD,
    FRAME_RETRY,
    MAX_FRAME,
    SERVE_WIRE_VERSION,
    SUPPORTED_CODECS,
    FrameBuffer,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "CODEC_BINARY",
    "CODEC_JSON",
    "ChaosProxy",
    "DEFAULT_OVERLOAD_RETRY_AFTER",
    "DEFAULT_REQUEST_TIMEOUT",
    "DEFAULT_RETRY_AFTER",
    "FRAME_OVERLOAD",
    "FRAME_RETRY",
    "FaultPlan",
    "FrameBuffer",
    "GaveUp",
    "LoadReport",
    "MAX_FRAME",
    "MultiProcServeServer",
    "ResilientClient",
    "SERVE_WIRE_VERSION",
    "SUPPORTED_CODECS",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "ServeOverload",
    "ServeServer",
    "decode_frame",
    "encode_frame",
    "merge_tokens",
    "partition_shards",
    "percentile",
    "read_frame",
    "reconnect",
    "run_load",
    "write_frame",
]
