"""Pipelined asyncio client for the serving layer.

:class:`ServeClient` speaks the length-prefixed frame protocol
(:mod:`repro.serve.wire`).  Requests are *pipelined*: :meth:`put` sends
the frame immediately and returns an awaitable future, so a caller can
keep many operations in flight on one connection and await them in any
order — a background reader task matches replies to futures by ``rid``.

Causal continuity across connections is the client's responsibility and
is one line: every reply carries the session's current token, the client
remembers the newest one, and a reconnect presents it in ``hello``.  The
server folds the token's frontier back into the (possibly fresh) session
state, so read-your-writes and monotonic order survive disconnects —
the token *is* the session, the TCP connection is just a vehicle.

A client may ask for the ``binary`` frame codec: the ``hello`` goes out
as JSON (every server speaks it), and the connection switches codecs
only when the server's hello reply confirms the choice — a server that
never heard of codecs simply ignores the field and the connection stays
on JSON, so new clients work against old servers and vice versa.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ProtocolError
from repro.serve.wire import (
    CODEC_JSON,
    DEFAULT_RETRY_AFTER,
    FRAME_OVERLOAD,
    FRAME_RETRY,
    decode_frame,
    read_frame_bytes,
    write_frame,
)

#: How many ``retry`` frames :meth:`ServeClient.get` absorbs (sleeping
#: each frame's ``retry_after``) before giving up with a ServeError.
GET_RETRIES = 8

#: Default per-request deadline, in seconds.  Generous on purpose: it is
#: a hang-breaker, not a latency target — a stalled (but open) socket
#: must never hang a caller forever.  Pass ``request_timeout=None`` to
#: disable, or a smaller value for fault-injection tests.
DEFAULT_REQUEST_TIMEOUT = 30.0


class ServeError(ProtocolError):
    """An error reply (or a dead connection) surfaced to the caller."""


class ServeOverload(ServeError):
    """The server shed this request (queue full or deadline passed).

    Carries the server-suggested ``retry_after`` so callers can back off
    intelligently rather than hammering an overloaded server.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def _raise_if_overload(reply: Dict[str, Any]) -> Dict[str, Any]:
    if reply.get("t") == FRAME_OVERLOAD:
        raise ServeOverload(
            f"server overloaded: {reply.get('reason') or 'load shed'}",
            float(reply.get("retry_after") or DEFAULT_RETRY_AFTER),
        )
    return reply


class ServeClient:
    """One pipelined connection to a :class:`~repro.serve.server.ServeServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        session: str,
        token: Optional[str] = None,
        codec: str = CODEC_JSON,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self.session = session
        self.token = token
        #: Per-request deadline in seconds (``None`` disables).  A
        #: request still unanswered when its deadline fires raises
        #: :class:`ServeError` *and poisons the connection*: replies are
        #: matched by rid on one ordered stream, so after abandoning one
        #: we could mis-trust the stream's timing for every later reply.
        self.request_timeout = request_timeout
        #: The codec this client *asks* for; ``negotiated_codec`` is what
        #: the server actually granted (JSON until the hello confirms).
        self.codec = codec
        self.negotiated_codec = CODEC_JSON
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._recv_task: Optional[asyncio.Task] = None
        self._waiting: Dict[int, asyncio.Future] = {}
        self._next_rid = 0
        self._hello_rid: Optional[int] = None
        self._recv_dead = False
        self.server_said_bye = False
        self.hello_reply: Optional[Dict[str, Any]] = None
        #: key -> member that last served a replica-routed get for it.
        #: Echoed as a sticky hint on later gets of the same key; the
        #: server honours it only while that replica stays eligible.
        self.replica_hints: Dict[str, str] = {}
        #: ``retry`` frames absorbed across this connection's gets.
        self.retries = 0
        #: Requests that hit their deadline on this connection.
        self.timeouts = 0
        self._deadlines: Dict[int, asyncio.TimerHandle] = {}
        # Jitter source for retry sleeps — seeded per session name so a
        # fault campaign replays the same backoff pattern, while distinct
        # sessions desynchronise (no retry storms).
        self._rng = random.Random(f"jitter:{session}")

    # -- connection lifecycle ----------------------------------------------

    async def connect(self) -> Dict[str, Any]:
        """Open the connection and perform the hello handshake."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self.negotiated_codec = CODEC_JSON
        self._recv_task = asyncio.ensure_future(self._recv_loop())
        reply = await self._request({
            "t": "hello", "session": self.session, "token": self.token,
            "codec": self.codec,
        })
        self.hello_reply = reply
        return reply

    async def close(self) -> None:
        """Polite close: say bye, then tear the connection down."""
        if self._writer is not None and not self._writer.is_closing():
            try:
                write_frame(self._writer, {"t": "bye"}, self.negotiated_codec)
                await self._writer.drain()
            except (ConnectionError, RuntimeError):
                pass
            self._writer.close()
        if self._recv_task is not None:
            self._recv_task.cancel()
            try:
                await self._recv_task
            except asyncio.CancelledError:
                pass
            self._recv_task = None
        self._fail_outstanding("connection closed")

    # -- the pipeline ------------------------------------------------------

    def submit(self, document: Dict[str, Any]) -> "asyncio.Future[Dict[str, Any]]":
        """Send one request frame now; resolve its reply later.

        The returned future raises :class:`ServeError` for error replies.
        This is the pipelining primitive — callers that want one-at-a-time
        semantics just await it immediately.
        """
        if self._writer is None or self._recv_dead:
            # Once the reader loop has exited (bye, EOF, or error) no
            # reply can ever arrive — failing fast beats a future that
            # nothing will resolve.
            raise ServeError("not connected")
        rid = self._next_rid
        self._next_rid += 1
        document = dict(document)
        document["rid"] = rid
        if self.request_timeout is not None and "ttl" not in document:
            # Tell the server how long this request is worth executing:
            # queued work whose client deadline already fired gets shed
            # with an ``overload`` frame instead of burning a cycle.
            document["ttl"] = self.request_timeout
        if document.get("t") == "hello":
            # Remember which reply may carry the codec grant; the switch
            # happens when it resolves, before any later reply is sent.
            self._hello_rid = rid
        loop = asyncio.get_event_loop()
        future: asyncio.Future = loop.create_future()
        self._waiting[rid] = future
        try:
            write_frame(self._writer, document, self.negotiated_codec)
        except (ConnectionError, RuntimeError) as exc:
            self._waiting.pop(rid, None)
            raise ServeError(f"send failed: {exc}") from exc
        if self.request_timeout is not None:
            self._deadlines[rid] = loop.call_later(
                self.request_timeout, self._on_deadline, rid
            )
        return future

    async def _request(self, document: Dict[str, Any]) -> Dict[str, Any]:
        return await self.submit(document)

    async def _recv_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                # Raw read, then decode with whatever codec is active by
                # the time the bytes are in hand — the hello reply can
                # switch it for the frames that follow.
                body = await read_frame_bytes(self._reader)
                if body is None:
                    break
                frame = decode_frame(body, self.negotiated_codec)
                if frame.get("t") == "bye":
                    self.server_said_bye = True
                    break
                self._dispatch_reply(frame)
        except (ProtocolError, ConnectionError):
            pass
        finally:
            self._recv_dead = True
            self._fail_outstanding("connection lost")

    def _on_deadline(self, rid: int) -> None:
        """A request outlived its deadline: fail it and poison the wire."""
        self._deadlines.pop(rid, None)
        future = self._waiting.pop(rid, None)
        if future is None or future.done():
            return
        self.timeouts += 1
        future.set_exception(ServeError(
            f"request rid={rid} exceeded deadline of "
            f"{self.request_timeout}s"
        ))
        self._poison("deadline exceeded")

    def _poison(self, reason: str) -> None:
        """Tear the connection down without waiting on the peer.

        Used when the stream can no longer be trusted (deadline fired).
        Outstanding futures fail immediately; the reader task dies on the
        aborted transport.
        """
        self._recv_dead = True
        self._fail_outstanding(reason)
        if self._writer is not None:
            transport = self._writer.transport
            try:
                if transport is not None:
                    transport.abort()
                else:  # pragma: no cover - defensive
                    self._writer.close()
            except RuntimeError:
                pass

    def _dispatch_reply(self, frame: Dict[str, Any]) -> None:
        rid = frame.get("rid")
        future = self._waiting.pop(rid, None)
        handle = self._deadlines.pop(rid, None)
        if handle is not None:
            handle.cancel()
        if rid is not None and rid == self._hello_rid:
            self._hello_rid = None
            if frame.get("t") != "error":
                # Absent on pre-negotiation servers: stay on JSON.
                self.negotiated_codec = frame.get("codec", CODEC_JSON)
        if future is None or future.done():
            return
        token = frame.get("token")
        if token is not None:
            self.token = token
        if frame.get("t") == "error":
            future.set_exception(ServeError(str(frame.get("error"))))
        else:
            future.set_result(frame)

    def _fail_outstanding(self, reason: str) -> None:
        for handle in self._deadlines.values():
            handle.cancel()
        self._deadlines.clear()
        for future in self._waiting.values():
            if not future.done():
                future.set_exception(ServeError(reason))
        self._waiting.clear()

    # -- convenience API ---------------------------------------------------

    def put(
        self, key: str, value: object, *, opid: Optional[str] = None
    ) -> "asyncio.Future[Dict[str, Any]]":
        """Pipelined write; the reply carries the label and a fresh token.

        ``opid`` is an optional client-chosen idempotency id: the server
        remembers which opids a session has applied, so a put retried
        after an ambiguous failure (connection lost between send and
        reply) is applied **at most once** — the duplicate just gets the
        original's label back.
        """
        document: Dict[str, Any] = {"t": "put", "key": key, "value": value}
        if opid is not None:
            document["opid"] = opid
        return self.submit(document)

    async def put_wait(
        self, key: str, value: object, *, opid: Optional[str] = None
    ) -> Dict[str, Any]:
        return _raise_if_overload(await self.put(key, value, opid=opid))

    def get_submit(self, key: str) -> "asyncio.Future[Dict[str, Any]]":
        """Pipelined get: send the frame now, resolve the reply later.

        The reply may be a ``retry`` frame (``t == "retry"``) when the
        server runs reject-with-retry and no replica covers the session
        floor yet — pipelining callers handle it themselves; one-at-a-
        time callers should use :meth:`get`, which absorbs retries.
        """
        document: Dict[str, Any] = {"t": "get", "key": key}
        hint = self.replica_hints.get(key)
        if hint is not None:
            document["replica"] = hint
        return self.submit(document)

    async def get(
        self, key: str, *, retries: int = GET_RETRIES
    ) -> Optional[object]:
        """Causally gated read (read-your-writes; no global snapshot).

        Served by any replica covering the session's causal floor; waits
        out up to ``retries`` reject-with-retry answers (sleeping each
        frame's ``retry_after``) before raising.
        """
        for _ in range(retries + 1):
            reply = _raise_if_overload(await self.get_submit(key))
            if reply.get("t") == FRAME_RETRY:
                self.retries += 1
                # Jittered sleep: every rejected client sleeping exactly
                # the server-advertised interval would resubmit in
                # lock-step — a synchronized retry storm.  Spread the
                # herd over [0.5, 1.5) of the advertised interval.
                base = float(reply.get("retry_after") or DEFAULT_RETRY_AFTER)
                await asyncio.sleep(base * (0.5 + self._rng.random()))
                continue
            replica = reply.get("replica")
            if isinstance(replica, str):
                self.replica_hints[key] = replica
            return reply.get("value")
        raise ServeError(
            f"get {key!r}: no covering replica after {retries} retries"
        )

    async def read(
        self, shards: Optional[Sequence[int]] = None
    ) -> Dict[str, Any]:
        """Consistent multi-shard barrier read; reply carries the values."""
        document: Dict[str, Any] = {"t": "read"}
        if shards is not None:
            document["shards"] = list(shards)
        return _raise_if_overload(await self._request(document))

    async def fetch_token(self) -> str:
        reply = _raise_if_overload(await self._request({"t": "token"}))
        return reply["token"]

    async def stats(self) -> Dict[str, Any]:
        reply = _raise_if_overload(await self._request({"t": "stats"}))
        return reply["stats"]

    async def chaos(
        self,
        action: str,
        shard: int,
        member: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Ask the server to crash/restart a replica (demos and tests)."""
        return await self._request({
            "t": "chaos", "action": action, "shard": shard, "member": member,
        })

    @property
    def outstanding(self) -> int:
        return len(self._waiting)


async def reconnect(client: ServeClient) -> ServeClient:
    """Close ``client`` and return a fresh one resuming its session.

    The new connection presents the old connection's newest token, so the
    resumed session's causal floor covers everything the old one did —
    the reconnect is invisible to the session guarantees.  It also
    re-runs codec negotiation with the same preference, so a binary
    client stays binary across the reconnect.

    While the old connection is still alive we ask the server for a
    fresh token rather than trusting the last reply's: against a
    multi-process front-end the per-reply tokens carry one worker's
    shards, while the ``token`` verb merges every worker's frontier.
    """
    token = client.token
    if not client._recv_dead and client._writer is not None:
        try:
            token = await client.fetch_token()
        except (ServeError, KeyError):
            token = client.token
    await client.close()
    fresh = ServeClient(
        client.host, client.port, client.session,
        token=token, codec=client.codec,
        request_timeout=client.request_timeout,
    )
    await fresh.connect()
    return fresh
