"""Fault-injecting TCP interposer for the serving wire.

:class:`ChaosProxy` sits between clients and a serve port and breaks the
wire in the ways real networks and real kernels do — *outside* the
server process, so every fault exercises the actual socket paths of
both peers:

* ``cut``       — close a connection abruptly, optionally after leaking
                  half a frame (EOF mid-frame, the rudest disconnect);
* ``truncate``  — forward a frame's length prefix but only part of its
                  body, then cut (the peer blocks on bytes that will
                  never come until its deadline fires);
* ``stall``     — stop forwarding in one direction for a while without
                  closing anything (the silent-stall case deadlines
                  exist for);
* ``delay``     — hold a frame back before forwarding it (reordering
                  across connections, latency spikes);
* ``dup``       — forward a frame twice (at-least-once delivery; the
                  server's idempotent puts and the client's rid matching
                  must both absorb it).

Faults are chosen per frame by a :class:`FaultPlan` — seeded, so a chaos
campaign is reproducible fault-for-fault — or injected manually through
:meth:`ChaosProxy.cut_all` / :meth:`ChaosProxy.stall_all` for targeted
tests.  The proxy is frame-aware (it splits the byte stream with the
same length-prefix rules as the server) but codec-blind: it never
decodes a body, so JSON and binary connections are tortured identically.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Optional, Set, Tuple

from repro.serve.wire import _LENGTH_BYTES, read_frame_bytes

#: Fault verbs a plan may return (plus ``pass``).
FAULTS = ("cut", "truncate", "stall", "delay", "dup")

#: Directions a fault can apply to.
CLIENTWARD = "clientward"   # server -> client
SERVERWARD = "serverward"   # client -> server


class FaultPlan:
    """Seeded per-frame fault decisions.

    Rates are per-frame probabilities per direction; an exempt window
    (``grace_frames``) lets the hello handshake through untouched so a
    campaign's sessions actually exist before the torture starts.
    """

    def __init__(
        self,
        seed: int,
        *,
        cut_rate: float = 0.0,
        truncate_rate: float = 0.0,
        stall_rate: float = 0.0,
        delay_rate: float = 0.0,
        dup_rate: float = 0.0,
        stall_seconds: float = 0.4,
        delay_seconds: float = 0.05,
        grace_frames: int = 2,
    ) -> None:
        self._rng = random.Random(seed)
        self.cut_rate = cut_rate
        self.truncate_rate = truncate_rate
        self.stall_rate = stall_rate
        self.delay_rate = delay_rate
        self.dup_rate = dup_rate
        self.stall_seconds = stall_seconds
        self.delay_seconds = delay_seconds
        self.grace_frames = grace_frames

    def action(
        self, direction: str, frame_index: int
    ) -> Tuple[str, float]:
        """Decide one frame's fate: ``(verb, seconds)``."""
        if frame_index < self.grace_frames:
            return ("pass", 0.0)
        roll = self._rng.random()
        threshold = 0.0
        for verb, rate in (
            ("cut", self.cut_rate),
            ("truncate", self.truncate_rate),
            ("stall", self.stall_rate),
            ("delay", self.delay_rate),
            ("dup", self.dup_rate),
        ):
            threshold += rate
            if roll < threshold:
                seconds = 0.0
                if verb == "stall":
                    seconds = self.stall_seconds * self._rng.uniform(0.5, 1.5)
                elif verb == "delay":
                    seconds = self.delay_seconds * self._rng.uniform(0.5, 1.5)
                return (verb, seconds)
        return ("pass", 0.0)


class _Link:
    """One proxied client connection (both pumps and their sockets)."""

    def __init__(
        self,
        index: int,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
        server_reader: asyncio.StreamReader,
        server_writer: asyncio.StreamWriter,
    ) -> None:
        self.index = index
        self.client_reader = client_reader
        self.client_writer = client_writer
        self.server_reader = server_reader
        self.server_writer = server_writer
        self.tasks: List[asyncio.Task] = []
        self.closed = False

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for writer in (self.client_writer, self.server_writer):
            try:
                writer.close()
            except RuntimeError:
                pass

    def abort(self) -> None:
        """Hard close: RST-ish teardown, no lingering buffered bytes."""
        if self.closed:
            return
        self.closed = True
        for writer in (self.client_writer, self.server_writer):
            transport = writer.transport
            try:
                if transport is not None:
                    transport.abort()
                else:  # pragma: no cover - defensive
                    writer.close()
            except RuntimeError:
                pass


class ChaosProxy:
    """Frame-aware fault-injecting proxy in front of one serve port."""

    def __init__(
        self,
        target_host: str,
        target_port: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        plan: Optional[FaultPlan] = None,
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.host = host
        self.port = port
        #: ``None`` forwards everything (manual-fault mode).
        self.plan = plan
        self.counters: Dict[str, int] = {
            "connections": 0,
            "frames": 0,
            "cuts": 0,
            "truncations": 0,
            "stalls": 0,
            "delays": 0,
            "dups": 0,
        }
        self._server: Optional[asyncio.base_events.Server] = None
        self._links: Set[_Link] = set()
        self._next_link = 0
        #: Direction -> event; cleared = that direction is stalled.
        self._flowing = {
            CLIENTWARD: asyncio.Event(),
            SERVERWARD: asyncio.Event(),
        }
        for event in self._flowing.values():
            event.set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for link in list(self._links):
            link.close()
            for task in link.tasks:
                task.cancel()
        for link in list(self._links):
            for task in link.tasks:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        self._links.clear()

    @property
    def live_links(self) -> int:
        return sum(1 for link in self._links if not link.closed)

    # -- manual fault verbs ------------------------------------------------

    def cut_all(self, *, mid_frame: bool = False) -> int:
        """Sever every live connection now; returns how many died.

        With ``mid_frame=True`` each client is first fed half of a
        plausible frame, so its reader dies *inside* a frame boundary —
        the worst-shaped EOF the framing layer can receive.
        """
        cut = 0
        for link in list(self._links):
            if link.closed:
                continue
            if mid_frame:
                try:
                    link.client_writer.write(
                        (64).to_bytes(_LENGTH_BYTES, "big") + b'{"t":'
                    )
                except (ConnectionError, RuntimeError):
                    pass
            link.abort()
            cut += 1
        self.counters["cuts"] += cut
        return cut

    def stall_all(self, direction: str = CLIENTWARD) -> None:
        """Freeze one direction for every connection (until resumed)."""
        self._flowing[direction].clear()
        self.counters["stalls"] += 1

    def resume_all(self) -> None:
        for event in self._flowing.values():
            event.set()

    # -- plumbing ----------------------------------------------------------

    async def _handle(
        self,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
    ) -> None:
        try:
            server_reader, server_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except (ConnectionError, OSError):
            try:
                client_writer.close()
            except RuntimeError:
                pass
            return
        link = _Link(
            self._next_link, client_reader, client_writer,
            server_reader, server_writer,
        )
        self._next_link += 1
        self._links.add(link)
        self.counters["connections"] += 1
        link.tasks = [
            asyncio.ensure_future(self._pump(
                link, SERVERWARD, client_reader, server_writer
            )),
            asyncio.ensure_future(self._pump(
                link, CLIENTWARD, server_reader, client_writer
            )),
        ]
        await asyncio.gather(*link.tasks, return_exceptions=True)
        link.close()
        self._links.discard(link)

    async def _pump(
        self,
        link: _Link,
        direction: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Forward frames one way, applying the plan's verdicts."""
        frame_index = 0
        try:
            while not link.closed:
                body = await read_frame_bytes(reader)
                if body is None:
                    break
                self.counters["frames"] += 1
                await self._flowing[direction].wait()
                verb, seconds = (
                    self.plan.action(direction, frame_index)
                    if self.plan is not None else ("pass", 0.0)
                )
                frame_index += 1
                if verb == "cut":
                    self.counters["cuts"] += 1
                    link.abort()
                    return
                if verb == "truncate":
                    # Honest length prefix, dishonest body: the peer
                    # waits for bytes that never arrive, then EOF.
                    self.counters["truncations"] += 1
                    keep = max(1, len(body) // 2)
                    writer.write(
                        len(body).to_bytes(_LENGTH_BYTES, "big")
                        + body[:keep]
                    )
                    try:
                        await writer.drain()
                    except (ConnectionError, RuntimeError):
                        pass
                    link.abort()
                    return
                if verb == "stall":
                    self.counters["stalls"] += 1
                    await asyncio.sleep(seconds)
                elif verb == "delay":
                    self.counters["delays"] += 1
                    await asyncio.sleep(seconds)
                copies = 2 if verb == "dup" else 1
                if verb == "dup":
                    self.counters["dups"] += 1
                for _ in range(copies):
                    writer.write(
                        len(body).to_bytes(_LENGTH_BYTES, "big") + body
                    )
                await writer.drain()
        except (ConnectionError, RuntimeError, asyncio.IncompleteReadError):
            pass
        except Exception:
            # A malformed length prefix (ProtocolError) means the stream
            # is already poisoned; drop the link rather than the proxy.
            pass
        finally:
            link.close()
