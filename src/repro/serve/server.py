"""Wire-facing server fronting the sharded causal object space.

:class:`ServeServer` is the paper's Section 6.1 front-end manager made
real: external clients connect over TCP, issue ``put``/``read``
requests, and the server turns them into ``Occurs-After``-annotated
broadcasts on the sharded cluster (:mod:`repro.shard`).  The causal
session state lives in the router's :class:`~repro.shard.router.Session`
objects; clients carry it across connections as opaque tokens
(:meth:`Session.export_token`), so a client may disconnect and reconnect
without losing read-your-writes or monotonic causal order.

Execution model
---------------

The object space runs on the deterministic simulator; the wire runs on
asyncio.  The server bridges them with a *batch cycle*: requests that
arrive while a cycle is in flight accumulate, then one flush issues
every queued write through the session layer (grouped per shard) and
drives the simulator to quiescence **once** for the whole batch.  The
simulator drive is the expensive part, so batching amortises it across
every pipelined request in the cycle — the same lesson as the paper's
message-packing ablation, applied at the serving edge.

Flow control, both directions:

* **admission** — at most ``max_inflight`` unanswered requests per
  connection; past that the server stops reading the socket, so TCP
  backpressure reaches the client before memory does;
* **slow clients** — replies go through ``writer.drain()``, so a client
  that stops reading pauses its own reply stream without wedging the
  batch cycle for everyone else.

Shutdown is a graceful drain: stop accepting, answer everything already
admitted, say ``bye`` on every connection, then (optionally) heal the
cluster — restart crashed replicas and run repair rounds to convergence.

Every answered operation is recorded per session; the recorded wire
history is checked against the four session guarantees
(:mod:`repro.analysis.session_guarantees`) — over a causal broadcast
substrate with correct ``Occurs-After`` stamping, all four hold even
with replicas crashing mid-run, and the serve test suite and CI smoke
assert exactly that.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.session_guarantees import (
    GuaranteeViolation,
    SessionOp,
    check_all_session_guarantees,
)
from repro.analysis.invariants import Violation
from repro.errors import ProtocolError
from repro.serve.metrics import ServeMetrics
from repro.serve.wire import (
    CODEC_JSON,
    DEFAULT_OVERLOAD_RETRY_AFTER,
    DEFAULT_RETRY_AFTER,
    FRAME_OVERLOAD,
    FRAME_RETRY,
    SERVE_WIRE_VERSION,
    SUPPORTED_CODECS,
    read_frame,
    write_frame,
)
from repro.shard.cluster import ShardedCluster
from repro.shard.ledger import DATA_KINDS
from repro.shard.router import Session
from repro.types import EntityId, MessageId

#: Default cap on unanswered requests per connection.
MAX_INFLIGHT = 64

#: Wall-clock seconds between background repair rounds (anti-entropy +
#: stability gossip at every up replica) while the server is idle.
REPAIR_INTERVAL = 0.25

#: Read-routing policies: ``replica`` serves eligible gets directly from
#: any covering member (round-robin, sticky hints honoured); the
#: ``coordinator`` policy funnels every get through the batch cycle at
#: the shard contact — the PR-5/PR-6 behaviour, kept for comparison.
READ_POLICIES = ("replica", "coordinator")

#: What to do with a get no replica can serve yet: ``forward`` sends it
#: through the batch cycle (the coordinator path always qualifies after
#: the cycle's drain); ``retry`` answers immediately with a parseable
#: :data:`~repro.serve.wire.FRAME_RETRY` frame carrying ``retry_after``
#: seconds.
READ_FALLBACKS = ("forward", "retry")


class _Connection:
    """Per-connection state: session binding, admission, liveness."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.session: Optional[Session] = None
        #: Active frame codec.  Every connection starts in JSON; the
        #: ``hello`` exchange may switch it (reply still goes out in the
        #: codec the hello arrived in, so the switch is race-free).
        self.codec = CODEC_JSON
        self.inflight = 0
        self.can_admit = asyncio.Event()
        self.can_admit.set()
        self.closed = False

    def release(self) -> None:
        self.inflight -= 1
        if not self.can_admit.is_set():
            self.can_admit.set()


#: Sentinel recorded under an opid before its put issues — an opid whose
#: value is still this sentinel after the drain means the original was
#: dropped, so a duplicate must report the drop, not invent a label.
_PUT_PENDING = object()


class _PendingOp:
    """One admitted request waiting for (or resolved by) a batch cycle."""

    __slots__ = (
        "conn", "frame", "started", "label", "read", "error",
        "deadline", "shed", "opid", "dup",
    )

    def __init__(self, conn: _Connection, frame: Dict[str, Any], now: float):
        self.conn = conn
        self.frame = frame
        self.started = now
        self.label: Optional[MessageId] = None
        self.read = None
        self.error: Optional[str] = None
        #: Absolute loop time past which executing this op is pointless
        #: (the client's deadline will already have fired) — from the
        #: request's optional ``ttl`` field.
        self.deadline: Optional[float] = None
        ttl = frame.get("ttl")
        if isinstance(ttl, (int, float)) and ttl > 0:
            self.deadline = now + float(ttl)
        self.shed = False
        opid = frame.get("opid")
        self.opid: Optional[str] = opid if isinstance(opid, str) else None
        #: True when this put's opid was already applied by this session —
        #: answer from the idempotency record instead of re-applying.
        self.dup = False


class ServeServer:
    """Asyncio TCP server over a :class:`ShardedCluster`."""

    def __init__(
        self,
        cluster: Optional[ShardedCluster] = None,
        *,
        shards: int = 2,
        members_per_shard: int = 3,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = MAX_INFLIGHT,
        repair_interval: float = REPAIR_INTERVAL,
        batch_window: float = 0.0,
        read_policy: str = "replica",
        read_fallback: str = "forward",
        retry_after: float = DEFAULT_RETRY_AFTER,
        max_queue: Optional[int] = None,
        overload_retry_after: float = DEFAULT_OVERLOAD_RETRY_AFTER,
    ) -> None:
        if read_policy not in READ_POLICIES:
            raise ProtocolError(f"unknown read policy: {read_policy!r}")
        if read_fallback not in READ_FALLBACKS:
            raise ProtocolError(f"unknown read fallback: {read_fallback!r}")
        # Serving-path clusters skip per-hop trace events: nothing on
        # the serve path reads them, and the hot delivery loop would pay
        # for assembling one per network hop.
        self.cluster = cluster if cluster is not None else ShardedCluster(
            shards=shards, members_per_shard=members_per_shard, seed=seed,
            hop_events="off",
        )
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.repair_interval = repair_interval
        #: Seconds a flush waits for more requests to coalesce before
        #: running the cycle.  0 batches only within one loop tick (the
        #: single-process default); multi-process workers use a few
        #: milliseconds so requests staggered through the front-end hop
        #: still land in one simulator drive.
        self.batch_window = batch_window
        self.read_policy = read_policy
        self.read_fallback = read_fallback
        self.retry_after = retry_after
        #: Load shedding: with a batch queue at or past this depth, new
        #: work is answered with a parseable ``overload`` frame instead
        #: of being admitted — the server degrades loudly, not silently.
        #: ``None`` (the default) disables shedding; per-connection
        #: admission still applies.
        self.max_queue = max_queue
        self.overload_retry_after = overload_retry_after
        self.metrics = ServeMetrics()
        #: session name -> opid -> issued label (or the pending
        #: sentinel): the at-most-once memory behind put idempotency.
        self._applied_puts: Dict[str, "OrderedDict[str, object]"] = {}
        #: session name -> answered ops, in issue order.  Entries are
        #: ("write", label), ("read", BarrierRead), or
        #: ("get", (key, shard, served label | None, member | None)).
        self.history: Dict[str, List[Tuple[str, object]]] = {}
        #: shard -> round-robin cursor over its eligible read replicas.
        self._rr: Dict[int, int] = {}
        #: session name -> ops of that session still inside the batch
        #: pipeline; a direct replica get must not overtake them.
        self._session_pending: Dict[str, int] = {}
        self._pending: List[_PendingOp] = []
        self._flush_task: Optional[asyncio.Task] = None
        self._repair_task: Optional[asyncio.Task] = None
        self._connections: Set[_Connection] = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._draining = False
        self.heal_violations: List[Violation] = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves ``self.port`` if it was 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.repair_interval > 0:
            self._repair_task = asyncio.ensure_future(self._repair_loop())

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, *, heal: bool = True) -> None:
        """Graceful drain: answer admitted work, bye, optionally heal.

        With ``heal=True`` every crashed in-view replica is restarted and
        repair rounds run to convergence; liveness failures land in
        ``self.heal_violations`` instead of raising, so callers can fold
        them into their own report.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while self._pending or (
            self._flush_task is not None and not self._flush_task.done()
        ):
            await asyncio.sleep(0.005)
        if self._repair_task is not None:
            self._repair_task.cancel()
            try:
                await self._repair_task
            except asyncio.CancelledError:
                pass
            self._repair_task = None
        for conn in list(self._connections):
            try:
                write_frame(conn.writer, {"t": "bye"}, conn.codec)
                self.metrics.bump("frames_out")
                await conn.writer.drain()
            except (ConnectionError, RuntimeError):
                pass
            self._close_connection(conn)
        if heal:
            self.heal_violations = self._heal()

    def _heal(self) -> List[Violation]:
        cluster = self.cluster
        for group in cluster.groups.values():
            for member, stack in group.stacks.items():
                if stack.crashed and member in group.group.view:
                    group.restart(member)
            for member in group.members:
                if member not in group.group.view:
                    group.rejoin(member)
        cluster.drain()
        violations, _rounds = cluster.settle()
        return violations

    # -- background repair -------------------------------------------------

    async def _repair_loop(self) -> None:
        while True:
            await asyncio.sleep(self.repair_interval)
            if not self._pending:
                self._repair_round()

    def _repair_round(self) -> None:
        """One anti-entropy + gossip round at every up replica.

        Fills gaps crashed-and-dropped deliveries left behind (a restarted
        replica catches up here) without touching membership — a replica
        killed over the wire stays down until asked to restart.
        """
        for group in self.cluster.groups.values():
            for member in group._repair_participants():
                group.recoveries[member].anti_entropy_round()
                group.trackers[member].gossip_round()
        self.cluster.router.kick()
        self.cluster.drain()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        self.metrics.bump("connections_opened")
        try:
            while True:
                frame = await read_frame(reader, conn.codec)
                if frame is None or frame.get("t") == "bye":
                    break
                self.metrics.bump("frames_in")
                await self._dispatch(conn, frame)
        except ProtocolError as exc:
            await self._send_error(conn, None, str(exc))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._close_connection(conn)

    def _close_connection(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._connections.discard(conn)
        self.metrics.bump("connections_closed")
        try:
            conn.writer.close()
        except RuntimeError:
            pass

    async def _send(self, conn: _Connection, document: Dict[str, Any]) -> None:
        if conn.closed:
            return
        try:
            write_frame(conn.writer, document, conn.codec)
            self.metrics.bump("frames_out")
            await conn.writer.drain()
        except (ConnectionError, RuntimeError):
            self._close_connection(conn)

    async def _send_error(
        self, conn: _Connection, rid: Optional[int], message: str
    ) -> None:
        self.metrics.bump("errors")
        await self._send(
            conn, {"t": "error", "rid": rid, "error": message}
        )

    def _overload_frame(
        self, rid: Optional[int], reason: str
    ) -> Dict[str, Any]:
        self.metrics.bump("sheds")
        return {
            "t": FRAME_OVERLOAD, "rid": rid, "reason": reason,
            "retry_after": self.overload_retry_after,
            "queue_depth": len(self._pending),
        }

    async def _send_overload(
        self, conn: _Connection, rid: Optional[int], reason: str
    ) -> None:
        await self._send(conn, self._overload_frame(rid, reason))

    # -- request dispatch --------------------------------------------------

    async def _dispatch(self, conn: _Connection, frame: Dict[str, Any]) -> None:
        kind = frame.get("t")
        rid = frame.get("rid")
        if kind == "hello":
            await self._handle_hello(conn, frame)
            return
        if conn.session is None:
            await self._send_error(conn, rid, "hello required first")
            return
        if kind in ("put", "read", "get"):
            if self._draining:
                await self._send_error(conn, rid, "server is draining")
                return
            if (
                self.max_queue is not None
                and len(self._pending) >= self.max_queue
            ):
                # Shed before admitting: a parseable refusal now beats a
                # reply that arrives after the client gave up.  Nothing
                # was applied — the frame is safe to retry.
                await self._send_overload(conn, rid, "queue-full")
                return
            if kind == "get" and self.read_policy == "replica":
                if await self._direct_get(conn, frame):
                    return  # answered (or told to retry) off the cycle path
            while conn.inflight >= self.max_inflight:
                # Admission control: stop reading this socket until the
                # pipeline drains below the cap — the client feels it as
                # TCP backpressure, not an error.
                self.metrics.bump("admission_waits")
                conn.can_admit.clear()
                await conn.can_admit.wait()
            conn.inflight += 1
            self.metrics.inflight += 1
            self._enqueue(conn, frame)
            return
        if kind == "token":
            await self._send(conn, {
                "t": "reply", "rid": rid, "ok": True,
                "token": conn.session.export_token(),
            })
            return
        if kind == "stats":
            self.metrics.queue_depth = len(self._pending)
            await self._send(conn, {
                "t": "reply", "rid": rid, "ok": True,
                "stats": self.metrics.snapshot(),
            })
            return
        if kind == "chaos":
            await self._handle_chaos(conn, frame)
            return
        await self._send_error(conn, rid, f"unknown request type: {kind!r}")

    async def _handle_hello(
        self, conn: _Connection, frame: Dict[str, Any]
    ) -> None:
        rid = frame.get("rid")
        name = frame.get("session")
        if not isinstance(name, str) or not name:
            await self._send_error(conn, rid, "hello needs a session name")
            return
        requested = frame.get("codec", CODEC_JSON)
        if requested not in SUPPORTED_CODECS:
            # Clean reject, still in the codec the hello arrived in: the
            # client gets a parseable error plus what it *could* ask for,
            # instead of a codec-mismatch hang.
            self.metrics.bump("errors")
            await self._send(conn, {
                "t": "error", "rid": rid,
                "error": f"unknown codec: {requested!r}",
                "codecs": list(SUPPORTED_CODECS),
            })
            return
        session = self.cluster.router.session(name)
        token = frame.get("token")
        dropped: int = 0
        if token is not None:
            try:
                dropped = len(session.import_token(token))
            except ProtocolError as exc:
                await self._send_error(conn, rid, str(exc))
                return
            self.metrics.bump("tokens_imported")
            self.metrics.bump("token_labels_dropped", dropped)
        conn.session = session
        self.history.setdefault(name, [])
        await self._send(conn, {
            "t": "reply", "rid": rid, "ok": True,
            "wire_version": SERVE_WIRE_VERSION,
            "session": name,
            "shards": len(self.cluster.shard_ids),
            "codec": requested,
            "codecs": list(SUPPORTED_CODECS),
            "token": session.export_token(),
            "token_labels_dropped": dropped,
        })
        # Reply went out in the old codec; everything after speaks the
        # negotiated one.
        conn.codec = requested
        self.metrics.bump(f"codec_{requested}")

    async def _handle_chaos(
        self, conn: _Connection, frame: Dict[str, Any]
    ) -> None:
        """Fault injection over the wire (demos, CI smoke, soak tests)."""
        rid = frame.get("rid")
        action = frame.get("action")
        shard = frame.get("shard")
        if shard not in self.cluster.groups:
            await self._send_error(conn, rid, f"unknown shard: {shard!r}")
            return
        group = self.cluster.groups[shard]
        member: Optional[EntityId] = frame.get("member")
        if action == "crash":
            if member is None:
                member = next(
                    (m for m in group.members if not group.stacks[m].crashed),
                    None,
                )
            if member is None or group.stacks[member].crashed:
                await self._send_error(conn, rid, "no up member to crash")
                return
            up = sum(1 for s in group.stacks.values() if not s.crashed)
            if up <= 1:
                await self._send_error(
                    conn, rid, f"refusing to crash the last member of shard {shard}"
                )
                return
            group.crash(member)
            self.cluster.drain()
        elif action == "restart":
            if member is None or not group.stacks[member].crashed:
                await self._send_error(conn, rid, "member is not crashed")
                return
            group.restart(member)
            self._repair_round()
        else:
            await self._send_error(conn, rid, f"unknown chaos action: {action!r}")
            return
        await self._send(conn, {
            "t": "reply", "rid": rid, "ok": True,
            "action": action, "shard": shard, "member": member,
        })

    # -- replica-routed reads ----------------------------------------------

    async def _direct_get(
        self, conn: _Connection, frame: Dict[str, Any]
    ) -> bool:
        """Serve a get from a covering replica, off the batch cycle.

        Eligibility: a member of the key's shard has settled the session
        token's projection onto that shard (plus any migration handoff) —
        then its local last-writer-wins state is already causally after
        everything this session may rely on, so it answers without any
        broadcast, barrier, or simulator drive.  Returns False to route
        the get through the batch cycle instead (fallback ``forward``,
        pipelined session ops in flight, unhosted shard); with fallback
        ``retry`` an uncovered get is answered with a ``retry`` frame.
        """
        session = conn.session
        if not session.idle or self._session_pending.get(session.name, 0):
            # The session has ops inside the batch pipeline (e.g. a
            # pipelined put this get must observe); the cycle path keeps
            # issue order.
            return False
        key = frame.get("key")
        if not isinstance(key, str):
            return False
        shard, _slot, floor = session.read_floor(key)
        if shard not in self.cluster.groups:
            return False
        loop = asyncio.get_event_loop()
        started = loop.time()
        member = self._choose_replica(frame, shard, floor)
        if member is None:
            self.metrics.bump("read_misses")
            if self.read_fallback != "retry":
                return False
            self.metrics.bump("gets_retried")
            await self._send(conn, {
                "t": FRAME_RETRY, "rid": frame.get("rid"),
                "key": key, "shard": shard,
                "retry_after": self.retry_after,
            })
            return True
        value, label = self.cluster.member_read(shard, member, key)
        if label is not None:
            # The session now depends on what it saw: monotonic reads
            # and writes-follow-reads hold by construction.
            session.observe(label)
        self.history[session.name].append(("get", (key, shard, label, member)))
        self.metrics.bump("ops")
        self.metrics.bump("gets")
        self.metrics.bump("gets_direct")
        self.metrics.bump(f"replica_reads_{member}")
        millis = (loop.time() - started) * 1000.0
        self.metrics.record_latency("get", millis)
        self.metrics.record_latency("op", millis)
        await self._send(conn, {
            "t": "reply", "rid": frame.get("rid"), "ok": True,
            "key": key, "value": value,
            "shard": shard, "replica": member,
            "token": session.export_token(),
        })
        return True

    def _choose_replica(
        self, frame: Dict[str, Any], shard: int, floor
    ) -> Optional[EntityId]:
        """Pick an eligible read replica: sticky hint, else round-robin."""
        members = self.cluster.read_members(shard)
        eligible = [
            member for member in members
            if self.cluster.covers(shard, member, floor)
        ]
        if not eligible:
            return None
        hint = frame.get("replica")
        if hint in eligible:
            self.metrics.bump("sticky_hits")
            return hint
        cursor = self._rr.get(shard, 0)
        self._rr[shard] = cursor + 1
        return eligible[cursor % len(eligible)]

    # -- the batch cycle ---------------------------------------------------

    def _enqueue(self, conn: _Connection, frame: Dict[str, Any]) -> None:
        loop = asyncio.get_event_loop()
        self._pending.append(_PendingOp(conn, frame, loop.time()))
        name = conn.session.name
        self._session_pending[name] = self._session_pending.get(name, 0) + 1
        self.metrics.queue_depth = len(self._pending)
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = asyncio.ensure_future(self._flush())

    def _op_done(self, op: _PendingOp) -> None:
        """Release one batch op's admission slot and pipeline count."""
        op.conn.release()
        self.metrics.inflight -= 1
        name = op.conn.session.name
        count = self._session_pending.get(name, 0)
        if count > 1:
            self._session_pending[name] = count - 1
        else:
            self._session_pending.pop(name, None)

    async def _flush(self) -> None:
        # Yield once so every request already parsed in this loop tick
        # joins the same cycle — this is where pipelining turns into
        # batching.
        await asyncio.sleep(0)
        if self.batch_window > 0.0:
            # Coalesce across the window with a real sleep: it parks
            # this process so peers (the front-end, sibling workers) get
            # scheduled and their in-flight requests join this cycle.
            # Busy-yielding here would steal the CPU those requests need
            # to arrive at all.
            await asyncio.sleep(self.batch_window)
        while self._pending:
            batch, self._pending = self._pending, []
            self.metrics.queue_depth = 0
            try:
                await self._run_cycle(batch)
            except Exception as exc:  # noqa: BLE001 - cycle must not die silently
                # A failed cycle still answers (with errors) and still
                # releases admission slots — a wedged pipeline would
                # otherwise deadlock every client on the connection.
                for op in batch:
                    self._op_done(op)
                    await self._send_error(
                        op.conn, op.frame.get("rid"), f"server error: {exc}"
                    )
                raise

    async def _run_cycle(self, batch: List[_PendingOp]) -> None:
        per_shard: Dict[int, int] = {}
        now = asyncio.get_event_loop().time()
        for op in batch:
            frame = op.frame
            kind = frame.get("t")
            session = op.conn.session
            if op.deadline is not None and now > op.deadline:
                # Deadline-aware admission: the client's deadline has
                # already fired, so executing would waste a simulator
                # drive on an answer nobody is waiting for — shed it
                # loudly instead.
                op.shed = True
                self.metrics.bump("deadline_drops")
                continue
            if kind == "put":
                key = frame.get("key")
                if not isinstance(key, str):
                    op.error = "put needs a string key"
                    continue
                if op.opid is not None and self._register_opid(op):
                    continue  # duplicate: answered from the record
                try:
                    # The kv fold stores state as a frozenset of pairs,
                    # so values must be hashable; reject per-op here
                    # rather than letting the fold poison the batch.
                    hash(frame.get("value"))
                except TypeError:
                    op.error = (
                        "put value must be hashable "
                        "(use scalars, tuples, or labels — not dicts/lists)"
                    )
                    continue
                shard = self.cluster.shard_map.shard_of(key)
                if shard not in self.cluster.groups:
                    # A subset cluster (multi-process worker) only hosts
                    # some shards; a misrouted key must error cleanly,
                    # not KeyError the whole batch cycle.
                    op.error = (
                        f"key {key!r} routes to shard {shard}, "
                        "which this server does not host"
                    )
                    continue
                per_shard[shard] = per_shard.get(shard, 0) + 1
                session.put(
                    key,
                    frame.get("value"),
                    on_issued=lambda label, op=op: self._put_issued(op, label),
                )
            elif kind == "read":
                shards = frame.get("shards")
                if shards is not None and (
                    not isinstance(shards, list)
                    or any(s not in self.cluster.groups for s in shards)
                ):
                    op.error = f"read names unknown shards: {shards!r}"
                    continue
                session.read(
                    shards=shards,
                    callback=lambda read, op=op: setattr(op, "read", read),
                )
        self.metrics.record_batch(len(batch))
        for shard, count in sorted(per_shard.items()):
            self.metrics.bump(f"shard{shard}_batch_puts", count)
        # One simulator drive for the whole cycle: every queued write
        # issues (or exhausts its retries), every barrier completes (or
        # aborts), every delivery lands.
        self.cluster.drain()
        loop = asyncio.get_event_loop()
        drains = []
        for op in batch:
            reply = self._build_reply(op)
            millis = (loop.time() - op.started) * 1000.0
            self.metrics.record_latency(op.frame.get("t", "op"), millis)
            self.metrics.record_latency("op", millis)
            if not op.conn.closed:
                try:
                    write_frame(op.conn.writer, reply, op.conn.codec)
                    self.metrics.bump("frames_out")
                    drains.append(op.conn)
                except (ConnectionError, RuntimeError):
                    self._close_connection(op.conn)
            self._op_done(op)
        # Slow-client write pausing: drain each touched connection; a
        # stalled reader delays only its own replies.
        for conn in dict.fromkeys(drains):
            try:
                await conn.writer.drain()
            except (ConnectionError, RuntimeError):
                self._close_connection(conn)

    #: Idempotency memory per session, in applied opids.  Bounds the
    #: at-most-once window: a put retried more than this many acked puts
    #: later could re-apply — far beyond any sane replay horizon.
    OPID_MEMORY = 1024

    def _register_opid(self, op: _PendingOp) -> bool:
        """Record ``op``'s opid; True if it was already applied (dup).

        The pending sentinel goes in *before* ``session.put`` so a
        duplicate in the same batch (e.g. a duplicated frame) dedupes
        too; :meth:`_put_issued` overwrites it with the real label.
        """
        session = op.conn.session
        applied = self._applied_puts.setdefault(session.name, OrderedDict())
        if op.opid in applied:
            op.dup = True
            self.metrics.bump("puts_deduped")
            return True
        applied[op.opid] = _PUT_PENDING
        while len(applied) > self.OPID_MEMORY:
            applied.popitem(last=False)
        return False

    def _put_issued(self, op: _PendingOp, label: Optional[MessageId]) -> None:
        op.label = label
        if label is not None:
            session = op.conn.session
            self.history[session.name].append(("write", label))
            if op.opid is not None:
                applied = self._applied_puts.get(session.name)
                if applied is not None and op.opid in applied:
                    applied[op.opid] = label

    def _build_reply(self, op: _PendingOp) -> Dict[str, Any]:
        frame = op.frame
        rid = frame.get("rid")
        kind = frame.get("t")
        session = op.conn.session
        self.metrics.bump("ops")
        if op.shed:
            return self._overload_frame(rid, "deadline")
        if op.error is not None:
            self.metrics.bump("errors")
            return {"t": "error", "rid": rid, "error": op.error}
        if kind == "put" and op.dup:
            # The opid was applied before (possibly in this very batch):
            # answer with the original's label, apply nothing twice.
            applied = self._applied_puts.get(session.name, {})
            recorded = applied.get(op.opid)
            if recorded is _PUT_PENDING or recorded is None:
                self.metrics.bump("puts_dropped")
                self.metrics.bump("errors")
                return {
                    "t": "error", "rid": rid,
                    "error": "put was dropped (shard unreachable)",
                }
            self.metrics.bump("puts")
            return {
                "t": "reply", "rid": rid, "ok": True,
                "label": recorded, "deduped": True,
                "token": session.export_token(),
            }
        if kind == "put":
            self.metrics.bump("puts")
            if op.label is None:
                if op.opid is not None:
                    # Nothing was applied, so forget the opid: a retry
                    # of this put must be a real re-attempt, not a
                    # replay of this failure.
                    applied = self._applied_puts.get(session.name)
                    if applied is not None:
                        applied.pop(op.opid, None)
                self.metrics.bump("puts_dropped")
                self.metrics.bump("errors")
                return {
                    "t": "error", "rid": rid,
                    "error": "put was dropped (shard unreachable)",
                }
            return {
                "t": "reply", "rid": rid, "ok": True,
                "label": op.label,
                "token": session.export_token(),
            }
        if kind == "get":
            self.metrics.bump("gets")
            key = frame.get("key")
            value, label, member, shard = self._cycle_get(session, key)
            if label is not None:
                session.observe(label)
            if isinstance(key, str):
                self.history[session.name].append(
                    ("get", (key, shard, label, member))
                )
            reply = {
                "t": "reply", "rid": rid, "ok": True,
                "key": key, "value": value,
                "token": session.export_token(),
            }
            if member is not None:
                reply["shard"] = shard
                reply["replica"] = member
            return reply
        self.metrics.bump("reads")
        read = op.read
        if read is None:
            self.metrics.bump("reads_failed")
            self.metrics.bump("errors")
            return {
                "t": "error", "rid": rid,
                "error": "barrier read aborted",
            }
        self.history[session.name].append(("read", read))
        return {
            "t": "reply", "rid": rid, "ok": True,
            "value": dict(read.value),
            "shards": list(read.shards),
            "rounds": read.rounds,
            "barrier_labels": {
                str(shard): list(labels)
                for shard, labels in read.barrier_labels.items()
            },
            "token": session.export_token(),
        }

    def _cycle_get(
        self, session: Session, key: object
    ) -> Tuple[Optional[object], Optional[MessageId], Optional[EntityId], Optional[int]]:
        """Serve a batch-path get, post-drain, as (value, label, member, shard).

        Runs after the cycle's ``cluster.drain()``, so any put this get
        was pipelined behind has already issued and (normally) settled
        at the contact.  Prefers a member read — the contact first (the
        coordinator path proper, and what the ``forward`` fallback lands
        on), then any other covering replica — and only falls back to
        the session-local ledger fold when nobody covers the floor yet
        (e.g. the shard is mid-repair); the fold is always safe but
        carries no label for the freshness audit.
        """
        cluster = self.cluster
        if isinstance(key, str):
            shard, _slot, floor = session.read_floor(key)
            if shard in cluster.groups:
                order = cluster.read_members(shard)
                contact = cluster.contact(shard)
                if contact in order:
                    order = [contact] + [m for m in order if m != contact]
                for member in order:
                    if cluster.covers(shard, member, floor):
                        value, label = cluster.member_read(shard, member, key)
                        self.metrics.bump("gets_cycle")
                        self.metrics.bump(f"replica_reads_{member}")
                        return value, label, member, shard
            value, label = self._session_get(session, key)
            return value, label, None, shard
        value, _label = self._session_get(session, key)
        return value, None, None, None

    def _session_get(
        self, session: Session, key: object
    ) -> Tuple[Optional[object], Optional[MessageId]]:
        """Session-local fallback read: fold the session's own causal past.

        The newest (value, write label) for ``key`` under the session's
        current frontier — read-your-writes for this session, no
        cross-session freshness promise.  Last resort behind the
        replica/coordinator member reads.
        """
        cluster = self.cluster
        past: Set[MessageId] = set()
        for labels in session.frontier.values():
            for label in labels:
                past.add(label)
                past |= cluster.graph.causal_past(label)
        best_index = -1
        best_value: Optional[object] = None
        best_label: Optional[MessageId] = None
        for label in past:
            record = cluster.ops.get(label)
            if record is None or record.kind not in DATA_KINDS:
                continue
            if record.index <= best_index:
                continue
            if record.kind == "put":
                if record.key == key:
                    best_index = record.index
                    best_value = record.value["value"]
                    best_label = label
            elif key in record.value["entries"]:
                best_index = record.index
                best_value = record.value["entries"][key]
                best_label = label
        return best_value, best_label

    # -- auditing ----------------------------------------------------------

    def session_logs(self) -> Dict[str, List[SessionOp]]:
        """The recorded wire history as session-guarantee checker input.

        A write is its label.  A read is anchored at its first barrier
        label (every barrier label of a read carries the session's whole
        frontier as ``Occurs-After``/``cross_deps``, so any one of them
        witnesses the session-order edge); its observed set is the data
        the snapshot covered, restricted to writes.
        """
        all_writes = {
            entry[1]
            for entries in self.history.values()
            for entry in entries
            if entry[0] == "write"
        }
        logs: Dict[str, List[SessionOp]] = {}
        for name, entries in self.history.items():
            log: List[SessionOp] = []
            for entry in entries:
                if entry[0] == "get":
                    # Replica-served gets are audited by index floors in
                    # `get_violations` — their served label is a foreign
                    # write, not a session operation, so shoehorning it
                    # into SessionOp would fabricate anchor edges.
                    continue
                if entry[0] == "write":
                    log.append(SessionOp("write", entry[1]))
                else:
                    read = entry[1]
                    anchor = min(
                        (
                            label
                            for labels in read.barrier_labels.values()
                            for label in labels
                        ),
                        key=lambda label: self.cluster.ops[label].index,
                    )
                    log.append(SessionOp(
                        "read", anchor, frozenset(read.labels & all_writes)
                    ))
            logs[name] = log
        return logs

    def get_violations(self) -> List[GuaranteeViolation]:
        """Audit replica-served gets for per-key session monotonicity.

        Walking each session's history in answer order, a key's *floor*
        is the newest (by issue index) write of that key the session is
        entitled to: its own puts, writes observed by its barrier reads,
        and writes served by its earlier gets.  Every get must return a
        write at or above the floor — returning an older value (or no
        value where the floor names one) means some replica answered
        below the session's causal context, i.e. the eligibility gate
        failed.
        """
        cluster = self.cluster
        ops = cluster.ops
        violations: List[GuaranteeViolation] = []
        for name, entries in self.history.items():
            floor: Dict[str, Tuple[int, MessageId]] = {}

            def raise_floor(key: Optional[str], label: MessageId) -> None:
                record = ops.get(label)
                if record is None:
                    return
                if record.kind == "put":
                    keys = [record.key] if record.key is not None else []
                elif record.kind == "migrate":
                    keys = list(record.value["entries"])
                else:
                    return
                if key is not None:
                    keys = [key] if key in keys else []
                for each in keys:
                    held = floor.get(each)
                    if held is None or record.index > held[0]:
                        floor[each] = (record.index, label)

            for entry in entries:
                if entry[0] == "write":
                    raise_floor(None, entry[1])
                elif entry[0] == "read":
                    for label in entry[1].labels:
                        raise_floor(None, label)
                else:
                    key, _shard, label, _member = entry[1]
                    held = floor.get(key)
                    if label is None:
                        if held is not None:
                            violations.append(GuaranteeViolation(
                                "get-freshness", name, held[1], held[1]
                            ))
                        continue
                    if held is not None and ops[label].index < held[0]:
                        violations.append(GuaranteeViolation(
                            "get-freshness", name, label, held[1]
                        ))
                    raise_floor(key, label)
        return violations

    def session_guarantee_violations(self) -> List[GuaranteeViolation]:
        """Check the recorded wire history against all four guarantees.

        The four classic checkers run over writes and barrier reads;
        replica-served gets get their own per-key freshness audit
        (:meth:`get_violations`), appended to the same list.
        """
        results = check_all_session_guarantees(
            self.cluster.graph, self.session_logs()
        )
        return [
            violation
            for violations in results.values()
            for violation in violations
        ] + self.get_violations()

    def check_invariants(self) -> List[Violation]:
        """Full cluster battery + cross-shard audit + wire guarantees."""
        violations = list(self.cluster.check_invariants())
        violations.extend(
            Violation("session-guarantee", None, str(v))
            for v in self.session_guarantee_violations()
        )
        return violations
