"""Always-on safety invariants for fault-injection campaigns.

A chaos campaign (``repro.chaos``) subjects a group of protocol stacks to
crashes, partitions, loss and membership churn; afterwards the
:class:`InvariantMonitor` audits every member against the properties the
paper's model takes for granted of its substrate:

``duplicate-delivery``
    No application label is delivered twice within one incarnation
    (labels make dedup trivial — Section 6.1).
``causal-order``
    Every delivery respects the ground-truth dependency set recorded at
    send time; a dependency counts as satisfied if it was delivered
    earlier in the same incarnation *or* settled via a stable-prefix
    skip (compacted history an amnesiac rejoiner can never re-deliver).
``total-order``
    For total-order protocols: any two members' final-incarnation logs
    agree on the relative order of every common pair of data labels.
``sequencer-epoch``
    For the sequencer protocol: all members agree, per global sequence
    number, on the winning ``(epoch, label)`` binding (the deterministic
    cross-epoch resolution converged), and on the position every common
    data label was actually delivered at.
``view-synchrony``
    At each view installation, the member had settled the union of all
    collected flush digests (the relaxed, *auditable* form of "same
    delivered set at the synchronization point": copies that straggle in
    after FLUSH_OK make exact set equality unobservable).
``gc-safety``
    No member compacted bodies beyond what every current member has
    settled — garbage collection never destroyed a label some member
    still needs delivered.
``convergence``
    Every member settled every data label any member settled (checked
    after the campaign's bounded repair phase; its failure is reported
    by the campaign runner as a *liveness* violation).

Each check is a separate method returning :class:`Violation` records so
tests can pin them individually; :meth:`InvariantMonitor.check_all` runs
the full battery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.types import Envelope, EntityId, MessageId


@dataclass(frozen=True)
class Violation:
    """One invariant breach at (usually) one member."""

    invariant: str
    member: Optional[EntityId]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        where = f" at {self.member!r}" if self.member is not None else ""
        return f"[{self.invariant}]{where}: {self.detail}"


class InvariantMonitor:
    """Audits a set of protocol stacks after a (possibly chaotic) run.

    Parameters
    ----------
    protocols:
        Entity -> protocol stack (all stacks ever part of the group).
    dependencies:
        Ground-truth causal dependencies per data label, recorded by the
        sender at send time (``repro.chaos.ChaosCluster`` maintains this).
    data_labels:
        The application labels; checks ignore protocol control traffic.
    view_syncs:
        Entity -> :class:`~repro.group.view_sync.ViewSyncAgent`, if the
        group ran the flush protocol.
    trackers:
        Entity -> :class:`~repro.broadcast.gc.StabilityTracker`, if the
        group ran garbage collection.
    expected_members:
        The membership the final view must equal, if known.
    check_total_order:
        Enable the pairwise total-order check (meaningful only for
        total-order protocols).
    sequencer_epochs:
        Enable the sequencer binding-agreement check (meaningful only for
        the sequencer protocol, whose stacks expose ``binding_table`` and
        ``delivered_positions``).
    audience:
        Optional per-label set of members the protocol *guarantees*
        ordering for (the send-time view).  RST's sent-matrix records
        owed counts per (origin, destination) pair for the members of
        the sender's current view only, so a message broadcast while a
        member was out of the view is never causally ordered with
        respect to that member — a per-destination weakness under churn
        (documented in ``docs/ROBUSTNESS.md``).  When supplied, a
        dependency is enforced at member ``m`` only if ``m`` is in the
        dependency's audience; labels absent from the map are enforced
        everywhere.
    """

    def __init__(
        self,
        protocols: Dict[EntityId, object],
        *,
        dependencies: Optional[Dict[MessageId, frozenset]] = None,
        data_labels: Optional[Set[MessageId]] = None,
        view_syncs: Optional[Dict[EntityId, object]] = None,
        trackers: Optional[Dict[EntityId, object]] = None,
        expected_members: Optional[Iterable[EntityId]] = None,
        check_total_order: bool = False,
        sequencer_epochs: bool = False,
        audience: Optional[Dict[MessageId, frozenset]] = None,
    ) -> None:
        self.protocols = protocols
        self.dependencies = dependencies or {}
        self.data_labels = (
            set(data_labels) if data_labels is not None
            else set(self.dependencies)
        )
        self.view_syncs = view_syncs or {}
        self.trackers = trackers or {}
        self.expected_members = (
            frozenset(expected_members) if expected_members is not None else None
        )
        self.check_total_order = check_total_order
        self.sequencer_epochs = sequencer_epochs
        self.audience = audience

    # -- incarnation plumbing ------------------------------------------------

    def _incarnations(
        self, protocol
    ) -> Iterator[Tuple[int, List[Envelope], Set[MessageId]]]:
        """Yield ``(incarnation, delivered_envelopes, skipped)`` per life."""
        for index, (envelopes, skipped) in enumerate(
            protocol.incarnation_archive
        ):
            yield index, list(envelopes), set(skipped)
        yield (
            protocol.incarnation,
            list(protocol._delivered_envelopes),
            set(protocol._skipped_stable),
        )

    def _data_log(self, envelopes: Sequence[Envelope]) -> List[MessageId]:
        return [
            e.msg_id for e in envelopes if e.msg_id in self.data_labels
        ]

    def _settled_data(self, protocol) -> Set[MessageId]:
        """Data labels the stack's *current* incarnation has settled."""
        delivered = {
            e.msg_id
            for e in protocol._delivered_envelopes
            if e.msg_id in self.data_labels
        }
        return delivered | (set(protocol._skipped_stable) & self.data_labels)

    # -- individual checks ---------------------------------------------------

    def check_duplicate_deliveries(self) -> List[Violation]:
        violations = []
        for member, protocol in self.protocols.items():
            for incarnation, envelopes, _skipped in self._incarnations(protocol):
                log = self._data_log(envelopes)
                seen: Set[MessageId] = set()
                for label in log:
                    if label in seen:
                        violations.append(Violation(
                            "duplicate-delivery",
                            member,
                            f"{label} delivered twice in incarnation "
                            f"{incarnation}",
                        ))
                    seen.add(label)
        return violations

    def check_causal_order(self) -> List[Violation]:
        violations = []
        for member, protocol in self.protocols.items():
            for incarnation, envelopes, skipped in self._incarnations(protocol):
                log = self._data_log(envelopes)
                position: Dict[MessageId, int] = {}
                for i, label in enumerate(log):
                    position.setdefault(label, i)
                for label in log:
                    for dep in self.dependencies.get(label, ()):
                        if dep in skipped:
                            continue
                        if self.audience is not None:
                            reached = self.audience.get(dep)
                            if reached is not None and member not in reached:
                                continue
                        dep_position = position.get(dep)
                        if dep_position is None:
                            violations.append(Violation(
                                "causal-order",
                                member,
                                f"{label} delivered in incarnation "
                                f"{incarnation} without its dependency {dep}",
                            ))
                        elif dep_position >= position[label]:
                            violations.append(Violation(
                                "causal-order",
                                member,
                                f"{label} delivered before its dependency "
                                f"{dep} in incarnation {incarnation}",
                            ))
        return violations

    def check_total_order_agreement(self) -> List[Violation]:
        if not self.check_total_order:
            return []
        violations = []
        logs = {
            member: self._data_log(protocol._delivered_envelopes)
            for member, protocol in self.protocols.items()
        }
        members = sorted(logs)
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                common = set(logs[first]) & set(logs[second])
                ordered_first = [l for l in logs[first] if l in common]
                ordered_second = [l for l in logs[second] if l in common]
                if ordered_first != ordered_second:
                    disagreement = next(
                        (a, b)
                        for a, b in zip(ordered_first, ordered_second)
                        if a != b
                    )
                    violations.append(Violation(
                        "total-order",
                        first,
                        f"{first!r} and {second!r} disagree on common-label "
                        f"order starting at {disagreement}",
                    ))
        return violations

    def check_sequencer_epochs(self) -> List[Violation]:
        """Binding agreement for the sequencer protocol.

        Two sub-properties, both over final-incarnation state:

        * members that know a binding for the same global sequence number
          agree on its winning ``(epoch, label)`` — the higher-epoch-wins
          merge is order-independent, so any disagreement means an
          unresolved (or wrongly resolved) cross-epoch conflict;
        * members that delivered the same data label delivered it at the
          same global position.
        """
        if not self.sequencer_epochs:
            return []
        violations = []
        tables = {
            member: dict(protocol.binding_table)
            for member, protocol in self.protocols.items()
            if hasattr(protocol, "binding_table")
        }
        members = sorted(tables)
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                for seq in tables[first].keys() & tables[second].keys():
                    if tables[first][seq] != tables[second][seq]:
                        violations.append(Violation(
                            "sequencer-epoch",
                            first,
                            f"{first!r} and {second!r} disagree on the "
                            f"binding for seq {seq}: "
                            f"{tables[first][seq]} vs {tables[second][seq]}",
                        ))
        positions = {
            member: dict(protocol.delivered_positions)
            for member, protocol in self.protocols.items()
            if hasattr(protocol, "delivered_positions")
        }
        members = sorted(positions)
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                for label in (
                    positions[first].keys() & positions[second].keys()
                ):
                    if positions[first][label] != positions[second][label]:
                        violations.append(Violation(
                            "sequencer-epoch",
                            first,
                            f"{first!r} delivered {label} at position "
                            f"{positions[first][label]} but {second!r} at "
                            f"{positions[second][label]}",
                        ))
        return violations

    def check_view_synchrony(self) -> List[Violation]:
        violations = []
        for member, agent in self.view_syncs.items():
            for record in agent.install_history:
                missing = set(record.digest_union) - set(record.snapshot)
                if self.data_labels:
                    missing &= self.data_labels
                if missing:
                    sample = sorted(missing, key=str)[:3]
                    violations.append(Violation(
                        "view-synchrony",
                        member,
                        f"view {record.view_id} installed without settling "
                        f"{len(missing)} digest label(s), e.g. {sample}",
                    ))
        return violations

    def check_gc_safety(self) -> List[Violation]:
        violations = []
        settled = {
            member: self._settled_data(protocol)
            for member, protocol in self.protocols.items()
        }
        for gc_member, tracker in self.trackers.items():
            for origin, frontier in tracker.applied_frontier.items():
                for member, have in settled.items():
                    missing = [
                        MessageId(origin, seqno)
                        for seqno in range(frontier)
                        if MessageId(origin, seqno) in self.data_labels
                        and MessageId(origin, seqno) not in have
                    ]
                    if missing:
                        violations.append(Violation(
                            "gc-safety",
                            gc_member,
                            f"compacted {origin!r} below seqno {frontier} "
                            f"but {member!r} never settled {missing[:3]}",
                        ))
        return violations

    def check_convergence(self) -> List[Violation]:
        violations = []
        settled = {
            member: self._settled_data(protocol)
            for member, protocol in self.protocols.items()
        }
        union: Set[MessageId] = set()
        for have in settled.values():
            union |= have
        for member, have in settled.items():
            missing = union - have
            if missing:
                sample = sorted(missing, key=str)[:3]
                violations.append(Violation(
                    "convergence",
                    member,
                    f"missing {len(missing)} settled data label(s), "
                    f"e.g. {sample}",
                ))
        return violations

    def check_holdback_drained(self) -> List[Violation]:
        violations = []
        for member, protocol in self.protocols.items():
            held = [
                e.msg_id
                for e in protocol.holdback_envelopes
                if e.msg_id in self.data_labels
            ]
            if held:
                violations.append(Violation(
                    "holdback-drained",
                    member,
                    f"{len(held)} data envelope(s) still held back, "
                    f"e.g. {held[:3]}",
                ))
        return violations

    def check_final_view(self) -> List[Violation]:
        if self.expected_members is None:
            return []
        views = {
            member: protocol.group.view
            for member, protocol in self.protocols.items()
        }
        violations = []
        for member, view in views.items():
            if frozenset(view.members) != self.expected_members:
                violations.append(Violation(
                    "final-view",
                    member,
                    f"final view {sorted(view.members)} != expected "
                    f"{sorted(self.expected_members)}",
                ))
                break  # membership is shared; one report suffices
        return violations

    # -- battery -------------------------------------------------------------

    def check_all(self) -> List[Violation]:
        """Run every applicable invariant; empty list means all safe."""
        return (
            self.check_duplicate_deliveries()
            + self.check_causal_order()
            + self.check_total_order_agreement()
            + self.check_sequencer_epochs()
            + self.check_view_synchrony()
            + self.check_gc_safety()
            + self.check_convergence()
            + self.check_holdback_drained()
            + self.check_final_view()
        )
