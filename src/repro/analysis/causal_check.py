"""Causal-delivery verification.

Checks the fundamental safety property of every causal broadcast protocol:
**no member delivers a message before all of its causal ancestors**.  Two
flavours:

* :func:`verify_against_graph` — against an explicit dependency graph
  (the ground truth for ``OSend`` traffic),
* :func:`verify_against_clocks` — against vector-clock stamps (for CBCAST
  traffic, where causality is clock-defined).

Both return the list of violations instead of raising, so property-based
tests can assert emptiness and diagnostics can print offending pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.clocks.vector import VectorClock
from repro.graph.depgraph import DependencyGraph
from repro.types import EntityId, MessageId


@dataclass(frozen=True)
class CausalViolation:
    """``descendant`` was delivered before ``ancestor`` at ``entity``."""

    entity: EntityId
    ancestor: MessageId
    descendant: MessageId
    ancestor_position: int
    descendant_position: int

    def __str__(self) -> str:  # pragma: no cover - diagnostics
        return (
            f"at {self.entity}: {self.descendant} (pos "
            f"{self.descendant_position}) delivered before its ancestor "
            f"{self.ancestor} (pos {self.ancestor_position})"
        )


def verify_against_graph(
    graph: DependencyGraph,
    sequences: Mapping[EntityId, Sequence[MessageId]],
) -> List[CausalViolation]:
    """Check every member's sequence against ``graph``'s direct edges.

    Direct edges suffice: transitive violations always include a direct
    one.  A missing ancestor (never delivered at that member) counts as a
    violation at position ``-1`` when its descendant *was* delivered.
    """
    violations: List[CausalViolation] = []
    for entity, sequence in sequences.items():
        position: Dict[MessageId, int] = {
            label: index for index, label in enumerate(sequence)
        }
        for label in sequence:
            if label not in graph:
                continue
            for ancestor in graph.ancestors_of(label):
                ancestor_pos = position.get(ancestor)
                if ancestor_pos is None:
                    violations.append(
                        CausalViolation(
                            entity, ancestor, label, -1, position[label]
                        )
                    )
                elif ancestor_pos > position[label]:
                    violations.append(
                        CausalViolation(
                            entity,
                            ancestor,
                            label,
                            ancestor_pos,
                            position[label],
                        )
                    )
    return violations


def verify_against_clocks(
    clocks: Mapping[MessageId, VectorClock],
    sequences: Mapping[EntityId, Sequence[MessageId]],
) -> List[CausalViolation]:
    """Check sequences against vector-clock causality.

    For every pair of delivered messages where ``clock(a) < clock(b)``,
    ``a`` must appear before ``b`` in every member's sequence.  Quadratic
    per member — intended for test-sized runs.
    """
    violations: List[CausalViolation] = []
    for entity, sequence in sequences.items():
        stamped = [m for m in sequence if m in clocks]
        for i, later in enumerate(stamped):
            for j in range(i):
                earlier = stamped[j]
                # earlier was delivered first; violation if later < earlier.
                if clocks[later] < clocks[earlier]:
                    violations.append(
                        CausalViolation(entity, later, earlier, i, j)
                    )
    return violations


def sequences_respect_fifo(
    sequences: Mapping[EntityId, Sequence[MessageId]],
) -> List[CausalViolation]:
    """Check per-sender seqno monotonicity in every delivery sequence."""
    violations: List[CausalViolation] = []
    for entity, sequence in sequences.items():
        last_seen: Dict[EntityId, int] = {}
        for index, label in enumerate(sequence):
            previous = last_seen.get(label.sender, -1)
            if label.seqno <= previous:
                ancestor = MessageId(label.sender, previous)
                violations.append(
                    CausalViolation(entity, label, ancestor, index, -1)
                )
            else:
                last_seen[label.sender] = label.seqno
    return violations
