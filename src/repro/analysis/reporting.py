"""Plain-text tables for benchmark output.

Every benchmark prints the rows/series its experiment reproduces; this
module keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Columns are right-aligned except the first.
    """
    def fmt(value: Any) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered: List[List[str]] = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts)

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in rendered:
        out.append(line(row))
    return "\n".join(out)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> None:
    """Print :func:`format_table` output, framed by blank lines."""
    print()
    print(format_table(headers, rows, title=title, float_format=float_format))
    print()
