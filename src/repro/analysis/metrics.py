"""Metrics extracted from simulation traces.

The experiments report three families of numbers:

* **delivery latency** — time from broadcast ("send" trace event) to
  delivery at each member ("deliver" event); the paper's asynchronism
  claims translate to lower latency for causally ordered traffic than for
  totally ordered traffic,
* **hold-back pressure** — envelopes parked awaiting their predicate,
* **message cost** — network hops per application operation (total order
  pays for ack/order traffic; stable points do not).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.trace import TraceRecorder
from repro.types import EntityId, MessageId


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    minimum: float
    median: float
    p95: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "SummaryStats":
        if not values:
            return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        ordered = sorted(values)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            minimum=ordered[0],
            median=_quantile(ordered, 0.5),
            p95=_quantile(ordered, 0.95),
            maximum=ordered[-1],
        )


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of a pre-sorted sample."""
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


# ---------------------------------------------------------------------------
# Latency
# ---------------------------------------------------------------------------


def delivery_latencies(
    trace: TraceRecorder,
) -> Dict[Tuple[MessageId, EntityId], float]:
    """Latency of each (message, member) delivery, from the trace.

    Uses the *earliest* ``send`` event per label (re-broadcasts, e.g. by a
    sequencer, do not reset the clock) and the ``deliver`` event per
    member.
    """
    send_times: Dict[MessageId, float] = {}
    for event in trace.of_kind("send"):
        msg_id = event.get("msg_id")
        if msg_id not in send_times:
            send_times[msg_id] = event.time
    latencies: Dict[Tuple[MessageId, EntityId], float] = {}
    for event in trace.of_kind("deliver"):
        msg_id = event.get("msg_id")
        entity = event.get("entity")
        sent = send_times.get(msg_id)
        if sent is not None:
            latencies[(msg_id, entity)] = event.time - sent
    return latencies


def latency_summary(
    trace: TraceRecorder, operations: Optional[set] = None
) -> SummaryStats:
    """Summary of delivery latencies, optionally restricted to operations.

    ``operations`` filters by the ``operation`` field of deliver events —
    used to exclude control traffic (acks, order bindings) from
    application-latency comparisons.
    """
    send_times: Dict[MessageId, float] = {}
    for event in trace.of_kind("send"):
        msg_id = event.get("msg_id")
        if msg_id not in send_times:
            send_times[msg_id] = event.time
    samples: List[float] = []
    for event in trace.of_kind("deliver"):
        if operations is not None and event.get("operation") not in operations:
            continue
        sent = send_times.get(event.get("msg_id"))
        if sent is not None:
            samples.append(event.time - sent)
    return SummaryStats.of(samples)


# ---------------------------------------------------------------------------
# Hold-back pressure
# ---------------------------------------------------------------------------


def holdback_summary(trace: TraceRecorder) -> SummaryStats:
    """Summary of hold-back queue sizes sampled at each enqueue.

    ``hold`` is a *hop* event: with ``hop_events="sampled"`` the recorder
    keeps only every Nth one, so this summary becomes a subsample (still
    unbiased for queue-size quantiles); with ``"off"`` it is empty.
    """
    sizes = [float(e.get("queue", 0)) for e in trace.of_kind("hold")]
    return SummaryStats.of(sizes)


def hold_durations(trace: TraceRecorder) -> SummaryStats:
    """How long messages sat in hold-back queues before delivery.

    Matches ``hold`` events to ``deliver`` events per (entity, message).
    Under ``hop_events="sampled"``/``"off"`` only messages whose ``hold``
    event survived sampling contribute a duration.
    """
    held_at: Dict[Tuple[EntityId, MessageId], float] = {}
    durations: List[float] = []
    for event in trace:
        key = (event.get("entity"), event.get("msg_id"))
        if event.kind == "hold":
            held_at.setdefault(key, event.time)
        elif event.kind == "deliver":
            start = held_at.pop(key, None)
            if start is not None:
                durations.append(event.time - start)
    return SummaryStats.of(durations)


@dataclass(frozen=True)
class DrainEfficiency:
    """How much predicate work the hold-back drain performed.

    ``evaluations_per_delivery`` is the headline number: the naive
    rescan-everything drain pays O(pending) evaluations per delivery
    (quadratic over a deep queue), while the indexed wakeup engine pays
    ~1 — each envelope is evaluated once when it arrives runnable and
    once per unblocking event thereafter.
    """

    predicate_evaluations: int
    deliveries: int

    @property
    def evaluations_per_delivery(self) -> float:
        if self.deliveries == 0:
            return 0.0
        return self.predicate_evaluations / self.deliveries


def drain_efficiency(*protocols: object) -> DrainEfficiency:
    """Aggregate drain work across one or more protocol stacks.

    Accepts any objects exposing ``predicate_evaluations`` and
    ``delivered_count`` (i.e. ``BroadcastProtocol`` instances, in either
    drain mode).
    """
    evaluations = 0
    deliveries = 0
    for protocol in protocols:
        evaluations += getattr(protocol, "predicate_evaluations", 0)
        deliveries += getattr(protocol, "delivered_count", 0)
    return DrainEfficiency(
        predicate_evaluations=evaluations, deliveries=deliveries
    )


# ---------------------------------------------------------------------------
# Message cost
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MessageCost:
    """Network cost attribution for one run."""

    app_broadcasts: int
    control_broadcasts: int
    hops_sent: int
    hops_delivered: int

    @property
    def control_overhead_ratio(self) -> float:
        """Control broadcasts per application broadcast."""
        if self.app_broadcasts == 0:
            return 0.0
        return self.control_broadcasts / self.app_broadcasts


CONTROL_OPERATIONS = {"__ack__", "__order__", "__nack__", "__digest__"}


def message_cost(trace: TraceRecorder, network: object) -> MessageCost:
    """Split broadcast counts into application vs control traffic."""
    app = 0
    control = 0
    for event in trace.of_kind("send"):
        if event.get("operation") in CONTROL_OPERATIONS:
            control += 1
        else:
            app += 1
    return MessageCost(
        app_broadcasts=app,
        control_broadcasts=control,
        hops_sent=getattr(network, "hops_sent", 0),
        hops_delivered=getattr(network, "hops_delivered", 0),
    )
