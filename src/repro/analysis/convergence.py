"""Agreement checkers: convergence and stable-point consistency.

Three levels of agreement, matching the paper's consistency story:

* :func:`states_agree` — do all replicas hold the same value *right now*?
  (Required at the end of a run, and at every stable point; **not**
  required mid-cycle.)
* :func:`stable_points_agree` — Section 4's claim: at each stable point
  index, every replica passed through the identical state, even though
  their mid-cycle sequences differed.
* :func:`same_message_sets_between_sync_points` — Section 3.2's claim:
  "every member observes the same set of messages between synchronization
  points" (sequences may differ; sets must not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.replica import Replica
from repro.types import EntityId, MessageId


@dataclass(frozen=True)
class Disagreement:
    """Two members disagreeing about a value at a comparison point."""

    kind: str
    index: int
    entity_a: EntityId
    entity_b: EntityId
    value_a: object
    value_b: object

    def __str__(self) -> str:  # pragma: no cover - diagnostics
        return (
            f"{self.kind}[{self.index}]: {self.entity_a}={self.value_a!r} "
            f"vs {self.entity_b}={self.value_b!r}"
        )


def states_agree(states: Mapping[EntityId, object]) -> List[Disagreement]:
    """Pairwise-compare current states against the first member's."""
    disagreements: List[Disagreement] = []
    items = list(states.items())
    if not items:
        return disagreements
    reference_entity, reference_state = items[0]
    for entity, state in items[1:]:
        if state != reference_state:
            disagreements.append(
                Disagreement(
                    "state", 0, reference_entity, entity,
                    reference_state, state,
                )
            )
    return disagreements


def stable_points_agree(
    replicas: Mapping[EntityId, Replica],
    require_same_count: bool = True,
) -> List[Disagreement]:
    """Verify identical (label, state) at each stable point index.

    Checks both that members synchronized on the *same message* at each
    point and that their states there were equal.  When
    ``require_same_count`` is set, differing stable-point counts are also
    reported (index ``-1``).
    """
    disagreements: List[Disagreement] = []
    items = list(replicas.items())
    if len(items) < 2:
        return disagreements
    reference_entity, reference = items[0]
    reference_points = reference.stable_states
    for entity, replica in items[1:]:
        points = replica.stable_states
        if require_same_count and len(points) != len(reference_points):
            disagreements.append(
                Disagreement(
                    "stable_count", -1, reference_entity, entity,
                    len(reference_points), len(points),
                )
            )
        for index in range(min(len(points), len(reference_points))):
            ref_point, ref_state = reference_points[index]
            point, state = points[index]
            if point.msg_id != ref_point.msg_id:
                disagreements.append(
                    Disagreement(
                        "stable_label", index, reference_entity, entity,
                        ref_point.msg_id, point.msg_id,
                    )
                )
            if state != ref_state:
                disagreements.append(
                    Disagreement(
                        "stable_state", index, reference_entity, entity,
                        ref_state, state,
                    )
                )
    return disagreements


def split_by_sync_points(
    sequence: Sequence[MessageId],
    sync_labels: Sequence[MessageId],
) -> List[Set[MessageId]]:
    """Chop a delivery sequence into segments ending at each sync label.

    Returns one set per segment: messages delivered up to and including
    the first sync label, then between consecutive sync labels, then the
    trailing open segment (possibly empty sets throughout).
    """
    sync_order = {label: i for i, label in enumerate(sync_labels)}
    segments: List[Set[MessageId]] = []
    current: Set[MessageId] = set()
    for label in sequence:
        current.add(label)
        if label in sync_order:
            segments.append(current)
            current = set()
    segments.append(current)
    return segments


def same_message_sets_between_sync_points(
    sequences: Mapping[EntityId, Sequence[MessageId]],
    sync_labels: Sequence[MessageId],
) -> List[Disagreement]:
    """Verify all members saw identical message *sets* per segment."""
    disagreements: List[Disagreement] = []
    items = list(sequences.items())
    if len(items) < 2:
        return disagreements
    reference_entity, reference_seq = items[0]
    reference_segments = split_by_sync_points(reference_seq, sync_labels)
    for entity, sequence in items[1:]:
        segments = split_by_sync_points(sequence, sync_labels)
        for index in range(max(len(segments), len(reference_segments))):
            ref_set = (
                reference_segments[index]
                if index < len(reference_segments)
                else set()
            )
            this_set = segments[index] if index < len(segments) else set()
            if ref_set != this_set:
                disagreements.append(
                    Disagreement(
                        "segment_set", index, reference_entity, entity,
                        frozenset(ref_set), frozenset(this_set),
                    )
                )
    return disagreements


def divergence_between_sync_points(
    sequences: Mapping[EntityId, Sequence[MessageId]],
) -> int:
    """Count positions where members' delivery sequences differ.

    A direct measure of the asynchronism the relaxed ordering permits:
    total order forces this to zero; causal order allows it wherever
    messages are concurrent.
    """
    items = list(sequences.values())
    if len(items) < 2:
        return 0
    reference = items[0]
    differing = 0
    for sequence in items[1:]:
        for index in range(min(len(reference), len(sequence))):
            if reference[index] != sequence[index]:
                differing += 1
        differing += abs(len(reference) - len(sequence))
    return differing
