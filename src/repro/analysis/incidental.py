"""Quantifying incidental vs semantic ordering.

The paper's footnote 1 (citing Cheriton & Skeen's "causal controversy")
distinguishes the *semantic* ordering an application means from the
*incidental* ordering a clock-based transport infers: CBCAST treats every
message a member delivered before sending as a causal predecessor of the
send, whether or not the application cares.

Given the application's declared dependency graph and the vector clocks a
CBCAST run produced for the same message set, this module counts:

* **semantic pairs** — ordered pairs the application declared
  (transitively);
* **clock pairs** — ordered pairs the clocks impose;
* **incidental pairs** — clock pairs the application never asked for:
  pure false dependencies that reduce deliverable concurrency.

Clock causality is always a superset of the declared causality when
senders respect their declarations, so ``incidental = clock - semantic``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Tuple

from repro.clocks.vector import VectorClock
from repro.graph.depgraph import DependencyGraph
from repro.types import MessageId


@dataclass(frozen=True)
class OrderingComparison:
    """Counts of ordered pairs under each regime."""

    messages: int
    semantic_pairs: int
    clock_pairs: int

    @property
    def incidental_pairs(self) -> int:
        return self.clock_pairs - self.semantic_pairs

    @property
    def incidental_fraction(self) -> float:
        """Share of clock-imposed order the application never declared."""
        if self.clock_pairs == 0:
            return 0.0
        return self.incidental_pairs / self.clock_pairs


def semantic_pairs(graph: DependencyGraph) -> List[Tuple[MessageId, MessageId]]:
    """All (earlier, later) pairs the declared graph orders."""
    nodes = graph.nodes
    return [
        (a, b)
        for a in nodes
        for b in nodes
        if a != b and graph.precedes(a, b)
    ]


def clock_pairs(
    clocks: Mapping[MessageId, VectorClock],
) -> List[Tuple[MessageId, MessageId]]:
    """All (earlier, later) pairs the vector clocks order."""
    labels = list(clocks)
    return [
        (a, b)
        for a in labels
        for b in labels
        if a != b and clocks[a] < clocks[b]
    ]


def compare_orderings(
    graph: DependencyGraph,
    clocks: Mapping[MessageId, VectorClock],
) -> OrderingComparison:
    """Count semantic vs clock-imposed ordered pairs for one message set.

    Only labels present in both the graph and the clock map participate,
    so the comparison is apples-to-apples even if one run carried extra
    control traffic.
    """
    shared = [label for label in graph.nodes if label in clocks]
    shared_set = set(shared)
    semantic = sum(
        1
        for a, b in semantic_pairs(graph)
        if a in shared_set and b in shared_set
    )
    clock = sum(
        1
        for a, b in clock_pairs({l: clocks[l] for l in shared})
    )
    return OrderingComparison(
        messages=len(shared), semantic_pairs=semantic, clock_pairs=clock
    )


def incidental_pairs(
    graph: DependencyGraph,
    clocks: Mapping[MessageId, VectorClock],
) -> List[Tuple[MessageId, MessageId]]:
    """The concrete clock-only pairs (for diagnostics)."""
    shared = {label for label in graph.nodes if label in clocks}
    return [
        (a, b)
        for a, b in clock_pairs(
            {l: c for l, c in clocks.items() if l in shared}
        )
        if not graph.precedes(a, b)
    ]
