"""ASCII space-time diagrams from simulation traces.

Renders the classic Lamport diagram: one row per entity, time flowing
right, with ``b`` marking a broadcast, ``d`` a delivery, ``*`` a stable
point and ``!`` a drop.  Useful in demos and when debugging an ordering
protocol — a held-back message is visible as a late ``d`` far from its
column of arrival.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.trace import TraceRecorder
from repro.types import EntityId

# Priority when several events share a cell (highest wins).
_GLYPHS = {"drop": "!", "stable_point": "*", "send": "b", "deliver": "d"}
_PRIORITY = {"!": 3, "*": 2, "b": 1, "d": 0}


@dataclass(frozen=True)
class TimelineOptions:
    """Rendering knobs."""

    width: int = 72
    include_control: bool = False


def _entity_of(event) -> Optional[EntityId]:
    if event.kind == "send":
        return event.get("source")
    if event.kind in ("deliver", "hold", "stable_point"):
        return event.get("entity")
    if event.kind == "drop":
        return event.get("destination")
    return None


def render_timeline(
    trace: TraceRecorder,
    entities: Optional[Sequence[EntityId]] = None,
    options: TimelineOptions = TimelineOptions(),
) -> str:
    """Render the trace as an ASCII space-time diagram.

    ``entities`` fixes the row order (default: order of first appearance).
    Control operations (``__ack__`` etc.) are skipped unless
    ``include_control`` is set.
    """
    events = [
        e
        for e in trace
        if e.kind in _GLYPHS
        and (
            options.include_control
            or not str(e.get("operation", "")).startswith("__")
        )
    ]
    if not events:
        return "(no events)"
    if entities is None:
        seen: List[EntityId] = []
        for event in events:
            entity = _entity_of(event)
            if entity is not None and entity not in seen:
                seen.append(entity)
        entities = seen

    start = events[0].time
    end = max(e.time for e in events)
    span = max(end - start, 1e-9)
    columns = max(options.width - 1, 1)

    def column(time: float) -> int:
        return min(columns - 1, int((time - start) / span * columns))

    rows: Dict[EntityId, List[str]] = {
        entity: ["."] * columns for entity in entities
    }
    for event in events:
        entity = _entity_of(event)
        if entity not in rows:
            continue
        glyph = _GLYPHS[event.kind]
        cell = column(event.time)
        current = rows[entity][cell]
        if current == "." or _PRIORITY[glyph] > _PRIORITY.get(current, -1):
            rows[entity][cell] = glyph

    label_width = max(len(str(e)) for e in entities)
    lines = [
        f"{str(entity):>{label_width}} |{''.join(cells)}"
        for entity, cells in rows.items()
    ]
    axis = (
        " " * label_width
        + " +"
        + "-" * columns
        + f"\n{'':>{label_width}}  t={start:.2f}"
        + " " * max(0, columns - 18)
        + f"t={end:.2f}"
    )
    legend = "b=broadcast  d=deliver  *=stable point  !=drop"
    return "\n".join(lines) + "\n" + axis + "\n" + legend


def delivery_matrix(
    trace: TraceRecorder, digits: int = 1
) -> Dict[EntityId, List[str]]:
    """Per-entity delivery timeline as ``label@time`` strings.

    A compact textual alternative to the diagram, convenient in tests.
    """
    result: Dict[EntityId, List[str]] = {}
    for event in trace.of_kind("deliver"):
        entity = event.get("entity")
        label = event.get("msg_id")
        result.setdefault(entity, []).append(
            f"{label}@{round(event.time, digits)}"
        )
    return result
