"""Black-box causal-consistency auditing of client-observed histories.

Everything else in :mod:`repro.analysis` audits the system from the
*inside*: ground-truth stamps, the simulator's dependency graph, the
server's own session records.  A wire-layer bug — a codec that reorders
fields, a batch cycle that answers a get before the put it was pipelined
behind, a routing front-end that merges tokens wrongly — is invisible to
those audits because they never see what the *client* saw.

This module closes that gap with the polynomial-time checks of
"On Verifying Causal Consistency" (Bouajjani, Enea, Guerraoui, Hamza —
POPL'17, arXiv:1611.00580).  For *differentiated* histories (no value is
written twice to the same key — the recorder enforces it), causal
consistency and its two classic strengthenings are each equivalent to
the absence of a small set of *bad patterns* over the history's
program order ``po`` and read-from relation ``wr``:

========================  =====================================================
``cyclic-co``             ``po ∪ wr`` has a cycle (CC)
``thin-air-read``         a read returns a value nobody wrote (CC)
``write-co-init-read``    a read returns the initial value although a
                          write of its key is in its causal past (CC)
``write-co-read``         a read returns a value overwritten in its own
                          causal past (CC)
``cyclic-cf``             causality plus the conflict order induced by
                          reads has a cycle (CCv — causal convergence)
``write-hb-init-read``    like write-co-init-read under the per-operation
                          happened-before of causal memory (CM)
``cyclic-hb``             a per-operation happened-before cycle (CM)
========================  =====================================================

The checker is black-box by construction: its only inputs are the
operations a client issued and the values it got back.  No simulator
stamps, no server cooperation — if the whole serving stack between the
socket and the ledger lies, the history still convicts it.

Reads of *many* keys (the serve layer's barrier reads) are recorded as a
block of single-key reads in deterministic key order.  For a genuinely
causally-closed snapshot the intra-block order is immaterial (a closed
cut's values are pairwise causally consistent under any serialisation);
for a broken snapshot some order exhibits the anomaly, which is exactly
what an auditor wants.

Causal pasts are kept as integer bitmasks, so the transitive closures
behind every pattern are O(n²/word) — comfortably polynomial, and fast
enough to run inside every chaos campaign and CI smoke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Consistency levels, weakest first.  ``CC`` is implied by both others;
#: ``CCv`` (convergence) and ``CM`` (causal memory) are incomparable.
LEVELS = ("CC", "CCv", "CM")

#: Bad pattern -> the weakest level it refutes.
PATTERN_LEVEL = {
    "undifferentiated": "CC",
    "cyclic-co": "CC",
    "thin-air-read": "CC",
    "write-co-init-read": "CC",
    "write-co-read": "CC",
    "cyclic-cf": "CCv",
    "write-hb-init-read": "CM",
    "cyclic-hb": "CM",
}


@dataclass(frozen=True)
class WireOp:
    """One client-observed operation.

    ``kind`` is ``"put"`` (value = what was written) or ``"get"``
    (value = what came back; ``None`` means the initial/absent value).
    ``block`` groups the single-key reads of one barrier read; ``None``
    for standalone operations.
    """

    session: str
    index: int
    kind: str
    key: str
    value: object
    block: Optional[int] = None

    def describe(self) -> str:
        if self.kind == "put":
            return f"{self.session}[{self.index}] put {self.key}={self.value!r}"
        return f"{self.session}[{self.index}] get {self.key} -> {self.value!r}"


@dataclass(frozen=True)
class WireViolation:
    """One bad pattern found in a client-observed history."""

    pattern: str
    detail: str

    @property
    def level(self) -> str:
        return PATTERN_LEVEL.get(self.pattern, "CC")

    def __str__(self) -> str:  # pragma: no cover - diagnostics
        return f"[{self.level}] {self.pattern}: {self.detail}"


class WireRecorder:
    """Client-side capture of one session's observed operations.

    Attach one to a client; call :meth:`put` on every *acknowledged*
    write, :meth:`get` on every answered read, :meth:`read` on every
    barrier-read snapshot.  Operations the client gave up on (deadline,
    exhausted retries) are never recorded — the auditor judges what the
    server claimed, not what the client hoped.
    """

    def __init__(self, session: str) -> None:
        self.session = session
        self.ops: List[WireOp] = []
        self._blocks = 0

    def put(self, key: str, value: object) -> None:
        self.ops.append(
            WireOp(self.session, len(self.ops), "put", key, value)
        )

    def get(self, key: str, value: object) -> None:
        self.ops.append(
            WireOp(self.session, len(self.ops), "get", key, value)
        )

    def read(self, values: Mapping[str, object]) -> None:
        """Record one barrier-read snapshot as a block of keyed reads."""
        block = self._blocks
        self._blocks += 1
        for key in sorted(values):
            self.ops.append(WireOp(
                self.session, len(self.ops), "get", key, values[key],
                block=block,
            ))


class WireHistory:
    """A multi-session client-observed history, ready for checking."""

    def __init__(self, sessions: Mapping[str, Sequence[WireOp]]) -> None:
        #: session -> its operations in program order (re-indexed).
        self.sessions: Dict[str, List[WireOp]] = {
            name: [
                WireOp(name, index, op.kind, op.key, op.value, op.block)
                for index, op in enumerate(ops)
            ]
            for name, ops in sessions.items()
        }

    @classmethod
    def merge(cls, recorders: Iterable[WireRecorder]) -> "WireHistory":
        sessions: Dict[str, List[WireOp]] = {}
        for recorder in recorders:
            sessions.setdefault(recorder.session, []).extend(recorder.ops)
        return cls(sessions)

    @property
    def ops(self) -> List[WireOp]:
        return [op for ops in self.sessions.values() for op in ops]

    def __len__(self) -> int:
        return sum(len(ops) for ops in self.sessions.values())


# -- the checker -------------------------------------------------------------


@dataclass
class _Indexed:
    """The history flattened to integer ids with po/wr edges resolved."""

    ops: List[WireOp] = field(default_factory=list)
    po: List[Tuple[int, int]] = field(default_factory=list)
    #: read op id -> writer op id (resolved via the read value).
    wr: Dict[int, int] = field(default_factory=dict)
    #: key -> ids of its writes.
    writes: Dict[str, List[int]] = field(default_factory=dict)
    #: read ids that returned the initial value.
    init_reads: List[int] = field(default_factory=list)
    violations: List[WireViolation] = field(default_factory=list)


def _index(history: WireHistory) -> _Indexed:
    out = _Indexed()
    by_value: Dict[Tuple[str, object], List[int]] = {}
    for ops in history.sessions.values():
        previous: Optional[int] = None
        for op in ops:
            op_id = len(out.ops)
            out.ops.append(op)
            if previous is not None:
                out.po.append((previous, op_id))
            previous = op_id
            if op.kind == "put":
                out.writes.setdefault(op.key, []).append(op_id)
                try:
                    by_value.setdefault((op.key, op.value), []).append(op_id)
                except TypeError:
                    # Unhashable written value: key it by repr — the
                    # auditor only needs equality, and a client that
                    # writes unhashable values already failed the put.
                    by_value.setdefault(
                        (op.key, repr(op.value)), []
                    ).append(op_id)
    for key, writers in by_value.items():
        if len(writers) > 1:
            out.violations.append(WireViolation(
                "undifferentiated",
                f"value {key[1]!r} written to {key[0]!r} "
                f"{len(writers)} times — wr is ambiguous: "
                + ", ".join(out.ops[w].describe() for w in writers),
            ))
    for op_id, op in enumerate(out.ops):
        if op.kind != "get":
            continue
        if op.value is None:
            out.init_reads.append(op_id)
            continue
        try:
            writers = by_value.get((op.key, op.value), [])
        except TypeError:
            writers = by_value.get((op.key, repr(op.value)), [])
        if not writers:
            out.violations.append(WireViolation(
                "thin-air-read",
                f"{op.describe()} — nobody wrote that value",
            ))
        else:
            out.wr[op_id] = writers[0]
    return out


def _closure(n: int, edges: Iterable[Tuple[int, int]]) -> List[int]:
    """Strict transitive closure as per-node successor bitmasks.

    Warshall with integer bitsets: ``reach[a] >> b & 1`` iff a path
    a → … → b exists.  O(n² / wordsize) per pivot — plenty for the few
    hundred operations a campaign history carries.
    """
    reach = [0] * n
    for a, b in edges:
        reach[a] |= 1 << b
    for k in range(n):
        bit = 1 << k
        mask = reach[k]
        if not mask:
            continue
        for a in range(n):
            if reach[a] & bit:
                updated = reach[a] | mask
                if updated != reach[a]:
                    reach[a] = updated
    return reach


def _cycle_members(reach: List[int]) -> List[int]:
    return [a for a in range(len(reach)) if reach[a] >> a & 1]


def check_wire_history(
    history: WireHistory, levels: Sequence[str] = LEVELS
) -> List[WireViolation]:
    """Check a client-observed history for CC/CCv/CM bad patterns.

    Returns every violation found (empty list = the history is causally
    consistent at all requested ``levels``).  A violation's ``level``
    names the weakest guarantee it refutes, so callers can gate on CC
    only, or on the full causal-memory contract.
    """
    unknown = set(levels) - set(LEVELS)
    if unknown:
        raise ValueError(f"unknown consistency levels: {sorted(unknown)}")
    indexed = _index(history)
    violations = list(indexed.violations)
    ops = indexed.ops
    n = len(ops)
    if n == 0:
        return violations
    co_edges = indexed.po + [(w, r) for r, w in indexed.wr.items()]
    co = _closure(n, co_edges)
    cyclic = _cycle_members(co)
    if cyclic:
        violations.append(WireViolation(
            "cyclic-co",
            "po ∪ wr is cyclic through "
            + ", ".join(ops[a].describe() for a in cyclic[:4]),
        ))
        # Every downstream pattern assumes co is a partial order; report
        # the cycle alone rather than cascading artifacts of it.
        return violations

    def co_before(a: int, b: int) -> bool:
        return bool(co[a] >> b & 1)

    # write-co-read: r reads w1 although w1 -> w2 -> r for a sibling
    # write w2 of the same key.
    for r, w1 in indexed.wr.items():
        key = ops[r].key
        for w2 in indexed.writes.get(key, ()):
            if w2 != w1 and co_before(w1, w2) and co_before(w2, r):
                violations.append(WireViolation(
                    "write-co-read",
                    f"{ops[r].describe()} is stale: "
                    f"{ops[w2].describe()} overwrote it inside the "
                    f"read's causal past",
                ))
                break
    # write-co-init-read: r reads the initial value although a write of
    # its key is in r's causal past.
    for r in indexed.init_reads:
        key = ops[r].key
        for w in indexed.writes.get(key, ()):
            if co_before(w, r):
                violations.append(WireViolation(
                    "write-co-init-read",
                    f"{ops[r].describe()} returned the initial value "
                    f"although {ops[w].describe()} is in its causal past",
                ))
                break
    if "CCv" in levels:
        violations.extend(_check_ccv(indexed, co))
    if "CM" in levels:
        violations.extend(_check_cm(indexed))
    return violations


def _check_ccv(indexed: _Indexed, co: List[int]) -> List[WireViolation]:
    """CCv's extra pattern: the conflict order must embed in a total.

    ``w1 -> cf -> w2`` when some read of ``w2``'s value has ``w1`` (a
    sibling write) in its causal past: any convergent arbitration must
    then order ``w1`` before ``w2``.  A ``co ∪ cf`` cycle means no
    arbitration total order exists.
    """
    ops = indexed.ops
    n = len(ops)
    cf_edges: List[Tuple[int, int]] = []
    for r, w2 in indexed.wr.items():
        key = ops[r].key
        for w1 in indexed.writes.get(key, ()):
            if w1 != w2 and bool(co[w1] >> r & 1):
                cf_edges.append((w1, w2))
    combined = cf_edges + [
        (a, b) for a in range(n) for b in range(n) if co[a] >> b & 1
    ]
    reach = _closure(n, combined)
    cyclic = _cycle_members(reach)
    if cyclic:
        return [WireViolation(
            "cyclic-cf",
            "no convergent write order exists: co ∪ cf cycles through "
            + ", ".join(ops[a].describe() for a in cyclic[:4]),
        )]
    return []


def _check_cm(indexed: _Indexed) -> List[WireViolation]:
    """CM's patterns under the per-operation happened-before relations.

    ``hb_o`` is the smallest transitive relation over the causal past of
    ``o`` containing po ∪ wr there, closed under: if ``w1 -> hb_o -> r``
    and ``r`` reads sibling write ``w2``, then ``w1 -> hb_o -> w2``.
    Both patterns are monotone in ``o`` along program order (the causal
    past and the closure only grow), so checking each session's final
    operation covers every ``o``.
    """
    ops = indexed.ops
    n = len(ops)
    violations: List[WireViolation] = []
    co = _closure(
        n, indexed.po + [(w, r) for r, w in indexed.wr.items()]
    )
    base_edges = indexed.po + [(w, r) for r, w in indexed.wr.items()]
    lasts: Dict[str, int] = {}
    for op_id, op in enumerate(ops):
        lasts[op.session] = max(lasts.get(op.session, -1), op_id)
    seen_patterns = set()
    for session, o in sorted(lasts.items()):
        past = co[o] | (1 << o)
        members = [a for a in range(n) if past >> a & 1]
        edges = [
            (a, b) for a, b in base_edges
            if past >> a & 1 and past >> b & 1
        ]
        reach = _closure(n, edges)
        while True:
            added = False
            for r, w2 in indexed.wr.items():
                if not past >> r & 1:
                    continue
                for w1 in indexed.writes.get(ops[r].key, ()):
                    if (
                        w1 != w2 and past >> w1 & 1
                        and reach[w1] >> r & 1
                        and not reach[w1] >> w2 & 1
                    ):
                        edges.append((w1, w2))
                        added = True
            if not added:
                break
            reach = _closure(n, edges)
        cyclic = _cycle_members([reach[a] if past >> a & 1 else 0 for a in range(n)])
        if cyclic and "cyclic-hb" not in seen_patterns:
            seen_patterns.add("cyclic-hb")
            violations.append(WireViolation(
                "cyclic-hb",
                f"happened-before at {session}'s final operation cycles "
                "through "
                + ", ".join(ops[a].describe() for a in cyclic[:4]),
            ))
        for r in indexed.init_reads:
            if ops[r].session != session:
                continue
            for w in indexed.writes.get(ops[r].key, ()):
                if past >> w & 1 and reach[w] >> r & 1:
                    violations.append(WireViolation(
                        "write-hb-init-read",
                        f"{ops[r].describe()} returned the initial value "
                        f"although {ops[w].describe()} happened before it",
                    ))
                    break
    return violations


# -- history corruption (auditor self-tests) ---------------------------------


def corrupt_reorder_session(
    history: WireHistory, session: Optional[str] = None
) -> WireHistory:
    """Swap a session's two neighbouring write-then-read ops.

    Models a wire layer that answers a session's operations out of issue
    order.  The checker must flag the result for any history where the
    swap is observable (the campaign suites assert it).
    """
    sessions = {k: list(v) for k, v in history.sessions.items()}
    for name, ops in sorted(sessions.items()):
        if session is not None and name != session:
            continue
        for i in range(len(ops) - 1):
            a, b = ops[i], ops[i + 1]
            if a.kind == "put" and b.kind == "get" and a.key == b.key \
                    and b.value == a.value:
                ops[i], ops[i + 1] = b, a
                return WireHistory(sessions)
    raise ValueError("no adjacent put/get of one key to reorder")


def corrupt_stale_read(history: WireHistory) -> WireHistory:
    """Rewrite one read to return a value the session had overwritten.

    Models a replica answering below the session's causal floor — the
    canonical get-freshness bug.
    """
    sessions = {k: list(v) for k, v in history.sessions.items()}
    for name, ops in sorted(sessions.items()):
        newest: Dict[str, List[WireOp]] = {}
        for i, op in enumerate(ops):
            if op.kind == "put":
                newest.setdefault(op.key, []).append(op)
            elif op.kind == "get" and len(newest.get(op.key, ())) > 1:
                stale = newest[op.key][-2]
                ops[i] = WireOp(
                    op.session, op.index, "get", op.key, stale.value,
                    block=op.block,
                )
                return WireHistory(sessions)
    raise ValueError("no read behind two writes of one key to stale out")


def corrupt_lost_put(history: WireHistory) -> WireHistory:
    """Blank one read whose session had written the key.

    Models an acknowledged put that never reached the object space: the
    ack stands in the history, the data is gone.
    """
    sessions = {k: list(v) for k, v in history.sessions.items()}
    for name, ops in sorted(sessions.items()):
        written = set()
        for i, op in enumerate(ops):
            if op.kind == "put":
                written.add(op.key)
            elif op.kind == "get" and op.key in written \
                    and op.value is not None:
                ops[i] = WireOp(
                    op.session, op.index, "get", op.key, None,
                    block=op.block,
                )
                return WireHistory(sessions)
    raise ValueError("no read of a session-written key to blank")
