"""Throughput and convergence-time metrics.

Complements the latency metrics: how many application deliveries per
unit time a run sustained, and how long after the last send the system
took to converge (the "settle tail" — dominated by hold-back release and
recovery traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import CONTROL_OPERATIONS
from repro.sim.trace import TraceRecorder
from repro.types import EntityId


@dataclass(frozen=True)
class ThroughputReport:
    """Delivery throughput over a run."""

    app_deliveries: int
    span: float
    per_second: float
    peak_window_rate: float
    window: float


def delivery_throughput(
    trace: TraceRecorder, window: float = 1.0
) -> ThroughputReport:
    """Application deliveries per unit simulated time.

    ``peak_window_rate`` is the best rate over any aligned window of the
    given width — a burstiness indicator.
    """
    times = [
        event.time
        for event in trace.of_kind("deliver")
        if event.get("operation") not in CONTROL_OPERATIONS
    ]
    if not times:
        return ThroughputReport(0, 0.0, 0.0, 0.0, window)
    start, end = min(times), max(times)
    span = max(end - start, 1e-9)
    buckets: Dict[int, int] = {}
    for time in times:
        buckets[int((time - start) / window)] = (
            buckets.get(int((time - start) / window), 0) + 1
        )
    peak = max(buckets.values()) / window
    return ThroughputReport(
        app_deliveries=len(times),
        span=span,
        per_second=len(times) / span,
        peak_window_rate=peak,
        window=window,
    )


def settle_time(trace: TraceRecorder) -> Optional[float]:
    """Time between the last application send and the last delivery.

    ``None`` when the trace contains no application traffic.  A large
    settle time relative to typical hop latency means deliveries were
    gated (hold-back, epoch batching, recovery).
    """
    sends = [
        event.time
        for event in trace.of_kind("send")
        if event.get("operation") not in CONTROL_OPERATIONS
    ]
    delivers = [
        event.time
        for event in trace.of_kind("deliver")
        if event.get("operation") not in CONTROL_OPERATIONS
    ]
    if not sends or not delivers:
        return None
    return max(delivers) - max(sends)


def per_member_delivery_counts(trace: TraceRecorder) -> Dict[EntityId, int]:
    """Application deliveries per member (liveness accounting)."""
    counts: Dict[EntityId, int] = {}
    for event in trace.of_kind("deliver"):
        if event.get("operation") in CONTROL_OPERATIONS:
            continue
        entity = event.get("entity")
        counts[entity] = counts.get(entity, 0) + 1
    return counts
