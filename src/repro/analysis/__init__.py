"""Consistency checkers and simulation metrics."""

from repro.analysis.causal_check import (
    CausalViolation,
    sequences_respect_fifo,
    verify_against_clocks,
    verify_against_graph,
)
from repro.analysis.convergence import (
    Disagreement,
    divergence_between_sync_points,
    same_message_sets_between_sync_points,
    split_by_sync_points,
    stable_points_agree,
    states_agree,
)
from repro.analysis.metrics import (
    MessageCost,
    SummaryStats,
    delivery_latencies,
    hold_durations,
    holdback_summary,
    latency_summary,
    message_cost,
)
from repro.analysis.invariants import InvariantMonitor, Violation
from repro.analysis.incidental import (
    OrderingComparison,
    compare_orderings,
    incidental_pairs,
    semantic_pairs,
)
from repro.analysis.reporting import format_table, print_table
from repro.analysis.throughput import (
    ThroughputReport,
    delivery_throughput,
    per_member_delivery_counts,
    settle_time,
)
from repro.analysis.timeline import (
    TimelineOptions,
    delivery_matrix,
    render_timeline,
)
from repro.analysis.session_guarantees import (
    GuaranteeViolation,
    SessionOp,
    check_all_session_guarantees,
    check_monotonic_reads,
    check_monotonic_writes,
    check_read_your_writes,
    check_writes_follow_reads,
    sessions_from_frontend_run,
)
from repro.analysis.serializability import (
    SerializabilityReport,
    check_one_copy_serializability,
    check_sequence_legal,
)
from repro.analysis.wire_history import (
    WireHistory,
    WireOp,
    WireRecorder,
    WireViolation,
    check_wire_history,
)

__all__ = [
    "CausalViolation",
    "Disagreement",
    "GuaranteeViolation",
    "InvariantMonitor",
    "Violation",
    "MessageCost",
    "OrderingComparison",
    "SerializabilityReport",
    "SessionOp",
    "SummaryStats",
    "ThroughputReport",
    "TimelineOptions",
    "WireHistory",
    "WireOp",
    "WireRecorder",
    "WireViolation",
    "check_all_session_guarantees",
    "check_wire_history",
    "check_monotonic_reads",
    "check_monotonic_writes",
    "check_read_your_writes",
    "check_writes_follow_reads",
    "check_one_copy_serializability",
    "check_sequence_legal",
    "compare_orderings",
    "delivery_latencies",
    "delivery_matrix",
    "delivery_throughput",
    "divergence_between_sync_points",
    "format_table",
    "hold_durations",
    "incidental_pairs",
    "holdback_summary",
    "latency_summary",
    "message_cost",
    "print_table",
    "per_member_delivery_counts",
    "render_timeline",
    "settle_time",
    "same_message_sets_between_sync_points",
    "semantic_pairs",
    "sequences_respect_fifo",
    "sessions_from_frontend_run",
    "split_by_sync_points",
    "stable_points_agree",
    "states_agree",
    "verify_against_clocks",
    "verify_against_graph",
]
