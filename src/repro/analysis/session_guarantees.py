"""Session-guarantee checkers over message dependency graphs.

Causal ordering of data-access messages subsumes the four classic
*session guarantees* — provided clients declare the right dependencies.
These checkers make that claim testable for any run: given the extracted
dependency graph and each client's issued operation sequence, they verify

* **read-your-writes** — every read causally follows all earlier writes
  of the same session;
* **monotonic writes** — a session's writes are causally ordered among
  themselves;
* **monotonic reads** — each read's causal cut contains every write any
  earlier read of the session observed;
* **writes-follow-reads** — a write causally follows the writes its
  session's earlier reads observed.

The §6.1 front-end discipline provides all four by construction (reads
are sync points covering the open cycle; requests chain through the
anchor); spontaneous unordered traffic provides none — both facts are
pinned down in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.graph.depgraph import DependencyGraph
from repro.types import EntityId, MessageId


@dataclass(frozen=True)
class SessionOp:
    """One operation a session issued, in issue order.

    ``kind`` is ``"read"`` or ``"write"``; ``label`` is the broadcast
    message the operation became; ``observed`` (reads only) is the set of
    write labels whose effects the read returned — for a causally served
    read, its causal cut intersected with writes.
    """

    kind: str
    label: MessageId
    observed: frozenset = frozenset()


@dataclass(frozen=True)
class GuaranteeViolation:
    """A session-guarantee violation at one client."""

    guarantee: str
    session: EntityId
    operation: MessageId
    missing: MessageId

    def __str__(self) -> str:  # pragma: no cover - diagnostics
        return (
            f"{self.guarantee} violated in session {self.session}: "
            f"{self.operation} does not causally follow {self.missing}"
        )


def _covered(graph: DependencyGraph, later: MessageId, earlier: MessageId) -> bool:
    """Is ``earlier`` in ``later``'s declared causal past (or equal)?"""
    return earlier == later or (
        earlier in graph and later in graph and graph.precedes(earlier, later)
    )


def check_read_your_writes(
    graph: DependencyGraph,
    sessions: Mapping[EntityId, Sequence[SessionOp]],
) -> List[GuaranteeViolation]:
    """Each read follows all earlier writes of its session."""
    violations = []
    for session, ops in sessions.items():
        writes: List[MessageId] = []
        for op in ops:
            if op.kind == "write":
                writes.append(op.label)
                continue
            for write in writes:
                if not _covered(graph, op.label, write):
                    violations.append(
                        GuaranteeViolation(
                            "read-your-writes", session, op.label, write
                        )
                    )
    return violations


def check_monotonic_writes(
    graph: DependencyGraph,
    sessions: Mapping[EntityId, Sequence[SessionOp]],
) -> List[GuaranteeViolation]:
    """A session's writes are causally chained in issue order."""
    violations = []
    for session, ops in sessions.items():
        previous: MessageId | None = None
        for op in ops:
            if op.kind != "write":
                continue
            if previous is not None and not _covered(
                graph, op.label, previous
            ):
                violations.append(
                    GuaranteeViolation(
                        "monotonic-writes", session, op.label, previous
                    )
                )
            previous = op.label
    return violations


def check_monotonic_reads(
    graph: DependencyGraph,
    sessions: Mapping[EntityId, Sequence[SessionOp]],
) -> List[GuaranteeViolation]:
    """Each read covers the writes earlier reads of the session observed."""
    violations = []
    for session, ops in sessions.items():
        observed: Set[MessageId] = set()
        for op in ops:
            if op.kind != "read":
                continue
            for write in observed:
                if not _covered(graph, op.label, write):
                    violations.append(
                        GuaranteeViolation(
                            "monotonic-reads", session, op.label, write
                        )
                    )
            observed |= set(op.observed)
    return violations


def check_writes_follow_reads(
    graph: DependencyGraph,
    sessions: Mapping[EntityId, Sequence[SessionOp]],
) -> List[GuaranteeViolation]:
    """Each write follows the writes earlier reads of the session observed."""
    violations = []
    for session, ops in sessions.items():
        observed: Set[MessageId] = set()
        for op in ops:
            if op.kind == "read":
                observed |= set(op.observed)
                continue
            for write in observed:
                if not _covered(graph, op.label, write):
                    violations.append(
                        GuaranteeViolation(
                            "writes-follow-reads", session, op.label, write
                        )
                    )
    return violations


def check_all_session_guarantees(
    graph: DependencyGraph,
    sessions: Mapping[EntityId, Sequence[SessionOp]],
) -> Dict[str, List[GuaranteeViolation]]:
    """Run all four checkers; returns violations keyed by guarantee."""
    return {
        "read-your-writes": check_read_your_writes(graph, sessions),
        "monotonic-writes": check_monotonic_writes(graph, sessions),
        "monotonic-reads": check_monotonic_reads(graph, sessions),
        "writes-follow-reads": check_writes_follow_reads(graph, sessions),
    }


def sessions_from_frontend_run(
    graph: DependencyGraph,
    issued: Mapping[EntityId, Sequence[Tuple[str, MessageId]]],
    write_operations: Set[str],
) -> Dict[EntityId, List[SessionOp]]:
    """Build session logs from (operation, label) issue records.

    ``observed`` for each read is derived from the graph: the read's
    causal past intersected with all known write labels — what a causally
    served read returns.
    """
    all_writes = {
        label
        for ops in issued.values()
        for operation, label in ops
        if operation in write_operations
    }
    sessions: Dict[EntityId, List[SessionOp]] = {}
    for session, ops in issued.items():
        log: List[SessionOp] = []
        for operation, label in ops:
            if operation in write_operations:
                log.append(SessionOp("write", label))
            else:
                past = (
                    graph.causal_past(label) if label in graph else frozenset()
                )
                log.append(
                    SessionOp(
                        "read", label, frozenset(past & all_writes)
                    )
                )
        sessions[session] = log
    return sessions
