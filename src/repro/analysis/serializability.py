"""One-copy serializability checking.

Section 2.2: ordering ``inc ≺ rd`` at every replica "also guarantees
1-copy serializability".  The checker asks: is each member's final state
explainable by *some single* legal serial execution of all messages —
i.e. does there exist a linear extension of the dependency graph whose
final state equals every member's final state?

For the graphs our activities produce the search space is small; the
checker enumerates linear extensions with memoised pruning and a cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.core.state_machine import StateMachine
from repro.graph.depgraph import DependencyGraph
from repro.graph.stability import run_sequence
from repro.types import EntityId, Message, MessageId


@dataclass(frozen=True)
class SerializabilityReport:
    """Outcome of a 1-copy-serializability check."""

    serializable: bool
    witness: Optional[List[MessageId]]
    final_states: Mapping[EntityId, object]
    sequences_examined: int

    def __bool__(self) -> bool:
        return self.serializable


def check_one_copy_serializability(
    graph: DependencyGraph,
    messages: Mapping[MessageId, Message],
    machine: StateMachine,
    final_states: Mapping[EntityId, object],
    max_sequences: int = 100_000,
) -> SerializabilityReport:
    """Search for a serial witness matching every member's final state.

    Returns a report whose ``witness`` is a linear extension of ``graph``
    reaching the common state, or ``None`` when members disagree or no
    extension matches (within ``max_sequences``).
    """
    states = list(final_states.values())
    if not states:
        return SerializabilityReport(True, [], dict(final_states), 0)
    reference = states[0]
    if any(state != reference for state in states[1:]):
        return SerializabilityReport(False, None, dict(final_states), 0)

    examined = 0
    for sequence in graph.linear_extensions(limit=max_sequences):
        examined += 1
        final = run_sequence(
            machine.apply,
            machine.initial_state,
            (messages[label] for label in sequence),
        )
        if final == reference:
            return SerializabilityReport(
                True, list(sequence), dict(final_states), examined
            )
    return SerializabilityReport(False, None, dict(final_states), examined)


def check_sequence_legal(
    graph: DependencyGraph, sequence: Sequence[MessageId]
) -> bool:
    """Is ``sequence`` a linear extension of ``graph``?

    Only labels present in the graph are constrained; unknown labels are
    ignored (they carry no declared dependencies).
    """
    seen: set = set()
    for label in sequence:
        if label in graph:
            ancestors = {
                a for a in graph.ancestors_of(label) if a in graph
            }
            if not ancestors <= seen:
                return False
        seen.add(label)
    return True
