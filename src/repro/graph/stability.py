"""Stability analysis: causal activities and transition-preserving sequences.

Section 4.1 of the paper defines a *stable point*: given an activity
``R(K)`` with message set ``K`` and an initial state, the state reached is
*stable* iff **every** allowed event sequence (linear extension of the
activity graph) reaches the same state.  Such an ``R(K)`` is a *causal
activity* and its sequences are *transition-preserving*.

Two analyses are provided:

* :func:`is_transition_preserving` — the exhaustive check: execute every
  linear extension through a state-transition function and compare final
  states.  Exact but exponential; suitable for the small activity graphs
  applications declare.
* :func:`commutativity_guarantees_stability` — the sufficient static check
  the paper relies on in Section 5.1/6.1: if all *concurrent* pairs in the
  activity commute (per a :class:`~repro.core.commutativity.CommutativitySpec`),
  every linear extension reaches the same state, so the activity is stable
  without enumerating sequences.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Mapping, Optional, Tuple

from repro.graph.depgraph import DependencyGraph
from repro.types import Message, MessageId

StateTransition = Callable[[object, Message], object]
"""``F: S x M -> S`` — apply one message to a state, returning the new state.

(The paper writes ``F: M x S -> S``; argument order here follows the Python
convention of `reduce`.)"""


def run_sequence(
    transition: StateTransition,
    initial_state: object,
    sequence: Iterable[Message],
) -> object:
    """Fold ``sequence`` through ``transition`` starting at ``initial_state``.

    This is the paper's ``s_new := F([e1 -> e2 -> ... ], s_old)``.
    """
    state = initial_state
    for message in sequence:
        state = transition(state, message)
    return state


def is_transition_preserving(
    graph: DependencyGraph,
    messages: Mapping[MessageId, Message],
    transition: StateTransition,
    initial_state: object,
    max_sequences: int = 50_000,
) -> Tuple[bool, Optional[object]]:
    """Exhaustively check whether ``R(K)`` yields a stable point.

    Returns ``(stable, final_state)``; ``final_state`` is the common final
    state when stable, else the first diverging state encountered.

    Raises
    ------
    ValueError
        If the graph references a label missing from ``messages`` or the
        number of linear extensions exceeds ``max_sequences``.
    """
    missing = [m for m in graph.nodes if m not in messages]
    if missing:
        raise ValueError(f"messages missing for labels: {missing}")

    reference: Optional[object] = None
    checked = 0
    for sequence in graph.linear_extensions():
        checked += 1
        if checked > max_sequences:
            raise ValueError(
                f"more than {max_sequences} linear extensions; "
                "use commutativity_guarantees_stability instead"
            )
        final = run_sequence(
            transition, initial_state, (messages[m] for m in sequence)
        )
        if reference is None:
            reference = final
        elif final != reference:
            return False, final
    return True, reference


def concurrent_pairs(graph: DependencyGraph) -> List[Tuple[MessageId, MessageId]]:
    """All unordered pairs of concurrent (‖) labels in the graph."""
    nodes = graph.nodes
    pairs = []
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if graph.concurrent(a, b):
                pairs.append((a, b))
    return pairs


def commutativity_guarantees_stability(
    graph: DependencyGraph,
    messages: Mapping[MessageId, Message],
    commutes: Callable[[Message, Message], bool],
) -> Tuple[bool, List[Tuple[MessageId, MessageId]]]:
    """Static sufficient condition for stability.

    If every concurrent pair of messages commutes, then all linear
    extensions are equivalent by a sequence of adjacent transpositions of
    commuting operations, hence reach the same final state (the paper's
    ``F(mb, F(ma, s)) = F(ma, F(mb, s))`` for concurrent ``ma, mb``).

    Returns ``(guaranteed, violating_pairs)`` where ``violating_pairs``
    lists the concurrent pairs that do *not* commute (empty when
    guaranteed).  Note this is sufficient but not necessary: an activity
    may still be transition-preserving for a particular initial state even
    with non-commuting concurrent pairs.
    """
    violations = [
        (a, b)
        for a, b in concurrent_pairs(graph)
        if not commutes(messages[a], messages[b])
    ]
    return not violations, violations
