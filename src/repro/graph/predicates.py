"""``Occurs-After`` ordering predicates.

The paper's ``OSend`` primitive (Section 3.1) names its ordering constraint
explicitly::

    OSend(Msg, G, Occurs-After(m))

where the predicate takes one of three shapes:

* ``Occurs-After(NULL)`` — no constraint; the message is *spontaneous*,
* ``Occurs-After(m)`` — a single ancestor,
* ``Occurs-After(m1 ∧ m2 ∧ ...)`` — an AND dependency on several ancestors
  (relation (3): "Msg can be processed after *all* messages in {m}").

:class:`OccursAfter` is the value object carried in envelope metadata; the
delivery rule is simply "all ancestors already delivered" — see
:meth:`OccursAfter.satisfied_by`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Iterator, Union

from repro.types import MessageId, freeze_ancestors


@dataclass(frozen=True)
class OccursAfter:
    """An AND-set of ancestor message labels.

    An empty set encodes ``Occurs-After(NULL)``: the message may be
    processed without constraint.
    """

    ancestors: frozenset[MessageId]

    # -- constructors ------------------------------------------------------

    @classmethod
    def null(cls) -> "OccursAfter":
        """The unconstrained predicate (paper: ``m = NULL``)."""
        return cls(frozenset())

    @classmethod
    def after(
        cls,
        ancestors: Union[None, MessageId, Iterable[MessageId]],
    ) -> "OccursAfter":
        """Build a predicate from one label, many labels, or ``None``."""
        return cls(freeze_ancestors(ancestors))

    # -- queries -----------------------------------------------------------

    @property
    def is_null(self) -> bool:
        return not self.ancestors

    def satisfied_by(self, delivered: AbstractSet[MessageId]) -> bool:
        """True iff every ancestor label has already been delivered."""
        return self.ancestors <= delivered

    def missing(self, delivered: AbstractSet[MessageId]) -> frozenset[MessageId]:
        """The ancestors still blocking delivery."""
        return self.ancestors - delivered

    def unmet(self, delivered: AbstractSet[MessageId]) -> Iterator[MessageId]:
        """Lazily yield the ancestors not in ``delivered``.

        Allocation-free variant of :meth:`missing` for hot paths that only
        iterate the gap (the hold-back wakeup index) and never keep it.
        """
        for ancestor in self.ancestors:
            if ancestor not in delivered:
                yield ancestor

    def __len__(self) -> int:
        return len(self.ancestors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_null:
            return "OccursAfter(NULL)"
        labels = " ∧ ".join(sorted(str(a) for a in self.ancestors))
        return f"OccursAfter({labels})"
