"""Exact maximum-antichain computation (Dilworth's theorem).

The *width* of a dependency graph — the size of its largest antichain —
is the exact "degree of concurrency" a causal order permits: the most
messages that could ever be in flight unordered at once.  The greedy
:meth:`~repro.graph.depgraph.DependencyGraph.concurrency_classes` only
approximates it; this module computes it exactly.

By Dilworth's theorem the maximum antichain size equals the minimum
number of chains covering the poset, which for a DAG's *transitive
closure* is ``n - (maximum bipartite matching)`` (König/minimum path
cover).  The matching runs on networkx (Hopcroft-Karp).

Complexity is O(V·E) for the closure plus the matching — fine for the
activity-sized graphs the experiments inspect.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set, Tuple

import networkx as nx

from repro.graph.depgraph import DependencyGraph
from repro.types import MessageId


def _closure_edges(graph: DependencyGraph) -> List[Tuple[MessageId, MessageId]]:
    """All (earlier, later) pairs of the transitive closure."""
    nodes = graph.nodes
    return [
        (a, b)
        for i, a in enumerate(nodes)
        for b in nodes
        if a != b and graph.precedes(a, b)
    ]


def width(graph: DependencyGraph) -> int:
    """Size of the largest antichain (the graph's width)."""
    nodes = graph.nodes
    if not nodes:
        return 0
    edges = _closure_edges(graph)
    if not edges:
        return len(nodes)
    # Minimum chain cover on the closure = n - maximum matching in the
    # split bipartite graph (u_out -> v_in per closure edge).
    bipartite = nx.Graph()
    left = {node: ("L", node) for node in nodes}
    right = {node: ("R", node) for node in nodes}
    bipartite.add_nodes_from(left.values(), bipartite=0)
    bipartite.add_nodes_from(right.values(), bipartite=1)
    for earlier, later in edges:
        bipartite.add_edge(left[earlier], right[later])
    matching = nx.bipartite.maximum_matching(
        bipartite, top_nodes=list(left.values())
    )
    matched = sum(1 for key in matching if key[0] == "L")
    return len(nodes) - matched


def maximum_antichain(graph: DependencyGraph) -> FrozenSet[MessageId]:
    """One concrete antichain of maximum size.

    Uses the standard König-style construction: from the minimum vertex
    cover of the bipartite closure graph, the uncovered poset elements
    form a maximum antichain.
    """
    nodes = graph.nodes
    if not nodes:
        return frozenset()
    edges = _closure_edges(graph)
    if not edges:
        return frozenset(nodes)
    bipartite = nx.Graph()
    left = {node: ("L", node) for node in nodes}
    right = {node: ("R", node) for node in nodes}
    bipartite.add_nodes_from(left.values(), bipartite=0)
    bipartite.add_nodes_from(right.values(), bipartite=1)
    for earlier, later in edges:
        bipartite.add_edge(left[earlier], right[later])
    matching = nx.bipartite.maximum_matching(
        bipartite, top_nodes=list(left.values())
    )
    cover = nx.bipartite.to_vertex_cover(
        bipartite, matching, top_nodes=list(left.values())
    )
    # A node is in the antichain iff neither its L nor its R copy is in
    # the vertex cover.
    antichain = [
        node
        for node in nodes
        if left[node] not in cover and right[node] not in cover
    ]
    result = frozenset(antichain)
    # The construction is standard but cheap to verify; fail loudly
    # rather than return a non-antichain.
    _assert_antichain(graph, result)
    assert len(result) == width(graph)
    return result


def _assert_antichain(graph: DependencyGraph, labels: Set[MessageId]) -> None:
    labels = list(labels)
    for i, a in enumerate(labels):
        for b in labels[i + 1 :]:
            if graph.precedes(a, b) or graph.precedes(b, a):
                raise AssertionError(
                    f"not an antichain: {a} and {b} are ordered"
                )


def chain_cover_size(graph: DependencyGraph) -> int:
    """Minimum number of chains covering all nodes (= width, Dilworth)."""
    return width(graph)
