"""Message dependency graphs.

Section 3.2 of the paper represents the causal dependency ``R(M)`` "by a
graph in which the dependency of ``Msg`` on ``m`` is represented with a
directed edge connecting an ancestor node to a descendant node".  The graph
supports:

* *many-to-one* dependencies — several messages depend on one ancestor and
  are mutually concurrent,
* *one-to-many* AND dependencies — one message depends on all of a set,
* the derived relations the rest of the library needs: causal precedence
  (reachability), concurrency (paper's ‖), topological orders, and the set
  of linear extensions (used by the stability analysis of Section 4).

Edges point **ancestor → descendant** (the direction of time), so a
topological order of the graph is a legal processing sequence.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Union,
)

from repro.errors import DependencyError
from repro.graph.predicates import OccursAfter
from repro.types import MessageId, freeze_ancestors

AncestorSpec = Union[None, MessageId, Iterable[MessageId], OccursAfter]


class DependencyGraph:
    """A DAG of message labels with ancestor→descendant edges.

    Reachability is answered from a memoised ancestor-closure cache:
    ``_reach[n]`` holds every label (added *or* dangling) with a path to
    ``n``, so :meth:`precedes`, :meth:`causal_past`, and
    :meth:`concurrent` are set lookups instead of DFS walks.  Closures
    are computed lazily on first query (so :meth:`add` stays
    O(direct ancestors) — hot in every ``OSend`` receive path) and
    invalidated only by :meth:`add`, the graph's sole mutator, under two
    invariants:

    1. ``_reach[n]``, when present, equals ``n``'s direct ancestors ∪ the
       closures of its *added* direct ancestors (dangling ancestors
       contribute only themselves — their edges are unknown until
       materialised).  Computing ``n``'s closure memoises every added
       transitive ancestor of ``n`` along the way.
    2. An entry exists for ``n`` only if entries exist for all of ``n``'s
       added transitive ancestors — established by 1 and preserved by
       invalidation, which walks a materialised node's descendants and
       stops below any node that was already absent.

    Only materialising a previously *dangling* label can change existing
    closures (nothing else gains ancestors), so that is the only event
    that invalidates.
    """

    def __init__(self) -> None:
        self._ancestors: Dict[MessageId, FrozenSet[MessageId]] = {}
        self._descendants: Dict[MessageId, Set[MessageId]] = {}
        # Memoised transitive-ancestor closures (invariants above).
        self._reach: Dict[MessageId, FrozenSet[MessageId]] = {}
        # Added labels as a plain set, so causal_past can restrict a
        # closure to added nodes with one C-level intersection instead of
        # a per-label Python filter (hot in the barrier/frontier paths).
        self._added: Set[MessageId] = set()
        # Memoised causal_past results.  A cached past goes stale in
        # exactly two cases: the node's closure was invalidated (handled
        # by sharing _invalidate_below), or a dangling ancestor
        # materialised (the closure is unchanged but the added-filter
        # result grows) — handled in add() for referenced labels.
        self._past: Dict[MessageId, FrozenSet[MessageId]] = {}

    # -- construction -----------------------------------------------------

    def add(self, msg_id: MessageId, occurs_after: AncestorSpec = None) -> None:
        """Add ``msg_id`` with its ``Occurs-After`` ancestors.

        Ancestors need not be present yet (a member may learn of a
        dependency before the ancestor's own broadcast arrives); such
        *dangling* ancestors are materialised as root nodes when they are
        later added, and :meth:`dangling` reports them meanwhile.

        Raises
        ------
        DependencyError
            If ``msg_id`` was already added, depends on itself, or the new
            edges would create a cycle among known nodes.
        """
        if msg_id in self._ancestors:
            raise DependencyError(f"duplicate message label: {msg_id}")
        if isinstance(occurs_after, OccursAfter):
            ancestors = occurs_after.ancestors
        else:
            ancestors = freeze_ancestors(occurs_after)
        if msg_id in ancestors:
            raise DependencyError(f"{msg_id} cannot occur after itself")
        # A cycle needs a path from msg_id back to an ancestor, and every
        # edge out of msg_id is a pre-existing dangling reference — so a
        # never-referenced label cannot close one, and the check (with its
        # closure computation) is skipped on the common fresh-label path.
        referenced = bool(self._descendants.get(msg_id))
        if referenced:
            for ancestor in ancestors:
                if (
                    ancestor in self._ancestors
                    and msg_id in self._closure(ancestor)
                ):
                    raise DependencyError(
                        f"edge {ancestor} -> {msg_id} would create a cycle"
                    )
        self._ancestors[msg_id] = ancestors
        self._added.add(msg_id)
        self._descendants.setdefault(msg_id, set())
        for ancestor in ancestors:
            self._descendants.setdefault(ancestor, set()).add(msg_id)
        if referenced:
            if ancestors:
                # msg_id materialised with ancestry: descendants' memoised
                # closures hold msg_id as a bare endpoint and miss what
                # lies above it.
                self._invalidate_below(msg_id)
            else:
                # Closures below stay valid, but cached pasts must now
                # include msg_id itself (it just became an added node).
                self._invalidate_past_below(msg_id)

    # -- closure cache -----------------------------------------------------

    def _closure(self, node: MessageId) -> FrozenSet[MessageId]:
        """Memoised transitive-ancestor closure of an added ``node``."""
        memo = self._reach
        cached = memo.get(node)
        if cached is not None:
            return cached
        # Iterative post-order: compute added ancestors before dependants.
        stack = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if current in memo:
                continue
            direct = self._ancestors[current]
            if expanded:
                closure: Set[MessageId] = set(direct)
                for ancestor in direct:
                    if ancestor in self._ancestors:
                        closure |= memo[ancestor]
                memo[current] = frozenset(closure)
            else:
                stack.append((current, True))
                stack.extend(
                    (ancestor, False)
                    for ancestor in direct
                    if ancestor in self._ancestors and ancestor not in memo
                )
        return memo[node]

    def _invalidate_below(self, source: MessageId) -> None:
        """Drop memoised closures of ``source``'s transitive descendants.

        Stopping below an already-absent node is safe by invariant 2: its
        descendants' entries cannot have survived the invalidation that
        removed it.
        """
        memo = self._reach
        past = self._past
        queue = list(self._descendants.get(source, ()))
        while queue:
            node = queue.pop()
            if memo.pop(node, None) is not None:
                past.pop(node, None)
                queue.extend(self._descendants.get(node, ()))

    def _invalidate_past_below(self, source: MessageId) -> None:
        """Drop cached pasts of ``source``'s transitive descendants.

        Used when a referenced label materialises *without* ancestors:
        closures below are still correct (invariant 1), but pasts cached
        before the materialisation are missing the newly added node.
        """
        past = self._past
        stack = list(self._descendants.get(source, ()))
        seen: Set[MessageId] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            past.pop(node, None)
            stack.extend(self._descendants.get(node, ()))

    # -- basic queries -------------------------------------------------------

    def __contains__(self, msg_id: MessageId) -> bool:
        return msg_id in self._ancestors

    def __len__(self) -> int:
        return len(self._ancestors)

    def __iter__(self) -> Iterator[MessageId]:
        return iter(self._ancestors)

    @property
    def nodes(self) -> List[MessageId]:
        """All added labels, in insertion order."""
        return list(self._ancestors)

    def ancestors_of(self, msg_id: MessageId) -> FrozenSet[MessageId]:
        """Direct ancestors (the ``Occurs-After`` set) of ``msg_id``."""
        try:
            return self._ancestors[msg_id]
        except KeyError:
            raise DependencyError(f"unknown message label: {msg_id}") from None

    def descendants_of(self, msg_id: MessageId) -> FrozenSet[MessageId]:
        """Direct descendants of ``msg_id`` among added nodes."""
        if msg_id not in self._ancestors:
            raise DependencyError(f"unknown message label: {msg_id}")
        return frozenset(self._descendants.get(msg_id, ()))

    def roots(self) -> List[MessageId]:
        """Added nodes with no *added* ancestors (spontaneous messages)."""
        return [
            m
            for m, ancestors in self._ancestors.items()
            if not any(a in self._ancestors for a in ancestors)
        ]

    def dangling(self) -> FrozenSet[MessageId]:
        """Labels referenced as ancestors but not themselves added."""
        referenced: Set[MessageId] = set()
        for ancestors in self._ancestors.values():
            referenced |= ancestors
        return frozenset(referenced - self._ancestors.keys())

    # -- causal relations -------------------------------------------------------

    def precedes(self, earlier: MessageId, later: MessageId) -> bool:
        """True iff ``earlier ≺ later`` (transitively) among added nodes.

        A closure lookup — O(1) amortised over repeated queries, vs. the
        ancestor-walk DFS this replaced (kept as the reference
        implementation in ``tests/graph/test_reachability_cache.py``).
        """
        if later not in self._ancestors or earlier == later:
            return False
        return earlier in self._closure(later)

    def maximal_elements(
        self, labels: Iterable[MessageId]
    ) -> FrozenSet[MessageId]:
        """Prune ``labels`` to those not in any other member's causal past.

        Equivalent to keeping each label that no other label in the set
        :meth:`precedes`, but costs one closure intersection per element
        instead of O(n²) pairwise queries — frontier maintenance calls
        this on every absorb, so the difference is structural.  Labels
        unknown to the graph cannot shadow others but can themselves be
        shadowed (they may appear in closures as dangling ancestors),
        matching the pairwise semantics.
        """
        ordered = list(dict.fromkeys(labels))
        if len(ordered) <= 1:
            return frozenset(ordered)
        pool = set(ordered)
        shadowed: Set[MessageId] = set()
        ancestors = self._ancestors
        for label in ordered:
            # Everything in label's closure is shadowed by label; label's
            # own closure is a subset of any shadower's, so
            # already-shadowed labels are safe to skip.  Iteration follows
            # the caller's order: callers that present likely-maximal
            # labels first (e.g. newest-issued first) shadow most of the
            # pool in the first few intersections.
            if label in ancestors and label not in shadowed:
                shadowed |= pool & self._closure(label)
        return frozenset(pool - shadowed)

    def concurrent(self, a: MessageId, b: MessageId) -> bool:
        """The paper's ‖ relation: neither precedes the other."""
        if a == b:
            return False
        return not self.precedes(a, b) and not self.precedes(b, a)

    def causal_past(self, msg_id: MessageId) -> FrozenSet[MessageId]:
        """All added transitive ancestors of ``msg_id``."""
        if msg_id not in self._ancestors:
            return frozenset()
        cached = self._past.get(msg_id)
        if cached is None:
            cached = frozenset(self._closure(msg_id) & self._added)
            self._past[msg_id] = cached
        return cached

    def concurrency_classes(self) -> List[FrozenSet[MessageId]]:
        """Maximal antichains found greedily in insertion order.

        Gives a quick report of which messages the graph allows to proceed
        in parallel; exact maximum-antichain computation is not needed by
        the protocols, only by diagnostics.
        """
        classes: List[Set[MessageId]] = []
        for node in self._ancestors:
            for cls in classes:
                if all(self.concurrent(node, member) for member in cls):
                    cls.add(node)
                    break
            else:
                classes.append({node})
        return [frozenset(c) for c in classes]

    # -- orders ----------------------------------------------------------------

    def topological_order(self) -> List[MessageId]:
        """One legal processing sequence (Kahn's algorithm).

        Ties are broken by insertion order so the result is deterministic.
        Dangling ancestors are ignored (treated as already processed).
        """
        insertion_index = {n: i for i, n in enumerate(self._ancestors)}
        indegree: Dict[MessageId, int] = {}
        for node, ancestors in self._ancestors.items():
            indegree[node] = sum(1 for a in ancestors if a in self._ancestors)
        ready = [n for n in self._ancestors if indegree[n] == 0]
        order: List[MessageId] = []
        position = 0
        while position < len(ready):
            node = ready[position]
            position += 1
            order.append(node)
            for descendant in sorted(
                self._descendants.get(node, ()),
                key=insertion_index.__getitem__,
            ):
                indegree[descendant] -= 1
                if indegree[descendant] == 0:
                    ready.append(descendant)
        if len(order) != len(self._ancestors):
            raise DependencyError("graph contains a cycle")
        return order

    def linear_extensions(
        self, limit: Optional[int] = None
    ) -> Iterator[List[MessageId]]:
        """Yield every legal processing sequence (all linear extensions).

        This is the paper's ``{EvSeq_1 ... EvSeq_L}`` with ``L <= (r+1)!``
        (Section 4.1).  Exponential in the worst case — intended for the
        small activity graphs the stability analysis inspects.  ``limit``
        bounds the number of sequences yielded.
        """
        nodes = list(self._ancestors)
        ancestors = {
            n: {a for a in self._ancestors[n] if a in self._ancestors}
            for n in nodes
        }
        yielded = 0
        prefix: List[MessageId] = []
        chosen: Set[MessageId] = set()

        def extend() -> Iterator[List[MessageId]]:
            nonlocal yielded
            if len(prefix) == len(nodes):
                yield list(prefix)
                return
            for node in nodes:
                if node in chosen or not ancestors[node] <= chosen:
                    continue
                prefix.append(node)
                chosen.add(node)
                yield from extend()
                chosen.discard(node)
                prefix.pop()

        for seq in extend():
            yield seq
            yielded += 1
            if limit is not None and yielded >= limit:
                return

    def count_linear_extensions(self, cap: int = 1_000_000) -> int:
        """Count linear extensions, stopping at ``cap``."""
        count = 0
        for _ in self.linear_extensions(limit=cap):
            count += 1
        return count

    # -- reductions ---------------------------------------------------------

    def transitive_reduction(self) -> "DependencyGraph":
        """A new graph with redundant (implied) edges removed.

        An edge ``a -> b`` is redundant if some other path ``a ≺ ... ≺ b``
        exists.  The reduction is what an efficient ``OSend`` implementation
        would actually transmit — carrying only *direct* dependencies.
        """
        reduced = DependencyGraph()
        for node in self.topological_order():
            direct = {a for a in self._ancestors[node] if a in self._ancestors}
            keep = set()
            for candidate in direct:
                implied = any(
                    other != candidate and self.precedes(candidate, other)
                    for other in direct
                )
                if not implied:
                    keep.add(candidate)
            # Preserve dangling ancestors verbatim: we cannot reason about
            # paths through labels we have not seen.
            keep |= {
                a for a in self._ancestors[node] if a not in self._ancestors
            }
            reduced.add(node, keep)
        return reduced

    def subgraph(self, labels: AbstractSet[MessageId]) -> "DependencyGraph":
        """The induced subgraph on ``labels`` (edges inside the set only)."""
        sub = DependencyGraph()
        for node in self._ancestors:
            if node in labels:
                sub.add(node, self._ancestors[node] & labels)
        return sub

    def edge_count(self) -> int:
        """Number of ancestor references (metadata size proxy for OSend)."""
        return sum(len(a) for a in self._ancestors.values())
