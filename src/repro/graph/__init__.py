"""Message dependency graphs, Occurs-After predicates, stability analysis."""

from repro.graph.antichain import chain_cover_size, maximum_antichain, width
from repro.graph.depgraph import DependencyGraph
from repro.graph.render import depth_levels, to_ascii, to_dot
from repro.graph.predicates import OccursAfter
from repro.graph.stability import (
    commutativity_guarantees_stability,
    concurrent_pairs,
    is_transition_preserving,
    run_sequence,
)

__all__ = [
    "DependencyGraph",
    "chain_cover_size",
    "OccursAfter",
    "commutativity_guarantees_stability",
    "concurrent_pairs",
    "depth_levels",
    "is_transition_preserving",
    "maximum_antichain",
    "run_sequence",
    "to_ascii",
    "to_dot",
    "width",
]
