"""Rendering message dependency graphs (DOT and ASCII).

The paper communicates its model through dependency-graph pictures
(Figures 2, 3, 5); these helpers produce the same pictures from live
graphs — extracted by any member from ``OSend`` traffic — for debugging,
documentation and the CLI's ``show-graph`` command.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, List, Optional

from repro.graph.depgraph import DependencyGraph
from repro.types import MessageId


def to_dot(
    graph: DependencyGraph,
    title: str = "R(M)",
    highlight: Optional[AbstractSet[MessageId]] = None,
) -> str:
    """Render as Graphviz DOT (ancestor -> descendant edges).

    ``highlight`` nodes (e.g. detected stable points) are drawn doubled.
    """
    highlight = highlight or frozenset()
    lines = [f'digraph "{title}" {{', "  rankdir=TB;"]
    for node in graph.nodes:
        shape = "doublecircle" if node in highlight else "ellipse"
        lines.append(f'  "{node}" [shape={shape}];')
    for node in graph.nodes:
        for ancestor in sorted(graph.ancestors_of(node), key=str):
            lines.append(f'  "{ancestor}" -> "{node}";')
    lines.append("}")
    return "\n".join(lines)


def depth_levels(graph: DependencyGraph) -> List[List[MessageId]]:
    """Group nodes by longest-path depth from the roots.

    Level 0 holds the roots; a node's level is 1 + max level of its
    (known) ancestors.  Concurrent messages of one activity share a level,
    which makes the ASCII rendering read like the paper's figures.
    """
    depth: Dict[MessageId, int] = {}
    for node in graph.topological_order():
        ancestors = [a for a in graph.ancestors_of(node) if a in graph]
        depth[node] = 1 + max((depth[a] for a in ancestors), default=-1)
    levels: List[List[MessageId]] = []
    for node, d in depth.items():
        while len(levels) <= d:
            levels.append([])
        levels[d].append(node)
    return levels


def to_ascii(
    graph: DependencyGraph,
    highlight: Optional[AbstractSet[MessageId]] = None,
) -> str:
    """Render as indented levels with the paper's ‖ notation.

    Each line is one logical-time level; multiple labels on a line are
    concurrent.  Highlighted labels are marked with ``*``.
    """
    highlight = highlight or frozenset()
    if not len(graph):
        return "(empty graph)"
    lines = []
    for index, level in enumerate(depth_levels(graph)):
        names = [
            f"{label}*" if label in highlight else str(label)
            for label in sorted(level, key=str)
        ]
        if len(names) > 1:
            body = "‖{" + ", ".join(names) + "}"
        else:
            body = names[0]
        prefix = "      " if index == 0 else "  ≺   "
        lines.append(f"t={index:<2} {prefix}{body}")
    return "\n".join(lines)
