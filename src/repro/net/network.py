"""The simulated network: node registry, unicast and broadcast fan-out.

The paper realises globally distributed data "by a message broadcast
facility that allows each access message to be seen by [all entities]"
(Section 2, Figure 1).  :class:`Network` is that facility's transport:
a broadcast is modelled as one independent hop per destination, each with
its own sampled latency and fault decision — exactly the conditions under
which copies arrive at different members in different orders, which the
ordering protocols above must repair.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError, MembershipError
from repro.net.faults import FaultPlan, RELIABLE
from repro.net.latency import ConstantLatency, LatencyModel
from repro.sim.node import SimNode
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceRecorder
from repro.types import Envelope, EntityId


class Network:
    """A set of nodes joined by a broadcast-capable transport.

    Parameters
    ----------
    scheduler:
        The discrete-event loop delivering hops.
    latency:
        Hop latency model (default: constant 1.0).
    faults:
        Fault plan (default: reliable).
    rng:
        Registry from which the latency/fault streams are drawn.
    trace:
        Optional shared trace recorder; a fresh one is created if omitted.
    service_time:
        CPU cost of processing one arrival at a node.  Each node is a
        single server: arrivals queue FIFO and each occupies the node for
        ``service_time`` before being handed to the protocol.  The
        default 0 models infinitely fast nodes (arrival order only);
        a positive value makes *message-processing load* visible —
        protocols that send O(N) messages per request saturate nodes as
        the group grows.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        rng: Optional[RngRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        service_time: float = 0.0,
    ) -> None:
        if service_time < 0:
            raise ConfigurationError(
                f"service_time must be >= 0, got {service_time}"
            )
        self.scheduler = scheduler
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.faults = faults if faults is not None else RELIABLE
        rng = rng if rng is not None else RngRegistry(0)
        self._latency_rng = rng.stream("net.latency")
        self._fault_rng = rng.stream("net.faults")
        self.trace = trace if trace is not None else TraceRecorder()
        self.service_time = service_time
        self._node_free_at: Dict[EntityId, float] = {}
        self._nodes: Dict[EntityId, SimNode] = {}
        self.hops_sent = 0
        self.hops_delivered = 0
        self.hops_dropped = 0

    # -- membership -----------------------------------------------------------

    def register(self, node: SimNode) -> SimNode:
        """Attach ``node`` to this network.  Returns the node for chaining."""
        if node.entity_id in self._nodes:
            raise ConfigurationError(
                f"duplicate entity id: {node.entity_id!r}"
            )
        self._nodes[node.entity_id] = node
        node.attach(self)
        return node

    def deregister(self, entity_id: EntityId) -> SimNode:
        """Detach a node (simulating a crash).

        Hops already in flight toward the node are silently dropped on
        arrival; future broadcasts simply no longer fan out to it.
        """
        try:
            return self._nodes.pop(entity_id)
        except KeyError:
            raise MembershipError(f"unknown entity: {entity_id!r}") from None

    def node(self, entity_id: EntityId) -> SimNode:
        try:
            return self._nodes[entity_id]
        except KeyError:
            raise MembershipError(f"unknown entity: {entity_id!r}") from None

    @property
    def entity_ids(self) -> List[EntityId]:
        """All registered entity ids, in registration order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- transport -------------------------------------------------------------

    def unicast(
        self, source: EntityId, destination: EntityId, envelope: Envelope
    ) -> None:
        """Queue one hop from ``source`` to ``destination``."""
        if destination not in self._nodes:
            raise MembershipError(f"unknown destination: {destination!r}")
        self._hop(source, destination, envelope)

    def broadcast(self, source: EntityId, envelope: Envelope) -> None:
        """Queue one hop to every registered node, including the sender.

        Each hop samples latency and faults independently, so destinations
        generally observe broadcasts in different relative orders.
        """
        self.trace.record(
            self.scheduler.now,
            "send",
            source=source,
            msg_id=envelope.msg_id,
            operation=envelope.message.operation,
        )
        for destination in self._nodes:
            self._hop(source, destination, envelope)

    def _hop(
        self, source: EntityId, destination: EntityId, envelope: Envelope
    ) -> None:
        origin = self._nodes.get(source)
        if origin is not None and origin.crashed:
            # A crashed node emits nothing (crash-stop); control agents
            # whose timers slipped past the node guards land here.
            self.hops_dropped += 1
            return
        self.hops_sent += 1
        copies, blocked = self.faults.decide(
            source, destination, self._fault_rng
        )
        if copies == 0:
            self.hops_dropped += 1
            self.trace.record(
                self.scheduler.now,
                "drop",
                source=source,
                destination=destination,
                msg_id=envelope.msg_id,
                blocked=blocked,
            )
            return
        for _ in range(copies):
            delay = self.latency.sample(source, destination, self._latency_rng)
            self.scheduler.call_in(
                delay, self._arrive, source, destination, envelope
            )

    def _arrive(
        self, source: EntityId, destination: EntityId, envelope: Envelope
    ) -> None:
        if self.service_time:
            now = self.scheduler.now
            start = max(now, self._node_free_at.get(destination, 0.0))
            done = start + self.service_time
            self._node_free_at[destination] = done
            self.scheduler.call_at(
                done, self._process, source, destination, envelope
            )
            return
        self._process(source, destination, envelope)

    def _process(
        self, source: EntityId, destination: EntityId, envelope: Envelope
    ) -> None:
        node = self._nodes.get(destination)
        if node is None or node.crashed:
            # Destination departed (or is down) while the hop was in
            # flight: crash-stop nodes receive nothing.
            self.hops_dropped += 1
            return
        self.hops_delivered += 1
        # Per-hop events dominate tracing cost at scale; gate on `wants`
        # so benchmarks with hop tracing off/sampled skip the dict build.
        if self.trace.wants("receive"):
            self.trace.record(
                self.scheduler.now,
                "receive",
                source=source,
                destination=destination,
                msg_id=envelope.msg_id,
            )
        node.on_receive(source, envelope)
