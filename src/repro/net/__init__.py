"""Simulated network substrate: latency models, faults, transport."""

from repro.net.faults import RELIABLE, FaultPlan
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LognormalLatency,
    PerPairLatency,
    UniformLatency,
)
from repro.net.network import Network

__all__ = [
    "RELIABLE",
    "ConstantLatency",
    "FaultPlan",
    "LatencyModel",
    "LognormalLatency",
    "Network",
    "PerPairLatency",
    "UniformLatency",
]
