"""Link latency models.

A latency model answers one question: *how long does this hop take?*
Different models reproduce different network conditions the paper's
protocols must tolerate:

* :class:`ConstantLatency` — an idealised LAN where every hop costs the
  same; delivery order equals send order.
* :class:`UniformLatency` — jitter; messages overtaking each other is the
  interesting case for causal ordering.
* :class:`LognormalLatency` — heavy-ish tail, the classic WAN shape.
* :class:`PerPairLatency` — asymmetric topologies (e.g. one distant
  replica), used by the asynchronism experiments to create skew.

All stochastic models draw from a stream supplied at sample time so the
network owns seeding policy, not the model.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.types import EntityId


class LatencyModel:
    """Interface: sample the latency of one hop."""

    def sample(
        self, source: EntityId, destination: EntityId, rng: random.Random
    ) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every hop takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ConfigurationError(f"negative delay: {delay}")
        self.delay = float(delay)

    def sample(
        self, source: EntityId, destination: EntityId, rng: random.Random
    ) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if low < 0 or high < low:
            raise ConfigurationError(
                f"invalid uniform latency bounds: [{low}, {high}]"
            )
        self.low = float(low)
        self.high = float(high)

    def sample(
        self, source: EntityId, destination: EntityId, rng: random.Random
    ) -> float:
        return rng.uniform(self.low, self.high)


class LognormalLatency(LatencyModel):
    """Log-normally distributed latency.

    Parameters are the *target* median and an approximate spread factor
    ``sigma`` (the standard deviation of the underlying normal).
    """

    def __init__(self, median: float = 1.0, sigma: float = 0.5) -> None:
        if median <= 0 or sigma < 0:
            raise ConfigurationError(
                f"invalid lognormal parameters: median={median}, sigma={sigma}"
            )
        self.median = float(median)
        self.sigma = float(sigma)
        self._mu = math.log(median)

    def sample(
        self, source: EntityId, destination: EntityId, rng: random.Random
    ) -> float:
        return rng.lognormvariate(self._mu, self.sigma)


class PerPairLatency(LatencyModel):
    """Different latency model per (source, destination) pair.

    ``default`` handles pairs absent from the table.  Entries may be given
    for ``(src, dst)`` exactly; the model is directional.
    """

    def __init__(
        self,
        pairs: Mapping[Tuple[EntityId, EntityId], LatencyModel],
        default: Optional[LatencyModel] = None,
    ) -> None:
        self._pairs: Dict[Tuple[EntityId, EntityId], LatencyModel] = dict(pairs)
        self._default = default if default is not None else ConstantLatency(1.0)

    def sample(
        self, source: EntityId, destination: EntityId, rng: random.Random
    ) -> float:
        model = self._pairs.get((source, destination), self._default)
        return model.sample(source, destination, rng)
