"""Network fault injection.

The causal broadcast protocols must preserve their delivery guarantees in
the face of message loss (with retransmission at the transport), duplication
and partitions.  :class:`FaultPlan` decides, per hop, whether a copy is
dropped, duplicated, or blocked by a partition.

Faults are applied *below* the broadcast protocols: a dropped copy simply
never arrives, letting tests exercise the protocols' hold-back behaviour
(messages whose causal ancestors were lost stay undelivered — detectably).
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.types import EntityId


class FaultPlan:
    """Per-hop fault decisions.

    Parameters
    ----------
    drop_probability:
        Probability that a hop's copy is silently dropped.
    duplicate_probability:
        Probability that a hop's copy is delivered twice (protocols must
        deduplicate; the paper's labels make that trivial).
    """

    def __init__(
        self,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
    ) -> None:
        for name, p in (
            ("drop_probability", drop_probability),
            ("duplicate_probability", duplicate_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self._partitions: List[FrozenSet[EntityId]] = []

    # -- partitions ----------------------------------------------------------

    def partition(self, *groups: Iterable[EntityId]) -> None:
        """Split the network into the given disjoint groups.

        Hops between different groups are blocked; hops within one group
        (or touching entities in no group) proceed normally.
        """
        frozen = [frozenset(g) for g in groups]
        seen: Set[EntityId] = set()
        for group in frozen:
            if seen & group:
                raise ConfigurationError("partition groups must be disjoint")
            seen |= group
        self._partitions = frozen

    def heal(self) -> None:
        """Remove all partitions."""
        self._partitions = []

    @property
    def partitioned(self) -> bool:
        return bool(self._partitions)

    def _group_of(self, entity: EntityId) -> Optional[FrozenSet[EntityId]]:
        for group in self._partitions:
            if entity in group:
                return group
        return None

    def blocked(self, source: EntityId, destination: EntityId) -> bool:
        """True if a partition separates ``source`` from ``destination``."""
        if not self._partitions:
            return False
        src_group = self._group_of(source)
        dst_group = self._group_of(destination)
        if src_group is None and dst_group is None:
            return False
        return src_group is not dst_group

    # -- per-hop decision ------------------------------------------------------

    def decide(
        self, source: EntityId, destination: EntityId, rng: random.Random
    ) -> Tuple[int, bool]:
        """Decide a hop's fate.

        Returns ``(copies, blocked)``: the number of copies to deliver
        (0 = dropped, 1 = normal, 2 = duplicated) and whether a partition
        blocked the hop entirely.
        """
        if self.blocked(source, destination):
            return 0, True
        if self.drop_probability and rng.random() < self.drop_probability:
            return 0, False
        if (
            self.duplicate_probability
            and rng.random() < self.duplicate_probability
        ):
            return 2, False
        return 1, False


RELIABLE = FaultPlan()
"""A shared fault plan that never drops, duplicates or partitions."""
