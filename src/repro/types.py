"""Core value types shared across the library.

The paper models a distributed application as a set of entities
``{a_i, a_j, a_k}`` exchanging *data access messages* ``M`` under causal
constraints ``R(M)``.  This module defines the identifiers and message
containers every other subsystem builds on:

* :class:`EntityId` / :class:`MessageId` — hashable identifiers,
* :class:`Message` — an application-level message (operation + payload),
* :class:`Envelope` — a message in flight, carrying protocol metadata such
  as ``Occurs-After`` ancestor labels or a vector clock,
* :class:`DeliveryRecord` — what a replica observed, used by the analysis
  and consistency-checking layers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

# ---------------------------------------------------------------------------
# Identifiers
# ---------------------------------------------------------------------------

EntityId = str
"""Identifier of an application entity (client, server replica, player...)."""


@dataclass(frozen=True, order=True)
class MessageId:
    """Globally unique message label.

    The paper's ``OSend`` primitive names messages so that causal relations
    can reference them explicitly ("message labels", Section 6.1).  A label
    is the pair *(sender, per-sender sequence number)*, which is unique
    without coordination.
    """

    sender: EntityId
    seqno: int

    def __post_init__(self) -> None:
        # Labels live in the hot sets of every layer (dedup, delivery,
        # closures, frontiers); hashing the field tuple on every lookup
        # is measurable, so compute it once.  The cached value matches
        # the generated dataclass hash, and being a plain attribute it
        # stays out of equality, ordering, and repr.
        object.__setattr__(self, "_hash", hash((self.sender, self.seqno)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.sender}:{self.seqno}"


class MessageIdAllocator:
    """Allocates consecutive :class:`MessageId` values for one sender."""

    def __init__(self, sender: EntityId, start: int = 0) -> None:
        self._sender = sender
        self._counter = itertools.count(start)

    @property
    def sender(self) -> EntityId:
        return self._sender

    def next_id(self) -> MessageId:
        return MessageId(self._sender, next(self._counter))


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Message:
    """An application-level data access message.

    ``operation`` names the service operation being invoked (e.g. ``"inc"``,
    ``"rd"``, ``"qry"``, ``"upd"``, ``"LOCK"``) and ``payload`` carries its
    arguments.  The pair is interpreted by the application's state-machine
    transition function ``F: M x S -> S`` (paper Section 3.2, relation (1)).
    """

    msg_id: MessageId
    operation: str
    payload: Any = None

    @property
    def sender(self) -> EntityId:
        return self.msg_id.sender


@dataclass(frozen=True)
class Envelope:
    """A message in flight, together with protocol metadata.

    ``metadata`` is a protocol-specific mapping.  The causal broadcast
    protocols of :mod:`repro.broadcast` use (among others):

    ``"occurs_after"``
        A frozenset of ancestor :class:`MessageId` labels (the paper's
        ``Occurs-After`` AND-dependency, relation (3)).
    ``"vclock"``
        A vector clock snapshot (CBCAST).
    ``"total_seq"``
        A total-order sequence number assigned by the ordering layer
        (``ASend``, Section 5.2).
    """

    message: Message
    metadata: Mapping[str, Any] = field(default_factory=dict)

    @property
    def msg_id(self) -> MessageId:
        return self.message.msg_id

    def with_metadata(self, **extra: Any) -> "Envelope":
        """Return a copy of this envelope with additional metadata keys."""
        merged = dict(self.metadata)
        merged.update(extra)
        return Envelope(self.message, merged)


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivery event observed at a replica.

    ``position`` is the index in the replica's local delivery sequence and
    ``time`` is the simulation time of delivery.  The analysis layer uses
    sequences of these records to verify causal delivery and to locate the
    stable points of Section 4.
    """

    entity: EntityId
    msg_id: MessageId
    position: int
    time: float


def freeze_ancestors(ancestors: Any) -> frozenset[MessageId]:
    """Normalise an ``Occurs-After`` specification to a frozenset of labels.

    Accepts ``None`` (no constraint — the paper's ``Occurs-After(NULL)``),
    a single :class:`MessageId`, or any iterable of them.
    """
    if ancestors is None:
        return frozenset()
    if isinstance(ancestors, MessageId):
        return frozenset((ancestors,))
    return frozenset(ancestors)


def is_hashable(value: Any) -> bool:
    """Return ``True`` if ``value`` can be used as a dict key / set member."""
    return isinstance(value, Hashable)
