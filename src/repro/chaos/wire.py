"""Chaos-over-the-wire campaigns: end-to-end fault injection + auditing.

Where :mod:`repro.chaos.campaign` injects faults *inside* the simulator
(crash-stop replicas, partitions, loss) and audits with ground-truth
stamps, a wire campaign attacks the serving stack from the *outside* and
audits with nothing but what clients observed:

1. boot a real server — :class:`~repro.serve.server.ServeServer` or the
   multi-process front-end — on a real TCP port;
2. put a :class:`~repro.serve.faults.ChaosProxy` in front of it with a
   seeded :class:`~repro.serve.faults.FaultPlan` (cuts mid-frame,
   stalls, delays, duplicated frames, truncated frames);
3. drive :class:`~repro.serve.resilient.ResilientClient` sessions
   through the proxy while (depending on the campaign) also crashing
   and restarting replicas via the in-simulator chaos verbs, killing
   and respawning whole worker processes, or squeezing the server's
   batch queue until it sheds;
4. after the dust settles, merge every client's recorded observations
   and run the black-box CC/CCv checker
   (:func:`repro.analysis.wire_history.check_wire_history`) — no
   simulator stamps, no server cooperation, exactly what the paper
   promises *clients* see.

A campaign passes only if there were **zero CC/CCv violations and zero
hangs** — every operation resolved or raised within its deadline.  The
stricter CM level is also checked and reported (it should hold too; it
is surfaced separately so a future CM-only anomaly is visible without
failing the causal-consistency gate).

The worker-kill campaign restarts workers *empty* (they are in-memory),
so its second phase uses fresh sessions over a fresh key namespace: a
phase-2 read of a phase-1 key really would be a lost write, and flagging
it would be the auditor doing its job on data loss we inflicted
deliberately.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.wire_history import (
    WireHistory,
    WireRecorder,
    check_wire_history,
)
from repro.serve.client import ServeError
from repro.serve.faults import ChaosProxy, FaultPlan
from repro.serve.procs import MultiProcServeServer
from repro.serve.resilient import GaveUp, ResilientClient
from repro.serve.server import ServeServer
from repro.serve.wire import CODEC_JSON

#: The campaign kinds ``run_wire_campaign`` understands.
WIRE_CAMPAIGNS = (
    "disconnects",   # seeded cuts (mid-frame) + dup + delay, plus one
                     # in-simulator replica crash/restart mid-run
    "stalls",        # directional stalls + delays; deadlines must fire
    "truncations",   # frames cut short after an honest length prefix
    "overload",      # tiny batch queue; server sheds, clients back off
    "workers",       # SIGKILL + respawn a shard worker (procs >= 2)
)

#: Per-client wall-clock budget (seconds): a generous backstop far above
#: any legitimate retry schedule — exceeding it is recorded as a *hang*,
#: the thing deadlines exist to make impossible.
CLIENT_BUDGET = 120.0


@dataclass
class WireCampaignResult:
    """Outcome of one wire-chaos campaign."""

    name: str
    seed: int
    procs: int
    codec: str
    clients: int
    ops: int = 0
    failed_ops: int = 0
    hangs: int = 0
    #: Black-box CC/CCv violations (the pass/fail gate).
    violations: List[str] = field(default_factory=list)
    #: CM-level findings, reported but not gating.
    cm_violations: List[str] = field(default_factory=list)
    #: Server-side (white-box) session-guarantee verdicts, for contrast.
    server_violations: List[str] = field(default_factory=list)
    #: Proxy + summed client healing counters.
    counters: Dict[str, int] = field(default_factory=dict)
    #: The merged client-observed history the verdicts were drawn from —
    #: kept so callers (tests, notebooks) can re-audit or mutate it.
    history: Optional[WireHistory] = None

    @property
    def ok(self) -> bool:
        return not self.violations and not self.hangs

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        extras = " ".join(
            f"{key}={value}"
            for key, value in sorted(self.counters.items())
            if value
        )
        lines = [
            f"[{status}] {self.name} seed={self.seed} procs={self.procs} "
            f"codec={self.codec}: ops={self.ops} failed={self.failed_ops} "
            f"hangs={self.hangs} violations={len(self.violations)} "
            f"cm={len(self.cm_violations)}"
        ]
        if extras:
            lines.append(f"  {extras}")
        lines.extend(f"  {v}" for v in self.violations)
        lines.extend(f"  (cm) {v}" for v in self.cm_violations)
        return "\n".join(lines)


def _plan_for(kind: str, seed: int) -> Optional[FaultPlan]:
    if kind == "disconnects":
        return FaultPlan(
            seed, cut_rate=0.015, dup_rate=0.04, delay_rate=0.08,
            delay_seconds=0.02,
        )
    if kind == "stalls":
        return FaultPlan(
            seed, stall_rate=0.05, delay_rate=0.10,
            stall_seconds=0.25, delay_seconds=0.03,
        )
    if kind == "truncations":
        return FaultPlan(seed, truncate_rate=0.02, cut_rate=0.01)
    # overload / workers torture the server itself; the proxy forwards.
    return None


async def _drive_session(
    proxy: ChaosProxy,
    name: str,
    *,
    codec: str,
    seed: int,
    ops: int,
    keys: List[str],
    request_timeout: float,
    result: WireCampaignResult,
    recorders: List[WireRecorder],
) -> None:
    """One resilient session's worth of campaign traffic."""
    rng = random.Random(seed)
    recorder = WireRecorder(name)
    recorders.append(recorder)
    client = ResilientClient(
        "127.0.0.1", proxy.port, name,
        codec=codec, request_timeout=request_timeout,
        seed=seed, recorder=recorder,
    )
    try:
        await client.connect()
    except (GaveUp, ServeError, ConnectionError, OSError):
        result.failed_ops += ops
        return
    try:
        for index in range(ops):
            roll = rng.random()
            try:
                if roll < 0.45:
                    await client.put(
                        rng.choice(keys), f"{name}:{index}"
                    )
                elif roll < 0.9:
                    await client.get(rng.choice(keys))
                else:
                    await client.read()
                result.ops += 1
            except (GaveUp, ServeError, ConnectionError, OSError):
                # Budget exhausted or a definitive refusal — a *failure*,
                # not a hang: the op raised within bounded time.
                result.failed_ops += 1
    finally:
        for key, value in client.counters.items():
            result.counters[key] = result.counters.get(key, 0) + value
        try:
            await client.close()
        except (ServeError, ConnectionError, OSError):
            pass


async def _run_clients(
    proxy: ChaosProxy,
    names: List[str],
    *,
    codec: str,
    seed: int,
    ops: int,
    keys: List[str],
    request_timeout: float,
    result: WireCampaignResult,
    recorders: List[WireRecorder],
) -> None:
    """Run one wave of sessions, counting budget blowouts as hangs."""
    async def budgeted(index: int, name: str) -> None:
        try:
            await asyncio.wait_for(
                _drive_session(
                    proxy, name,
                    codec=codec, seed=seed * 7919 + index, ops=ops,
                    keys=keys, request_timeout=request_timeout,
                    result=result, recorders=recorders,
                ),
                CLIENT_BUDGET,
            )
        except asyncio.TimeoutError:
            result.hangs += 1

    await asyncio.gather(*[
        budgeted(index, name) for index, name in enumerate(names)
    ])


async def run_wire_campaign(
    kind: str,
    seed: int,
    *,
    procs: int = 1,
    codec: str = CODEC_JSON,
    clients: int = 4,
    ops_per_client: int = 20,
    shards: int = 2,
    members_per_shard: int = 3,
) -> WireCampaignResult:
    """Run one seeded chaos-over-the-wire campaign end to end."""
    if kind not in WIRE_CAMPAIGNS:
        raise ValueError(
            f"unknown wire campaign {kind!r} (know {WIRE_CAMPAIGNS})"
        )
    if kind == "workers" and procs < 2:
        raise ValueError("the workers campaign needs procs >= 2")
    result = WireCampaignResult(
        name=kind, seed=seed, procs=procs, codec=codec, clients=clients,
    )
    # A queue bound of one op: any two requests landing in the same
    # batch window shed the second — guarantees the campaign actually
    # exercises the overload frames and the clients' backoff.
    max_queue = 1 if kind == "overload" else None
    if procs > 1:
        server: object = MultiProcServeServer(
            shards=shards, members_per_shard=members_per_shard,
            seed=seed, procs=procs, max_queue=max_queue,
        )
    else:
        server = ServeServer(
            shards=shards, members_per_shard=members_per_shard,
            seed=seed, max_queue=max_queue,
        )
    await server.start()
    proxy = ChaosProxy(
        "127.0.0.1", server.port, plan=_plan_for(kind, seed)
    )
    await proxy.start()
    recorders: List[WireRecorder] = []
    # Tight deadlines so stalls convert into timeouts, not waits: the
    # longest proxy stall is ~0.4s, so 2s cleanly separates "stalled"
    # from "slow".
    request_timeout = 2.0
    keys = [f"wc{seed}k{i}" for i in range(6)]
    names = [f"wc-{kind}-{seed}-c{i}" for i in range(clients)]
    try:
        wave = _run_clients(
            proxy, names,
            codec=codec, seed=seed, ops=ops_per_client, keys=keys,
            request_timeout=request_timeout, result=result,
            recorders=recorders,
        )
        if kind == "disconnects":
            # Fold the in-simulator chaos verbs in: crash a replica
            # mid-wave (direct to the server, bypassing the proxy — the
            # control channel must not be the thing that flakes), then
            # restart it.  Client-visible answers must stay causally
            # consistent throughout.
            wave_task = asyncio.ensure_future(wave)
            control = ResilientClient(
                "127.0.0.1", server.port, f"wc-{kind}-{seed}-control",
                codec=CODEC_JSON, request_timeout=request_timeout,
            )
            member: Optional[str] = None
            try:
                await control.connect()
                await asyncio.sleep(0.2)
                reply = await control.chaos("crash", 0)
                member = reply.get("member")
                await asyncio.sleep(0.3)
            except (GaveUp, ServeError, ConnectionError, OSError):
                pass
            finally:
                if member is not None:
                    try:
                        await control.chaos("restart", 0, member)
                    except (GaveUp, ServeError, ConnectionError, OSError):
                        pass
                try:
                    await control.close()
                except (ServeError, ConnectionError, OSError):
                    pass
            await wave_task
        elif kind == "workers":
            # Phase 1 under normal service; then SIGKILL a worker (its
            # shards' data dies with it), respawn it empty, and run a
            # phase 2 of fresh sessions over a fresh key namespace.
            await wave
            victim = 1
            await server.kill_worker(victim)
            # A couple of ops against the dead worker: they must fail
            # fast (clean errors / refused hellos), never hang.
            await _run_clients(
                proxy, [f"wc-{kind}-{seed}-dead{i}" for i in range(2)],
                codec=codec, seed=seed + 1, ops=3, keys=keys,
                request_timeout=request_timeout, result=result,
                recorders=recorders,
            )
            await server.respawn_worker(victim)
            await _run_clients(
                proxy,
                [f"wc-{kind}-{seed}-p2c{i}" for i in range(clients)],
                codec=codec, seed=seed + 2, ops=ops_per_client,
                keys=[f"wc{seed}p2k{i}" for i in range(6)],
                request_timeout=request_timeout, result=result,
                recorders=recorders,
            )
        else:
            await wave
    finally:
        await proxy.stop()
        try:
            await server.shutdown(heal=True)
        except Exception:  # noqa: BLE001 - a torn-down server must not mask the audit
            pass
    for key, value in proxy.counters.items():
        result.counters[f"proxy_{key}"] = value
    history = WireHistory.merge(recorders)
    result.history = history
    result.violations = [
        str(v) for v in check_wire_history(history, levels=("CC", "CCv"))
    ]
    cm_only = [
        v for v in check_wire_history(history)
        if v.level == "CM"
    ]
    result.cm_violations = [str(v) for v in cm_only]
    server_verdicts = server.session_guarantee_violations()
    result.server_violations = [str(v) for v in server_verdicts]
    return result


async def run_wire_campaigns(
    kinds: List[str],
    seed: int,
    *,
    procs: int = 1,
    codec: str = CODEC_JSON,
    clients: int = 4,
    ops_per_client: int = 20,
) -> List[WireCampaignResult]:
    """Run several campaigns back to back (one server each)."""
    results = []
    for offset, kind in enumerate(kinds):
        results.append(await run_wire_campaign(
            kind, seed + offset,
            procs=procs, codec=codec,
            clients=clients, ops_per_client=ops_per_client,
        ))
    return results
