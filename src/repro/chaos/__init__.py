"""Chaos campaigns: crash-stop fault injection with always-on invariants.

The paper assumes a substrate that keeps delivering causally consistent
messages across member failures and regroupings; this package tests that
assumption end-to-end.  :class:`ChaosCluster` wires every ordering
protocol together with its recovery, garbage-collection and view-sync
sidecars; :class:`ChaosCampaign` scripts timed crashes, restarts,
partitions, loss phases and membership churn; and the
:class:`~repro.analysis.invariants.InvariantMonitor` audits safety after
every run.  See ``docs/ROBUSTNESS.md`` for the fault model and the
campaign rules under which liveness is guaranteed.
"""

from repro.chaos.campaign import (
    DISTURBANCES,
    ChaosCampaign,
    ChaosEvent,
    random_campaign,
)
from repro.chaos.cluster import (
    CHAOS_PROTOCOLS,
    CampaignResult,
    ChaosCluster,
)

#: Lazily re-exported from :mod:`repro.chaos.wire` — importing it
#: eagerly here would close an import cycle (wire -> serve.procs ->
#: shard -> chaos.campaign -> this package).
_WIRE_EXPORTS = (
    "WIRE_CAMPAIGNS",
    "WireCampaignResult",
    "run_wire_campaign",
    "run_wire_campaigns",
)


def __getattr__(name):
    if name in _WIRE_EXPORTS:
        from repro.chaos import wire

        return getattr(wire, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CHAOS_PROTOCOLS",
    "CampaignResult",
    "ChaosCampaign",
    "ChaosCluster",
    "ChaosEvent",
    "DISTURBANCES",
    "WIRE_CAMPAIGNS",
    "WireCampaignResult",
    "random_campaign",
    "run_wire_campaign",
    "run_wire_campaigns",
]
