"""Chaos campaigns: crash-stop fault injection with always-on invariants.

The paper assumes a substrate that keeps delivering causally consistent
messages across member failures and regroupings; this package tests that
assumption end-to-end.  :class:`ChaosCluster` wires every ordering
protocol together with its recovery, garbage-collection and view-sync
sidecars; :class:`ChaosCampaign` scripts timed crashes, restarts,
partitions, loss phases and membership churn; and the
:class:`~repro.analysis.invariants.InvariantMonitor` audits safety after
every run.  See ``docs/ROBUSTNESS.md`` for the fault model and the
campaign rules under which liveness is guaranteed.
"""

from repro.chaos.campaign import (
    DISTURBANCES,
    ChaosCampaign,
    ChaosEvent,
    random_campaign,
)
from repro.chaos.cluster import (
    CHAOS_PROTOCOLS,
    CampaignResult,
    ChaosCluster,
)

__all__ = [
    "CHAOS_PROTOCOLS",
    "CampaignResult",
    "ChaosCampaign",
    "ChaosCluster",
    "ChaosEvent",
    "DISTURBANCES",
    "random_campaign",
]
