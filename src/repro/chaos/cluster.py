"""Fully wired protocol cluster for fault-injection campaigns.

:class:`ChaosCluster` assembles, per member, the complete stack the paper
assumes of its substrate: an ordering protocol
(:mod:`repro.broadcast`), NACK/anti-entropy recovery
(:class:`~repro.broadcast.recovery.RecoveryAgent`), stability-driven
store compaction (:class:`~repro.broadcast.gc.StabilityTracker`) and
view-synchronous membership (:class:`~repro.group.view_sync.ViewSyncAgent`)
— then runs a :class:`~repro.chaos.campaign.ChaosCampaign` against it,
drives repair to convergence and audits the
:class:`~repro.analysis.invariants.InvariantMonitor` battery.

Ground truth
------------

Checking causal order after crashes requires knowing, per data message,
what its *protocol-guaranteed* causal predecessors were at send time —
state the protocols themselves lose when a node crashes.  The cluster
records this externally at each :meth:`ChaosCluster.app_send`:

=================  ===========================================================
``unordered``      nothing
``fifo``           the member's previous data send (labels order the stream)
``lamport_total``  the member's previous data send (stamps are monotone)
``sequencer``      nothing (pure total order: the sequencer's arrival order
                   is the only guarantee; audited by the ``total-order``
                   and ``sequencer-epoch`` invariants instead)
``osend``          the explicitly declared ``Occurs-After`` set
``cbcast``         data settled at the sender's current incarnation, plus
                   *all* of its own prior sends (its clock component mirrors
                   the durable label allocator)
``rst``            the owed-count prefixes of the sent-matrix snapshot the
                   message carries, min over the send-time view (counts are
                   the whole guarantee; the sender's settled *set* can
                   exceed what any count can express after a restart)
=================  ===========================================================

Eligibility is declared on the protocol classes themselves
(``BroadcastProtocol.crash_eligible``): ``asend`` opts out (anonymous
epoch closure an amnesiac member cannot reconstruct); everything else —
the sequencer included, via its epoch-based failover — is in the matrix.

Every stack also carries a
:class:`~repro.group.auto_membership.MembershipManager`: heartbeats feed
a failure detector whose suspicions turn into automatic ``leave``
proposals, so a crash mid-flush un-wedges itself (the removal wins the
flush tie-break and re-forms the quorum).  See ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.invariants import InvariantMonitor, Violation
from repro.broadcast import (
    ASendTotalOrder,
    CbcastBroadcast,
    FifoBroadcast,
    LamportTotalOrder,
    OSendBroadcast,
    RstBroadcast,
    SequencerTotalOrder,
    UnorderedBroadcast,
)
from repro.broadcast.gc import StabilityTracker
from repro.broadcast.recovery import RecoveryAgent
from repro.errors import (
    ConfigurationError,
    MembershipError,
    ProtocolError,
    SimulationError,
)
from repro.group.auto_membership import MembershipManager, manage_membership
from repro.group.membership import GroupMembership
from repro.group.view_sync import ViewSyncAgent, attach_view_sync
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceRecorder
from repro.types import EntityId, MessageId

from repro.chaos.campaign import ChaosCampaign, ChaosEvent

#: Every protocol the repo ships; eligibility is read off the classes.
_CANDIDATE_PROTOCOLS = (
    UnorderedBroadcast,
    FifoBroadcast,
    CbcastBroadcast,
    OSendBroadcast,
    RstBroadcast,
    LamportTotalOrder,
    SequencerTotalOrder,
    ASendTotalOrder,
)

#: The protocols chaos campaigns run against — derived from the
#: ``crash_eligible`` marker each class declares, so protocols opt in or
#: out at the definition site.
CHAOS_PROTOCOLS = {
    cls.protocol_name: cls
    for cls in _CANDIDATE_PROTOCOLS
    if cls.crash_eligible
}

#: Protocols that opted out (for error messages and tests).
CHAOS_EXCLUDED = {
    cls.protocol_name: cls
    for cls in _CANDIDATE_PROTOCOLS
    if not cls.crash_eligible
}

#: Safety cap per scheduler drain: a repair loop that schedules this many
#: events without quiescing is reported as a liveness violation instead
#: of hanging the campaign.
MAX_EVENTS_PER_DRAIN = 2_000_000


@dataclass
class CampaignResult:
    """Outcome of one campaign run."""

    protocol: str
    campaign: str
    violations: List[Violation]
    sends: int
    sends_skipped: int
    crashes: int
    restarts: int
    data_messages: int
    settle_rounds: int
    sim_time: float
    #: Repair-latency metrics (suspicion delay, flush duration, handoff
    #: delay, proposal counts) — regressions in time-to-repair are as
    #: interesting as safety violations.
    repair: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        line = (
            f"{self.protocol:>13s} {self.campaign:<14s} {status:<16s} "
            f"sends={self.sends} skipped={self.sends_skipped} "
            f"crashes={self.crashes} settle_rounds={self.settle_rounds} "
            f"t={self.sim_time:.1f}"
        )
        repair = self.repair
        if repair.get("suspicions"):
            line += (
                f" susp={repair['suspicions']:.0f}"
                f"/{repair['suspicion_delay_mean']:.1f}s"
            )
        if repair.get("removals_proposed"):
            line += f" rm={repair['removals_proposed']:.0f}"
        if repair.get("flushes"):
            line += f" flush={repair['flush_duration_mean']:.1f}s"
        if repair.get("handoffs"):
            line += f" handoff={repair['handoffs']:.0f}"
            if "handoff_delay_mean" in repair:
                # No delay when the predecessor was deposed alive (e.g.
                # partitioned out): there is no crash to measure from.
                line += f"/{repair['handoff_delay_mean']:.1f}s"
        return line


class ChaosCluster:
    """A group of fully equipped stacks under a chaos controller."""

    def __init__(
        self,
        protocol: str = "cbcast",
        members: Sequence[EntityId] = ("a", "b", "c", "d"),
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        scan_interval: float = 2.0,
        nack_backoff: float = 4.0,
        overlap: bool = False,
        auto_membership: bool = True,
        heartbeat_interval: float = 1.0,
        suspicion_timeout: float = 5.0,
        scheduler: Optional[Scheduler] = None,
        hop_events: str = "full",
    ) -> None:
        if protocol not in CHAOS_PROTOCOLS:
            if protocol in CHAOS_EXCLUDED:
                raise ConfigurationError(
                    f"protocol {protocol!r} declares crash_eligible=False "
                    "and cannot run chaos campaigns"
                )
            raise ConfigurationError(
                f"unknown chaos protocol {protocol!r}; "
                f"choose from {sorted(CHAOS_PROTOCOLS)}"
            )
        if len(members) < 2:
            raise ConfigurationError("a chaos cluster needs >= 2 members")
        self.protocol_name = protocol
        self.members: Tuple[EntityId, ...] = tuple(members)
        # An external scheduler lets several clusters share one simulated
        # timeline — each remains its own replication group on its own
        # network (`repro.shard` runs one cluster per shard this way).
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.faults = FaultPlan()
        # `hop_events` tunes how much per-hop detail the trace keeps:
        # analysis runs want "full"; serving-path clusters pass "off" so
        # the simulator's hot loop skips assembling per-hop events
        # entirely (send/deliver events are always kept).
        self.network = Network(
            self.scheduler,
            latency=latency if latency is not None else UniformLatency(0.2, 1.8),
            faults=self.faults,
            rng=RngRegistry(seed),
            trace=TraceRecorder(hop_events=hop_events),
        )
        self.group = GroupMembership(self.members)
        protocol_cls = CHAOS_PROTOCOLS[protocol]
        self.stacks: Dict[EntityId, "BroadcastProtocol"] = {}
        for member in self.members:
            stack = protocol_cls(member, self.group)
            self.network.register(stack)
            self.stacks[member] = stack
        self.recoveries: Dict[EntityId, RecoveryAgent] = {}
        for member, stack in self.stacks.items():
            agent = RecoveryAgent(
                stack, scan_interval=scan_interval, nack_backoff=nack_backoff
            )
            agent.start()
            self.recoveries[member] = agent
        self.trackers: Dict[EntityId, StabilityTracker] = {
            member: StabilityTracker(stack)
            for member, stack in self.stacks.items()
        }
        self.view_syncs: Dict[EntityId, ViewSyncAgent] = attach_view_sync(
            self.stacks
        )
        #: Overlapping-disturbance mode: crashes are not deferred past
        #: in-flight flushes or other members' outages (beyond the
        #: two-up floor) — the failure detector is expected to repair
        #: whatever the overlap wedges.
        self.overlap = overlap
        self.managers: Dict[EntityId, MembershipManager] = {}
        if auto_membership:
            self.managers = manage_membership(
                self.stacks,
                self.view_syncs,
                heartbeat_interval=heartbeat_interval,
                suspicion_timeout=suspicion_timeout,
            )
        # Ground-truth bookkeeping (see module docstring).
        self.data_labels: Set[MessageId] = set()
        self.dependencies: Dict[MessageId, frozenset] = {}
        # Send-time view membership per label (the protocol's "audience").
        self.audience: Dict[MessageId, frozenset] = {}
        self._sends: Dict[EntityId, List[Tuple[MessageId, int]]] = {
            member: [] for member in self.members
        }
        self._payload_counter = 0
        self.sends_skipped = 0
        self.crashes = 0
        self.restarts = 0
        # Invoked with the member id after every restart (wiped volatile
        # state); lets an embedding layer drop caches keyed on settled
        # prefixes (e.g. ShardedCluster's barrier snapshot cache).
        self.on_restart: Optional[Callable[[EntityId], None]] = None
        # Crash times per member (latest crash), for suspicion-delay and
        # handoff-delay accounting.
        self._crash_log: Dict[EntityId, float] = {}
        # Set when a scheduler drain trips the event cap: the repair
        # machinery livelocked instead of quiescing.
        self._livelock: Optional[str] = None

    # -- application traffic -------------------------------------------------

    def _settled_data(self, member: EntityId) -> Set[MessageId]:
        stack = self.stacks[member]
        delivered = {
            e.msg_id
            for e in stack._delivered_envelopes
            if e.msg_id in self.data_labels
        }
        return delivered | (set(stack._skipped_stable) & self.data_labels)

    def _ground_truth_deps(self, member: EntityId) -> frozenset:
        stack = self.stacks[member]
        own = [label for label, _inc in self._sends[member]]
        name = self.protocol_name
        if name in ("unordered", "sequencer"):
            # The sequencer offers pure total order: delivery position is
            # the sequencer's arrival order, which promises nothing about
            # causal precedence — audited by `total-order` and
            # `sequencer-epoch` instead.
            return frozenset()
        if name in ("fifo", "lamport_total"):
            return frozenset(own[-1:])
        if name == "osend":
            # Deterministic application-level choice: depend on the last
            # couple of data messages delivered here.
            recent = [
                e.msg_id
                for e in stack._delivered_envelopes
                if e.msg_id in self.data_labels
            ]
            return frozenset(recent[-2:])
        settled = self._settled_data(member)
        if name == "cbcast":
            return frozenset(settled) | frozenset(own)
        if name == "rst":
            # The stamp the outgoing message will carry is a snapshot of
            # the sender's sent-matrix, and that snapshot is the *whole*
            # guarantee: each destination m delivers at least
            # ``matrix[o][m]`` messages from origin ``o`` first — under
            # seqno-contiguous accounting, labels ``o:0..matrix[o][m]-1``.
            # The sender's settled *set* can exceed this (an amnesiac
            # rejoiner may settle an out-of-prefix label whose position no
            # count can express), so claim only the owed-count prefixes,
            # taking the minimum over the send-time view so the dependency
            # set is valid at every audience member.
            matrix = stack._sent
            view_members = self.group.view.members
            deps = set()
            for origin, cols in matrix.items():
                owed = min(cols.get(m, 0) for m in view_members)
                deps.update(
                    label
                    for label in (
                        MessageId(origin, seqno) for seqno in range(owed)
                    )
                    if label in self.data_labels
                )
            return frozenset(deps)
        raise ConfigurationError(f"no ground-truth rule for {name!r}")

    def app_send(self, member: EntityId) -> Optional[MessageId]:
        """Broadcast an application message from ``member``.

        Returns the new label, or ``None`` if the send was skipped — the
        member is crashed, out of the view, or flush-frozen (skipping is
        itself part of what campaigns exercise).
        """
        stack = self.stacks[member]
        if stack.crashed or member not in self.group.view:
            self.sends_skipped += 1
            return None
        deps = self._ground_truth_deps(member)
        self._payload_counter += 1
        try:
            if self.protocol_name == "osend":
                label = stack.bcast(
                    "app", self._payload_counter, occurs_after=deps
                )
            else:
                label = stack.bcast("app", self._payload_counter)
        except ProtocolError:
            # Flush-frozen: the view-sync guard rejected the send before
            # a label was allocated.
            self.sends_skipped += 1
            return None
        self.data_labels.add(label)
        self.dependencies[label] = deps
        self.audience[label] = frozenset(self.group.view.members)
        self._sends[member].append((label, stack.incarnation))
        return label

    # -- fault controls ------------------------------------------------------

    def crash(self, member: EntityId) -> None:
        self.stacks[member].crash()
        self.crashes += 1
        self._crash_log[member] = self.scheduler.now

    def restart(self, member: EntityId) -> None:
        self.stacks[member].restart()
        self.restarts += 1
        if self.on_restart is not None:
            self.on_restart(member)

    def partition(self, *groups: Sequence[EntityId]) -> None:
        self.faults.partition(*groups)

    def heal(self) -> None:
        self.faults.heal()

    def set_loss(self, probability: float) -> None:
        self.faults.drop_probability = probability

    def set_duplicate(self, probability: float) -> None:
        self.faults.duplicate_probability = probability

    # -- membership churn ----------------------------------------------------

    def propose_with_retry(
        self, kind: str, entity: EntityId, attempts: int = 60
    ) -> None:
        """Propose ``kind``/``entity``, retrying while a flush is busy.

        Proposal goes through the first up-and-in-view member (other than
        ``entity``) with no pending change; if none qualifies right now,
        retry after a delay until ``attempts`` runs out.
        """

        def attempt(remaining: int) -> None:
            view = self.group.view
            if kind == "join" and entity in view:
                return
            if kind == "leave" and entity not in view:
                return
            proposer = next(
                (
                    m
                    for m in view.members
                    if m != entity
                    and not self.stacks[m].crashed
                    and self.view_syncs[m]._pending_change is None
                ),
                None,
            )
            if proposer is not None:
                try:
                    self.view_syncs[proposer].propose(kind, entity)
                    return
                except (ProtocolError, MembershipError):
                    pass
            if remaining > 0:
                self.scheduler.call_in(1.0, attempt, remaining - 1)

        attempt(attempts)

    def remove(self, member: EntityId) -> None:
        """Crash ``member`` and propose its removal from the view."""
        if not self.stacks[member].crashed:
            self.crash(member)
        self.propose_with_retry("leave", member)

    def rejoin(self, member: EntityId, attempts: int = 60) -> None:
        """Propose re-adding ``member``; restart it once the join installs.

        The restart is deliberately deferred until the member is back in
        the view: a node that wakes *before* the join flush completes
        would receive in-flight old-view traffic whose ordering metadata
        does not account for it (the RST sent-matrix records owed counts
        per *view member*).
        """
        self.propose_with_retry("join", member)

        def wake(remaining: int) -> None:
            if member in self.group.view:
                if self.stacks[member].crashed:
                    self.restart(member)
                return
            if remaining > 0:
                self.scheduler.call_in(1.0, wake, remaining - 1)

        self.scheduler.call_in(1.0, wake, attempts)

    # -- campaign execution --------------------------------------------------

    def _apply(self, event: ChaosEvent) -> None:
        action = event.action
        if action == "send":
            self.app_send(event.arg)
        elif action == "crash":
            self._crash_when_safe(event.arg)
        elif action == "restart":
            if self.stacks[event.arg].crashed:
                if event.arg in self.group.view:
                    self.restart(event.arg)
                else:
                    # The failure detector already removed this plainly
                    # crashed member; it must come back through a join
                    # flush, not wake inside a view it is no longer in.
                    self.rejoin(event.arg)
        elif action == "remove":
            self.remove(event.arg)
        elif action == "rejoin":
            self.rejoin(event.arg)
        elif action == "partition":
            self.partition(*event.arg)
        elif action == "heal":
            self.heal()
        elif action == "loss":
            self.set_loss(event.arg)
        elif action == "dup":
            self.set_duplicate(event.arg)

    def _crash_when_safe(self, member: EntityId, attempts: int = 50) -> None:
        """Crash ``member``, deferring only as far as the mode requires.

        Serial mode keeps at most one member down and never kills a
        member mid-flush; the runner enforces both by deferring the
        crash, bounded so a wedged flush cannot postpone it forever — it
        is dropped instead.  Overlap mode crashes straight into in-flight
        flushes and other members' outages (the failure detector is the
        repair path) and defers only for the two-up floor, below which no
        flush quorum could ever re-form.
        """
        if self.overlap:
            up_after = sum(
                1
                for name, other in self.stacks.items()
                if name != member and not other.crashed
            )
            if up_after >= 2:
                if not self.stacks[member].crashed:
                    self.crash(member)
                return
        else:
            others_down = any(
                other.crashed
                for name, other in self.stacks.items()
                if name != member
            )
            flushing = any(
                agent._pending_change is not None
                for agent in self.view_syncs.values()
            )
            if not others_down and not flushing:
                if not self.stacks[member].crashed:
                    self.crash(member)
                return
        if attempts > 0:
            self.scheduler.call_in(1.0, self._crash_when_safe, member, attempts - 1)

    def run_campaign(
        self,
        campaign: ChaosCampaign,
        max_settle_rounds: int = 60,
        check_invariants: bool = True,
    ) -> CampaignResult:
        """Execute ``campaign``, drive repair to convergence, audit."""
        for manager in self.managers.values():
            manager.start(campaign.duration)
        for event in campaign.events:
            self.scheduler.call_at(event.time, self._apply, event)
        try:
            self.scheduler.run_until(campaign.duration, MAX_EVENTS_PER_DRAIN)
        except SimulationError as exc:
            self._livelock = str(exc)
        self._restore()
        violations, rounds = self.settle(max_settle_rounds)
        if check_invariants:
            violations = violations + self.check_invariants()
        return CampaignResult(
            protocol=self.protocol_name,
            campaign=campaign.name,
            violations=violations,
            sends=sum(len(sends) for sends in self._sends.values()),
            sends_skipped=self.sends_skipped,
            crashes=self.crashes,
            restarts=self.restarts,
            data_messages=len(self.data_labels),
            settle_rounds=rounds,
            sim_time=self.scheduler.now,
            repair=self.repair_metrics(),
        )

    def repair_metrics(self) -> Dict[str, float]:
        """Aggregate time-to-repair observations across the cluster.

        * *suspicion delay* — crash to first suspicion of that member
          (failure-detection latency);
        * *flush duration* — first freeze to install, per installed view
          (how long membership changes block sending);
        * *handoff delay* — previous sequencer's crash to the successor's
          binding handoff (total-order repair latency).
        """
        metrics: Dict[str, float] = {}
        susp_delays: List[float] = []
        removals = 0
        for manager in self.managers.values():
            removals += manager.removals_proposed
            for suspect, when in manager.suspicion_log:
                crashed_at = self._crash_log.get(suspect)
                if crashed_at is not None and crashed_at <= when:
                    susp_delays.append(when - crashed_at)
        if susp_delays:
            metrics["suspicions"] = float(len(susp_delays))
            metrics["suspicion_delay_mean"] = sum(susp_delays) / len(
                susp_delays
            )
            metrics["suspicion_delay_max"] = max(susp_delays)
        if removals:
            metrics["removals_proposed"] = float(removals)
        flush_durations = [
            record.flush_duration
            for agent in self.view_syncs.values()
            for record in agent.install_history
        ]
        if flush_durations:
            metrics["flushes"] = float(len(flush_durations))
            metrics["flush_duration_mean"] = sum(flush_durations) / len(
                flush_durations
            )
            metrics["flush_duration_max"] = max(flush_durations)
        handoff_delays: List[float] = []
        handoff_count = 0
        for stack in self.stacks.values():
            for handoff in getattr(stack, "handoffs", []):
                if not handoff["took_over"]:
                    continue
                handoff_count += 1
                crashed_at = self._crash_log.get(handoff["previous"])
                if crashed_at is not None and crashed_at <= handoff["time"]:
                    handoff_delays.append(handoff["time"] - crashed_at)
        if handoff_count:
            metrics["handoffs"] = float(handoff_count)
        if handoff_delays:
            metrics["handoff_delay_mean"] = sum(handoff_delays) / len(
                handoff_delays
            )
            metrics["handoff_delay_max"] = max(handoff_delays)
        return metrics

    def _restore(self) -> None:
        """End-of-campaign cleanup: heal, de-fault, revive, re-admit."""
        self.heal()
        self.set_loss(0.0)
        self.set_duplicate(0.0)
        self._drain()
        for member, stack in self.stacks.items():
            if stack.crashed and member in self.group.view:
                self.restart(member)
        for member in self.members:
            if member not in self.group.view:
                self.rejoin(member)
        self._drain()

    def _drain(self) -> None:
        """Run the scheduler to quiescence, recording a livelock if any.

        The event-driven protocol timers all disarm themselves (recovery
        scans stop when nothing is chaseable, flush checks ride delivery
        hooks), so a queue that does not empty within the cap is a
        liveness bug — recorded rather than raised so the campaign can
        still report every other invariant.
        """
        if self._livelock is not None:
            return
        try:
            self.scheduler.run(MAX_EVENTS_PER_DRAIN)
        except SimulationError as exc:
            self._livelock = str(exc)

    # -- repair-to-convergence ----------------------------------------------

    def _repair_participants(self) -> List[EntityId]:
        return [
            member
            for member, stack in self.stacks.items()
            if not stack.crashed
        ]

    def converged(self) -> bool:
        if frozenset(self.group.view.members) != frozenset(self.members):
            return False
        if any(stack.crashed for stack in self.stacks.values()):
            return False
        if any(
            agent._pending_change is not None
            for agent in self.view_syncs.values()
        ):
            return False
        union: Set[MessageId] = set()
        for member in self.members:
            union |= self._settled_data(member)
        for member in self.members:
            if union - self._settled_data(member):
                return False
            held_data = [
                e.msg_id
                for e in self.stacks[member].holdback_envelopes
                if e.msg_id in self.data_labels
            ]
            if held_data:
                return False
        return True

    def settle(
        self, max_rounds: int = 60
    ) -> Tuple[List[Violation], int]:
        """Run repair rounds until convergence or the round budget.

        Each round first repairs membership (restarts crashed in-view
        members, re-proposes joins for members a late-installing leave
        evicted), then drives one anti-entropy digest exchange and one
        stability-gossip round at every up member, then drains the
        scheduler.  Non-convergence within the budget is a *liveness*
        violation — exactly the class of bug this harness exists to pin.
        """
        for round_number in range(1, max_rounds + 1):
            if self._livelock is not None:
                return (
                    [Violation(
                        "liveness",
                        None,
                        f"scheduler failed to quiesce: {self._livelock}",
                    )],
                    round_number - 1,
                )
            if self.converged():
                return [], round_number - 1
            self._repair_membership()
            for member in self._repair_participants():
                self.recoveries[member].anti_entropy_round()
                self.trackers[member].gossip_round()
            self._drain()
        if self.converged():
            return [], max_rounds
        return [self._liveness_violation(max_rounds)], max_rounds

    def _repair_membership(self) -> None:
        """Undo membership damage that surfaced after ``_restore`` ran.

        A deferred leave can install *during* settling (its proposal was
        queued behind the tie-break winner), evicting a member that
        ``_restore`` already revived; campaigns must end with the full
        group, so re-propose the join and restart anyone crashed yet
        still in the view.
        """
        for member, stack in self.stacks.items():
            if stack.crashed and member in self.group.view:
                self.restart(member)
        # Re-announce wedged flushes: a participant that crashed mid-flush
        # forgot it was flushing, and the others' bounded FLUSH_OK resends
        # may be long exhausted.  The nudge makes the amnesiac adopt the
        # change and makes everyone who already flushed re-send one
        # FLUSH_OK — both idempotent.
        for agent in self.view_syncs.values():
            if agent._pending_change is not None and not agent.protocol.crashed:
                agent.nudge()
        for member in self.members:
            if member in self.group.view:
                continue
            join_in_flight = any(
                agent._pending_change is not None
                and agent._pending_change.kind == "join"
                and agent._pending_change.entity == member
                for agent in self.view_syncs.values()
            )
            if not join_in_flight:
                self.rejoin(member)

    def _liveness_violation(self, rounds: int) -> Violation:
        union: Set[MessageId] = set()
        for member in self.members:
            union |= self._settled_data(member)
        report = []
        for member in self.members:
            stack = self.stacks[member]
            missing = union - self._settled_data(member)
            held = len(stack.holdback_envelopes)
            pending = self.view_syncs[member]._pending_change
            if missing or held or pending or stack.crashed:
                report.append(
                    f"{member}: missing={len(missing)} held={held} "
                    f"pending_change={pending} crashed={stack.crashed}"
                )
        view = self.group.view
        return Violation(
            "liveness",
            None,
            f"no convergence after {rounds} repair rounds "
            f"(view={view.view_id}:{','.join(view.members)}; "
            + "; ".join(report) + ")",
        )

    # -- auditing ------------------------------------------------------------

    def monitor(self) -> InvariantMonitor:
        return InvariantMonitor(
            self.stacks,
            dependencies=self.dependencies,
            data_labels=self.data_labels,
            view_syncs=self.view_syncs,
            trackers=self.trackers,
            expected_members=self.members,
            check_total_order=self.protocol_name
            in ("lamport_total", "sequencer"),
            sequencer_epochs=self.protocol_name == "sequencer",
            # RST's owed counts are per send-time view member; other
            # protocols' ordering metadata is destination-independent.
            audience=(
                self.audience if self.protocol_name == "rst" else None
            ),
        )

    def check_invariants(self) -> List[Violation]:
        """Run the full safety battery against the cluster's final state."""
        return self.monitor().check_all()
