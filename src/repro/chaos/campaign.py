"""Declarative fault-injection campaigns.

A campaign is a timed script of disturbances — crashes, restarts,
membership churn, partitions, loss/duplication phases — interleaved with
application sends.  :func:`random_campaign` generates seeded random
campaigns that respect the rules under which the repair machinery is
*expected* to restore liveness (see ``docs/ROBUSTNESS.md``):

* at most one member is down at any time (episodes are serialised);
* every crash is paired with a restart, every removal with a rejoin,
  every partition with a heal, every loss/duplication phase with a reset
  — campaigns end with the full group healthy;
* membership changes are not scheduled while another disturbance is in
  flight.

``random_campaign(..., overlap=True)`` relaxes the serialisation rules:
episodes start while earlier ones are still in flight (membership churn
may coincide with an in-flight crash or partition), relying on the
failure detector (:class:`~repro.group.auto_membership.MembershipManager`)
to repair whatever the overlap wedges.  Two rules survive the
relaxation: outages never take the group below two live members, and
every disturbance is still paired with its recovery — campaigns end with
the full group healthy.

The :class:`~repro.chaos.cluster.ChaosCluster` runner executes the
script, then drives repair to convergence and audits every safety
invariant (:mod:`repro.analysis.invariants`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.types import EntityId

#: Disturbance kinds `random_campaign` can draw from.
DISTURBANCES = ("crash", "partition", "loss", "dup", "churn")

_ACTIONS = frozenset(
    ("send", "crash", "restart", "remove", "rejoin",
     "partition", "heal", "loss", "dup",
     # Sharded-mode actions, interpreted by
     # :meth:`repro.shard.cluster.ShardedCluster.run_campaign`: keyed
     # session writes, stable-point barrier reads, slot rebalancing.
     # Fault actions in a sharded campaign carry ``(shard, arg)`` so the
     # runner can dispatch them to the right replication group.
     "op", "read", "rebalance")
)


@dataclass(frozen=True)
class ChaosEvent:
    """One timed action.

    ``action`` is one of:

    ``send``         broadcast an application message from member ``arg``
    ``crash``        crash-stop member ``arg`` (stays in the view)
    ``restart``      restart member ``arg`` (amnesiac rejoin-in-place)
    ``remove``       crash member ``arg`` and propose its removal
    ``rejoin``       propose re-adding member ``arg``; restart it once
                     the join installs
    ``partition``    split the network into groups ``arg`` (tuple of
                     tuples of entity ids)
    ``heal``         remove all partitions
    ``loss``         set the per-hop drop probability to ``arg``
    ``dup``          set the per-hop duplication probability to ``arg``

    Sharded campaigns (:func:`repro.shard.campaign.sharded_campaign`)
    additionally use:

    ``op``           keyed session write: ``arg = (session, key, value)``
    ``read``         stable-point barrier read: ``arg = (session, shards)``
    ``rebalance``    move a slot between groups: ``arg = (slot, dest)``
    """

    time: float
    action: str
    arg: Any = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigurationError(f"unknown chaos action: {self.action!r}")
        if self.time < 0:
            raise ConfigurationError(f"negative event time: {self.time}")


@dataclass(frozen=True)
class ChaosCampaign:
    """A named, ordered script of chaos events."""

    name: str
    events: Tuple[ChaosEvent, ...]
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("campaign duration must be positive")


def random_campaign(
    members: Sequence[EntityId],
    seed: int,
    disturbances: Sequence[str] = DISTURBANCES,
    sends_per_member: int = 6,
    overlap: bool = False,
) -> ChaosCampaign:
    """Generate a seeded random campaign over ``members``.

    By default, disturbance episodes are laid out sequentially (never
    overlapping), each paired with its recovery action; sends are
    sprinkled across the whole timeline, including inside disturbance
    windows — sends from a crashed or flush-frozen member are skipped by
    the runner, which is itself part of what the campaign exercises.

    With ``overlap=True``, the cursor advances only a fraction of each
    episode, so later disturbances land while earlier ones are still in
    flight.  Outage members (crash/churn) are drawn from members not
    already down in the window, and concurrent outages are capped so at
    least two members stay up at any time; if no member fits, the episode
    falls back to serial placement after the in-flight outages end.
    Every disturbance stays paired with its recovery.
    """
    if len(members) < 2:
        raise ConfigurationError("a chaos campaign needs >= 2 members")
    unknown = set(disturbances) - set(DISTURBANCES)
    if unknown:
        raise ConfigurationError(f"unknown disturbances: {sorted(unknown)}")
    rng = random.Random(seed)
    events = []
    kinds = list(disturbances)
    rng.shuffle(kinds)
    cursor = 4.0
    # Outage windows laid so far: (start, end, member).
    down_windows: list = []
    max_down = max(1, len(members) - 2)

    def pick_down_member(start: float, length: float):
        """A member that may go down for [start, start+length), or None."""
        end = start + length
        overlapping = [
            w for w in down_windows if w[0] < end and start < w[1]
        ]
        if len(overlapping) >= max_down:
            return None
        busy = {w[2] for w in overlapping}
        candidates = [m for m in members if m not in busy]
        if not candidates:
            return None
        return rng.choice(candidates)

    def place_outage(length: float):
        """Choose (start, member) for an outage of ``length``."""
        nonlocal cursor
        member = pick_down_member(cursor, length)
        if member is None:
            # No room to overlap: serialise after the in-flight outages.
            cursor = max([w[1] for w in down_windows] + [cursor]) + 1.0
            member = rng.choice(list(members))
        down_windows.append((cursor, cursor + length, member))
        return member

    for kind in kinds:
        if kind == "crash":
            if overlap:
                downtime = rng.uniform(8.0, 14.0)
                member = place_outage(downtime)
            else:
                member = rng.choice(list(members))
                downtime = rng.uniform(8.0, 14.0)
                down_windows.append((cursor, cursor + downtime, member))
            events.append(ChaosEvent(round(cursor, 2), "crash", member))
            events.append(
                ChaosEvent(round(cursor + downtime, 2), "restart", member)
            )
            if overlap:
                cursor += downtime * rng.uniform(0.25, 0.6)
            else:
                cursor += downtime + rng.uniform(5.0, 9.0)
        elif kind == "churn":
            if overlap:
                away = rng.uniform(10.0, 16.0)
                member = place_outage(away)
            else:
                member = rng.choice(list(members))
                away = rng.uniform(10.0, 16.0)
                down_windows.append((cursor, cursor + away, member))
            events.append(ChaosEvent(round(cursor, 2), "remove", member))
            events.append(
                ChaosEvent(round(cursor + away, 2), "rejoin", member)
            )
            if overlap:
                cursor += away * rng.uniform(0.3, 0.7)
            else:
                cursor += away + rng.uniform(10.0, 14.0)
        elif kind == "partition":
            shuffled = list(members)
            rng.shuffle(shuffled)
            cut = rng.randint(1, len(shuffled) - 1)
            groups = (tuple(shuffled[:cut]), tuple(shuffled[cut:]))
            heal_after = rng.uniform(5.0, 9.0)
            events.append(ChaosEvent(round(cursor, 2), "partition", groups))
            events.append(ChaosEvent(round(cursor + heal_after, 2), "heal"))
            if overlap:
                cursor += heal_after * rng.uniform(0.4, 0.8)
            else:
                cursor += heal_after + rng.uniform(5.0, 8.0)
        elif kind == "loss":
            phase = rng.uniform(8.0, 12.0)
            events.append(ChaosEvent(
                round(cursor, 2), "loss", round(rng.uniform(0.05, 0.25), 3)
            ))
            events.append(ChaosEvent(round(cursor + phase, 2), "loss", 0.0))
            if overlap:
                cursor += phase * rng.uniform(0.3, 0.7)
            else:
                cursor += phase + rng.uniform(4.0, 7.0)
        elif kind == "dup":
            phase = rng.uniform(6.0, 10.0)
            events.append(ChaosEvent(
                round(cursor, 2), "dup", round(rng.uniform(0.1, 0.3), 3)
            ))
            events.append(ChaosEvent(round(cursor + phase, 2), "dup", 0.0))
            if overlap:
                cursor += phase * rng.uniform(0.3, 0.7)
            else:
                cursor += phase + rng.uniform(4.0, 7.0)
    tail = max([cursor] + [event.time for event in events])
    duration = tail + 8.0
    for _ in range(sends_per_member * len(members)):
        when = round(rng.uniform(0.5, duration - 6.0), 2)
        events.append(ChaosEvent(when, "send", rng.choice(list(members))))
    ordered = tuple(
        event
        for _, _, event in sorted(
            (event.time, index, event) for index, event in enumerate(events)
        )
    )
    name = f"overlap-{seed}" if overlap else f"random-{seed}"
    return ChaosCampaign(name=name, events=ordered, duration=duration)
