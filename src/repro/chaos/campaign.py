"""Declarative fault-injection campaigns.

A campaign is a timed script of disturbances — crashes, restarts,
membership churn, partitions, loss/duplication phases — interleaved with
application sends.  :func:`random_campaign` generates seeded random
campaigns that respect the rules under which the repair machinery is
*expected* to restore liveness (see ``docs/ROBUSTNESS.md``):

* at most one member is down at any time (episodes are serialised);
* every crash is paired with a restart, every removal with a rejoin,
  every partition with a heal, every loss/duplication phase with a reset
  — campaigns end with the full group healthy;
* membership changes are not scheduled while another disturbance is in
  flight (a flush blocked on a crashed member that nobody proposes to
  remove is a documented limitation, not a bug).

The :class:`~repro.chaos.cluster.ChaosCluster` runner executes the
script, then drives repair to convergence and audits every safety
invariant (:mod:`repro.analysis.invariants`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.types import EntityId

#: Disturbance kinds `random_campaign` can draw from.
DISTURBANCES = ("crash", "partition", "loss", "dup", "churn")

_ACTIONS = frozenset(
    ("send", "crash", "restart", "remove", "rejoin",
     "partition", "heal", "loss", "dup")
)


@dataclass(frozen=True)
class ChaosEvent:
    """One timed action.

    ``action`` is one of:

    ``send``         broadcast an application message from member ``arg``
    ``crash``        crash-stop member ``arg`` (stays in the view)
    ``restart``      restart member ``arg`` (amnesiac rejoin-in-place)
    ``remove``       crash member ``arg`` and propose its removal
    ``rejoin``       propose re-adding member ``arg``; restart it once
                     the join installs
    ``partition``    split the network into groups ``arg`` (tuple of
                     tuples of entity ids)
    ``heal``         remove all partitions
    ``loss``         set the per-hop drop probability to ``arg``
    ``dup``          set the per-hop duplication probability to ``arg``
    """

    time: float
    action: str
    arg: Any = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigurationError(f"unknown chaos action: {self.action!r}")
        if self.time < 0:
            raise ConfigurationError(f"negative event time: {self.time}")


@dataclass(frozen=True)
class ChaosCampaign:
    """A named, ordered script of chaos events."""

    name: str
    events: Tuple[ChaosEvent, ...]
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("campaign duration must be positive")


def random_campaign(
    members: Sequence[EntityId],
    seed: int,
    disturbances: Sequence[str] = DISTURBANCES,
    sends_per_member: int = 6,
) -> ChaosCampaign:
    """Generate a seeded random campaign over ``members``.

    Disturbance episodes are laid out sequentially (never overlapping),
    each paired with its recovery action; sends are sprinkled across the
    whole timeline, including inside disturbance windows — sends from a
    crashed or flush-frozen member are skipped by the runner, which is
    itself part of what the campaign exercises.
    """
    if len(members) < 2:
        raise ConfigurationError("a chaos campaign needs >= 2 members")
    unknown = set(disturbances) - set(DISTURBANCES)
    if unknown:
        raise ConfigurationError(f"unknown disturbances: {sorted(unknown)}")
    rng = random.Random(seed)
    events = []
    kinds = list(disturbances)
    rng.shuffle(kinds)
    cursor = 4.0
    for kind in kinds:
        if kind == "crash":
            member = rng.choice(list(members))
            downtime = rng.uniform(8.0, 14.0)
            events.append(ChaosEvent(round(cursor, 2), "crash", member))
            events.append(
                ChaosEvent(round(cursor + downtime, 2), "restart", member)
            )
            cursor += downtime + rng.uniform(5.0, 9.0)
        elif kind == "churn":
            member = rng.choice(list(members))
            away = rng.uniform(10.0, 16.0)
            events.append(ChaosEvent(round(cursor, 2), "remove", member))
            events.append(
                ChaosEvent(round(cursor + away, 2), "rejoin", member)
            )
            cursor += away + rng.uniform(10.0, 14.0)
        elif kind == "partition":
            shuffled = list(members)
            rng.shuffle(shuffled)
            cut = rng.randint(1, len(shuffled) - 1)
            groups = (tuple(shuffled[:cut]), tuple(shuffled[cut:]))
            heal_after = rng.uniform(5.0, 9.0)
            events.append(ChaosEvent(round(cursor, 2), "partition", groups))
            events.append(ChaosEvent(round(cursor + heal_after, 2), "heal"))
            cursor += heal_after + rng.uniform(5.0, 8.0)
        elif kind == "loss":
            phase = rng.uniform(8.0, 12.0)
            events.append(ChaosEvent(
                round(cursor, 2), "loss", round(rng.uniform(0.05, 0.25), 3)
            ))
            events.append(ChaosEvent(round(cursor + phase, 2), "loss", 0.0))
            cursor += phase + rng.uniform(4.0, 7.0)
        elif kind == "dup":
            phase = rng.uniform(6.0, 10.0)
            events.append(ChaosEvent(
                round(cursor, 2), "dup", round(rng.uniform(0.1, 0.3), 3)
            ))
            events.append(ChaosEvent(round(cursor + phase, 2), "dup", 0.0))
            cursor += phase + rng.uniform(4.0, 7.0)
    duration = cursor + 8.0
    for _ in range(sends_per_member * len(members)):
        when = round(rng.uniform(0.5, duration - 6.0), 2)
        events.append(ChaosEvent(when, "send", rng.choice(list(members))))
    ordered = tuple(
        event
        for _, _, event in sorted(
            (event.time, index, event) for index, event in enumerate(events)
        )
    )
    return ChaosCampaign(
        name=f"random-{seed}", events=ordered, duration=duration
    )
