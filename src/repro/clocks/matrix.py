"""Matrix clocks.

A matrix clock at entity *i* records, for every pair *(j, k)*, how many
events of *k* entity *i* knows that *j* knows about.  The row for *i*
itself is *i*'s vector clock.  Matrix clocks give each member an estimate
of *global* knowledge, which supports garbage collection of delivered
messages (a message every member is known to have seen can be discarded)
and is the metadata the Raynal-Schiper-Toueg causal-order algorithm
carries.

Used here for the metadata-overhead ablation (``bench_proto_overhead``):
matrix clocks cost O(n²) entries versus O(n) for vector clocks versus
O(direct dependencies) for the paper's explicit graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.clocks.vector import VectorClock
from repro.types import EntityId


class MatrixClock:
    """Immutable mapping ``row_entity -> VectorClock``."""

    __slots__ = ("_rows",)

    def __init__(
        self, rows: Mapping[EntityId, VectorClock] | None = None
    ) -> None:
        self._rows: Dict[EntityId, VectorClock] = {
            e: vc for e, vc in (rows or {}).items() if vc.size_entries()
        }

    @classmethod
    def zero(cls) -> "MatrixClock":
        return cls()

    # -- access ----------------------------------------------------------

    def row(self, entity: EntityId) -> VectorClock:
        """The vector clock this matrix attributes to ``entity``."""
        return self._rows.get(entity, VectorClock.zero())

    def rows(self) -> Iterable[EntityId]:
        return self._rows.keys()

    def size_entries(self) -> int:
        """Total non-zero entries (metadata size proxy)."""
        return sum(vc.size_entries() for vc in self._rows.values())

    # -- updates ----------------------------------------------------------

    def record_event(self, entity: EntityId) -> "MatrixClock":
        """Advance ``entity``'s own row for a local event at ``entity``."""
        rows = dict(self._rows)
        rows[entity] = self.row(entity).increment(entity)
        return MatrixClock(rows)

    def merge(self, other: "MatrixClock") -> "MatrixClock":
        """Rowwise vector-clock join."""
        rows = dict(self._rows)
        for entity in other._rows:
            rows[entity] = self.row(entity).merge(other.row(entity))
        return MatrixClock(rows)

    def receive_at(
        self,
        receiver: EntityId,
        sender: EntityId,
        sender_matrix: "MatrixClock",
    ) -> "MatrixClock":
        """Update for ``receiver`` absorbing a message from ``sender``
        carrying ``sender_matrix``: merge all rows (third-party knowledge),
        then join the receiver's own row with the *sender's* row — the
        receiver now directly knows everything the sender knew."""
        merged = self.merge(sender_matrix)
        rows = dict(merged._rows)
        rows[receiver] = merged.row(receiver).merge(
            sender_matrix.row(sender)
        )
        return MatrixClock(rows)

    # -- queries ----------------------------------------------------------

    def min_known(self, entity: EntityId, members: Iterable[EntityId]) -> int:
        """The smallest count of ``entity``'s events known at any member.

        Messages from ``entity`` with sequence number <= this value have
        been seen by *all* ``members`` (as far as this matrix knows) and
        can be garbage-collected.
        """
        members = list(members)
        if not members:
            return 0
        return min(self.row(m)[entity] for m in members)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatrixClock):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(frozenset(self._rows.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = "; ".join(f"{e}->{vc!r}" for e, vc in sorted(self._rows.items()))
        return f"MC({inner})"
