"""Lamport scalar clocks.

The paper's '≺' is "basically Lamport's happens-before relation on
externally observed events" (Section 2.1, citing [6]).  Scalar clocks give
a total order *consistent with* causality and are the basis of the
:class:`~repro.broadcast.lamport_total.LamportTotalOrder` baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import EntityId


@dataclass(frozen=True, order=True)
class Timestamp:
    """A Lamport timestamp with entity-id tiebreak.

    Ordering is lexicographic on ``(counter, entity)``, which yields the
    classic total order consistent with happens-before: if event *a*
    happens-before event *b* then ``a.stamp < b.stamp`` (never the reverse),
    and concurrent events are ordered deterministically by entity id.
    """

    counter: int
    entity: EntityId


class LamportClock:
    """A per-entity scalar logical clock."""

    def __init__(self, entity: EntityId, start: int = 0) -> None:
        self.entity = entity
        self._counter = int(start)

    @property
    def counter(self) -> int:
        return self._counter

    def tick(self) -> Timestamp:
        """Advance for a local event (e.g. a send); return the new stamp."""
        self._counter += 1
        return Timestamp(self._counter, self.entity)

    def observe(self, other: Timestamp) -> Timestamp:
        """Merge a received stamp: ``c := max(c, other) + 1``."""
        self._counter = max(self._counter, other.counter) + 1
        return Timestamp(self._counter, self.entity)

    def peek(self) -> Timestamp:
        """Current stamp without advancing."""
        return Timestamp(self._counter, self.entity)
