"""Vector clocks and the CBCAST causal-delivery predicate.

Vector clocks represent causality *exactly*: ``u < v`` iff the event
stamped ``u`` happens-before the event stamped ``v``.  They are the
metadata carried by the ISIS CBCAST protocol [Birman, Schiper & Stephenson
1991], which the paper uses as the clock-based point of comparison for its
explicit-graph ``OSend`` primitive (Section 3.2).

The implementation is immutable: operations return new clocks.  Entities
absent from a clock implicitly have component 0, so clocks over different
member sets compare sensibly during membership change.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.types import EntityId


class VectorClock:
    """An immutable mapping ``entity -> count`` with causal comparisons."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[EntityId, int] | None = None) -> None:
        # Zero components are normalised away so equal clocks hash equal.
        self._counts: Dict[EntityId, int] = {
            e: int(c) for e, c in (counts or {}).items() if c
        }

    # -- construction -----------------------------------------------------

    @classmethod
    def zero(cls) -> "VectorClock":
        return cls()

    def increment(self, entity: EntityId) -> "VectorClock":
        """Return a copy with ``entity``'s component advanced by one."""
        counts = dict(self._counts)
        counts[entity] = counts.get(entity, 0) + 1
        return VectorClock(counts)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Componentwise maximum (join in the clock lattice)."""
        counts = dict(self._counts)
        for entity, count in other._counts.items():
            if count > counts.get(entity, 0):
                counts[entity] = count
        return VectorClock(counts)

    # -- access ----------------------------------------------------------

    def __getitem__(self, entity: EntityId) -> int:
        return self._counts.get(entity, 0)

    def entities(self) -> Iterable[EntityId]:
        return self._counts.keys()

    def items(self) -> Iterator[Tuple[EntityId, int]]:
        return iter(self._counts.items())

    def as_dict(self) -> Dict[EntityId, int]:
        return dict(self._counts)

    def size_entries(self) -> int:
        """Number of non-zero components (metadata size proxy)."""
        return len(self._counts)

    # -- comparisons ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __le__(self, other: "VectorClock") -> bool:
        """True iff every component of self is <= other's."""
        return all(
            count <= other._counts.get(entity, 0)
            for entity, count in self._counts.items()
        )

    def __lt__(self, other: "VectorClock") -> bool:
        """Strict causal precedence: ``self <= other`` and not equal."""
        return self != other and self <= other

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock causally precedes the other (the paper's ‖)."""
        return not self <= other and not other <= self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{e}:{c}" for e, c in sorted(self._counts.items())
        )
        return f"VC({inner})"


def cbcast_deliverable(
    msg_clock: VectorClock, sender: EntityId, local_clock: VectorClock
) -> bool:
    """The CBCAST causal-delivery predicate (BSS 1991).

    A message broadcast by ``sender`` carrying ``msg_clock`` (the sender's
    clock *after* incrementing its own component for the send) may be
    delivered at a receiver whose delivered-state clock is ``local_clock``
    iff:

    1. ``msg_clock[sender] == local_clock[sender] + 1`` — it is the next
       broadcast from that sender (FIFO from each sender), and
    2. ``msg_clock[e] <= local_clock[e]`` for every other entity ``e`` —
       every broadcast the sender had seen before sending has already been
       delivered here.
    """
    if msg_clock[sender] != local_clock[sender] + 1:
        return False
    return all(
        count <= local_clock[entity]
        for entity, count in msg_clock.items()
        if entity != sender
    )
