"""Logical clocks: Lamport scalar, vector, and matrix clocks."""

from repro.clocks.lamport import LamportClock, Timestamp
from repro.clocks.matrix import MatrixClock
from repro.clocks.vector import VectorClock, cbcast_deliverable

__all__ = [
    "LamportClock",
    "MatrixClock",
    "Timestamp",
    "VectorClock",
    "cbcast_deliverable",
]
