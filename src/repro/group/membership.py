"""Group membership and views.

The paper realises causal broadcasting "by organizing various entities as
members of a group, and sending every message ... to all the members"
(Section 3).  :class:`GroupView` is an immutable snapshot of the membership
(with a monotonically increasing view id, as in virtual synchrony);
:class:`GroupMembership` manages the current view and notifies listeners of
view changes so protocols can adjust (e.g. drop hold-back entries that wait
on a departed member).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, Iterator, List, Tuple

from repro.errors import MembershipError
from repro.types import EntityId


@dataclass(frozen=True)
class GroupView:
    """Immutable membership snapshot.

    ``members`` is ordered (a tuple) so deterministic algorithms — like the
    arbitration sequence of the lock protocol in Section 6.2 — can rely on
    a ranking shared by every member.
    """

    view_id: int
    members: Tuple[EntityId, ...]

    def __post_init__(self) -> None:
        if len(set(self.members)) != len(self.members):
            raise MembershipError("duplicate members in view")

    def __contains__(self, entity: EntityId) -> bool:
        return entity in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[EntityId]:
        return iter(self.members)

    def rank(self, entity: EntityId) -> int:
        """Position of ``entity`` in the deterministic member ordering."""
        try:
            return self.members.index(entity)
        except ValueError:
            raise MembershipError(f"{entity!r} not in view {self.view_id}") from None

    def successor(self, entity: EntityId) -> EntityId:
        """The next member in rank order, wrapping around."""
        rank = self.rank(entity)
        return self.members[(rank + 1) % len(self.members)]

    def as_set(self) -> FrozenSet[EntityId]:
        return frozenset(self.members)


ViewListener = Callable[[GroupView], None]


class GroupMembership:
    """Mutable view manager with change notification."""

    def __init__(self, members: Iterable[EntityId]) -> None:
        initial = tuple(members)
        if not initial:
            raise MembershipError("a group needs at least one member")
        self._view = GroupView(0, initial)
        self._listeners: List[ViewListener] = []

    @property
    def view(self) -> GroupView:
        return self._view

    @property
    def members(self) -> Tuple[EntityId, ...]:
        return self._view.members

    def subscribe(self, listener: ViewListener) -> None:
        """Invoke ``listener`` with each new view after it is installed."""
        self._listeners.append(listener)

    # -- changes ------------------------------------------------------------

    def join(self, entity: EntityId) -> GroupView:
        """Install a new view with ``entity`` appended."""
        if entity in self._view:
            raise MembershipError(f"{entity!r} is already a member")
        return self._install(self._view.members + (entity,))

    def leave(self, entity: EntityId) -> GroupView:
        """Install a new view without ``entity``."""
        if entity not in self._view:
            raise MembershipError(f"{entity!r} is not a member")
        remaining = tuple(m for m in self._view.members if m != entity)
        if not remaining:
            raise MembershipError("cannot remove the last member")
        return self._install(remaining)

    def _install(self, members: Tuple[EntityId, ...]) -> GroupView:
        self._view = GroupView(self._view.view_id + 1, members)
        for listener in self._listeners:
            listener(self._view)
        return self._view
