"""View-synchronous membership change (flush protocol).

The paper's model assumes a group substrate in which "members can
deterministically process messages ... and have the same view of
application level state at every distinct point in logical time"
(Section 3).  When membership changes, that requires *view synchrony*:
every message broadcast in the old view is delivered at every surviving
member **before** the new view takes effect, so the view change is itself
a synchronization point.

The flush protocol here is the classic one:

1. any member proposes a change by broadcasting ``VCHG(change)``;
2. on delivering the proposal, each member **freezes** its application
   sending and waits for its hold-back queue to drain;
3. once drained, it broadcasts ``FLUSH_OK`` carrying a *digest* of every
   old-view application label it knows exists (delivered, held, or sent
   by itself) — senders always know their own broadcasts, so the union
   of all digests covers the complete old-view traffic;
4. when a member has collected ``FLUSH_OK`` from every old-view member
   *and* has itself delivered the digest union, it installs the new
   view, unfreezes, and notifies listeners.

Step 4's delivery condition is what makes the change view-synchronous:
every member delivers exactly the same old-view message set before the
new view, even for messages still in flight when the flush began.

Control traffic flows through the chassis interceptor chain like the
recovery layer's, so it composes with every ordering protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import MembershipError, ProtocolError

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.broadcast.base import BroadcastProtocol
from repro.group.membership import GroupView
from repro.types import Envelope, EntityId, Message, MessageIdAllocator

VCHG_OPERATION = "__vchg__"
FLUSH_OK_OPERATION = "__flushok__"


@dataclass(frozen=True)
class ViewChange:
    """A proposed membership change."""

    kind: str  # "join" | "leave"
    entity: EntityId
    old_view_id: int

    def __post_init__(self) -> None:
        if self.kind not in ("join", "leave"):
            raise ProtocolError(f"unknown view-change kind: {self.kind}")


InstallListener = Callable[[GroupView], None]


class ViewSyncAgent:
    """Runs the flush protocol for one member.

    All members of a simulated group share one
    :class:`~repro.group.membership.GroupMembership`; the *first* agent to
    complete the flush installs the change there (subsequent completions
    see it already applied).  What the protocol guarantees — and the tests
    verify — is the view-synchrony property: at installation, every
    member's delivered set for the old view is identical.
    """

    def __init__(
        self,
        protocol: "BroadcastProtocol",
        drain_poll_interval: float = 0.5,
        flush_resend_interval: float = 3.0,
        max_flush_resends: int = 25,
    ) -> None:
        self.protocol = protocol
        self.drain_poll_interval = drain_poll_interval
        self.flush_resend_interval = flush_resend_interval
        self.max_flush_resends = max_flush_resends
        self._allocator = MessageIdAllocator(f"{protocol.entity_id}!vs")
        self.frozen = False
        self._pending_change: Optional[ViewChange] = None
        self._flush_acks: Set[EntityId] = set()
        self._digests: Dict[EntityId, frozenset] = {}
        self._old_members: Tuple[EntityId, ...] = ()
        self._sent_flush_ok = False
        self._listeners: List[InstallListener] = []
        self.changes_installed = 0
        # Delivered-set snapshot taken when we sent FLUSH_OK (diagnostics).
        self.flush_snapshot: Optional[frozenset] = None
        protocol.add_interceptor(self)
        # Event-driven install check: the digest union may only become
        # delivered later (e.g. repaired by the recovery layer), so every
        # delivery re-checks instead of an open-ended poll timer.
        protocol.on_deliver(lambda _envelope: self._try_install())

    # -- API --------------------------------------------------------------

    def on_install(self, listener: InstallListener) -> None:
        self._listeners.append(listener)

    def propose(self, kind: str, entity: EntityId) -> None:
        """Propose a membership change to the group."""
        if self._pending_change is not None:
            raise ProtocolError("a view change is already in progress")
        view = self.protocol.group.view
        if kind == "join" and entity in view:
            raise MembershipError(f"{entity!r} is already a member")
        if kind == "leave" and entity not in view:
            raise MembershipError(f"{entity!r} is not a member")
        change = ViewChange(kind, entity, view.view_id)
        message = Message(self._allocator.next_id(), VCHG_OPERATION, change)
        self.protocol.network.broadcast(
            self.protocol.entity_id, Envelope(message)
        )

    def guard_send(self) -> None:
        """Raise if application sends are frozen mid-flush.

        Applications integrate by calling this before ``bcast``; see
        :func:`attach_view_sync`.
        """
        if self.frozen:
            raise ProtocolError(
                f"{self.protocol.entity_id}: sends are frozen during a "
                "view change flush"
            )

    # -- control plane ------------------------------------------------------

    def intercept(self, sender: EntityId, envelope: Envelope) -> bool:
        operation = envelope.message.operation
        if operation == VCHG_OPERATION:
            self._on_proposal(envelope.message.payload)
            return True
        if operation == FLUSH_OK_OPERATION:
            self._on_flush_ok(envelope.message.payload)
            return True
        return False

    def _on_proposal(self, change: ViewChange) -> None:
        current = self.protocol.group.view
        if change.old_view_id != current.view_id:
            return  # stale proposal for an already-changed view
        if self._pending_change is not None:
            return  # already flushing this change
        self._pending_change = change
        self._old_members = current.members
        self._flush_acks = set()
        self._digests = {}
        self._sent_flush_ok = False
        self.frozen = True
        self._poll_drained()

    def _known_labels(self) -> frozenset:
        """Every application label this member knows exists."""
        return frozenset(self.protocol._seen) | frozenset(
            self.protocol._envelopes_by_id
        )

    def _poll_drained(self) -> None:
        if self._pending_change is None or self._sent_flush_ok:
            return
        if self.protocol.holdback_size == 0:
            self._sent_flush_ok = True
            self._send_flush_ok(resends_left=self.max_flush_resends)
            return
        self.protocol.scheduler.call_in(
            self.drain_poll_interval, self._poll_drained
        )

    def _send_flush_ok(self, resends_left: int) -> None:
        """Broadcast FLUSH_OK, re-broadcasting until the change installs.

        FLUSH_OK is control traffic outside the ordering protocol's
        repair store, so a lossy network can eat it; the digest payload
        is idempotent, so bounded re-broadcast is the simple cure.
        """
        if self._pending_change is None:
            return  # installed meanwhile
        message = Message(
            self._allocator.next_id(),
            FLUSH_OK_OPERATION,
            (
                self.protocol.entity_id,
                self._pending_change,
                self._known_labels(),
            ),
        )
        self.protocol.network.broadcast(
            self.protocol.entity_id, Envelope(message)
        )
        if resends_left > 0:
            self.protocol.scheduler.call_in(
                self.flush_resend_interval,
                self._send_flush_ok,
                resends_left - 1,
            )

    def _on_flush_ok(
        self, payload: Tuple[EntityId, ViewChange, frozenset]
    ) -> None:
        member, change, digest = payload
        if self._pending_change is None:
            # We may receive FLUSH_OKs before the proposal (reordering):
            # process the proposal implicitly first.
            self._on_proposal(change)
        if self._pending_change != change:
            return
        self._flush_acks.add(member)
        self._digests[member] = digest
        self._try_install()

    def _required_ackers(self) -> Set[EntityId]:
        """Old-view members whose FLUSH_OK we must collect.

        A member being removed is presumed unable to participate (the
        common reason for removal is a crash), so it is excluded — the
        survivors' digests still cover everything they can ever deliver.
        """
        assert self._pending_change is not None
        required = set(self._old_members)
        if self._pending_change.kind == "leave":
            required.discard(self._pending_change.entity)
        return required

    def _try_install(self) -> None:
        if self._pending_change is None:
            return
        if not self._required_ackers() <= self._flush_acks:
            return
        target: Set = set()
        for digest in self._digests.values():
            target |= digest
        delivered = set(self.protocol.delivered)
        if not target <= delivered:
            # Old-view traffic still in flight (or being repaired by the
            # recovery layer); the per-delivery hook re-checks when it
            # lands.
            return
        self.flush_snapshot = frozenset(delivered)
        self._install()

    def _install(self) -> None:
        change = self._pending_change
        assert change is not None
        membership = self.protocol.group
        if membership.view.view_id == change.old_view_id:
            # First completed agent applies the (shared) change.
            if change.kind == "join":
                membership.join(change.entity)
            else:
                membership.leave(change.entity)
        view = membership.view
        self._pending_change = None
        self._flush_acks = set()
        self.frozen = False
        self.changes_installed += 1
        for listener in self._listeners:
            listener(view)


def attach_view_sync(
    protocols: Dict[EntityId, "BroadcastProtocol"],
    drain_poll_interval: float = 0.5,
) -> Dict[EntityId, ViewSyncAgent]:
    """One agent per stack, with sends guarded during flushes."""
    agents = {}
    for entity, protocol in protocols.items():
        agent = ViewSyncAgent(protocol, drain_poll_interval)
        agents[entity] = agent
        original_bcast = protocol.bcast

        def guarded(operation, payload=None, _agent=agent, _orig=original_bcast, **options):
            _agent.guard_send()
            return _orig(operation, payload, **options)

        protocol.bcast = guarded  # type: ignore[method-assign]
    return agents
