"""View-synchronous membership change (flush protocol).

The paper's model assumes a group substrate in which "members can
deterministically process messages ... and have the same view of
application level state at every distinct point in logical time"
(Section 3).  When membership changes, that requires *view synchrony*:
every message broadcast in the old view is delivered at every surviving
member **before** the new view takes effect, so the view change is itself
a synchronization point.

The flush protocol here is the classic one:

1. any member proposes a change by broadcasting ``VCHG(change)``;
2. on delivering the proposal, each member **freezes** its application
   sending and waits for its hold-back queue to drain;
3. once drained, it broadcasts ``FLUSH_OK`` carrying a *digest* of every
   old-view application label it knows exists (delivered, held, or sent
   by itself) — senders always know their own broadcasts, so the union
   of all digests covers the complete old-view traffic;
4. when a member has collected ``FLUSH_OK`` from every old-view member
   *and* has itself settled the digest union, it installs the new
   view, unfreezes, and notifies listeners.

Step 4's delivery condition is what makes the change view-synchronous:
every member delivers exactly the same old-view message set before the
new view, even for messages still in flight when the flush began.

Concurrent proposals for the *same* old view are serialised by a
deterministic tie-break (:meth:`ViewSyncAgent._priority`): every member
flushes the same winner first and re-proposes the losers against the new
view after installation.  Without the tie-break, two members that each
adopted "their" change first would wait forever for each other's
FLUSH_OK — the deadlock pinned by
``test_concurrent_proposals_converge`` in ``tests/group/test_view_sync.py``.

Control traffic flows through the chassis interceptor chain like the
recovery layer's, so it composes with every ordering protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import MembershipError, ProtocolError

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.broadcast.base import BroadcastProtocol
from repro.group.membership import GroupView
from repro.types import Envelope, EntityId, Message, MessageIdAllocator

VCHG_OPERATION = "__vchg__"
FLUSH_OK_OPERATION = "__flushok__"


@dataclass(frozen=True)
class ViewChange:
    """A proposed membership change."""

    kind: str  # "join" | "leave"
    entity: EntityId
    old_view_id: int

    def __post_init__(self) -> None:
        if self.kind not in ("join", "leave"):
            raise ProtocolError(f"unknown view-change kind: {self.kind}")


@dataclass(frozen=True)
class InstallRecord:
    """Audit trail of one installed view (for the invariant monitor).

    ``snapshot`` is the member's settled label set (delivered plus
    stable-prefix skips) at install time; view synchrony requires
    ``digest_union <= snapshot``.
    """

    view_id: int
    change: ViewChange
    snapshot: frozenset
    digest_union: frozenset
    incarnation: int
    time: float
    #: How long this member was frozen before the install (from first
    #: adopting a proposal for the old view to installation) — the
    #: flush-unblock latency the chaos report aggregates.
    flush_duration: float = 0.0


InstallListener = Callable[[GroupView], None]


class ViewSyncAgent:
    """Runs the flush protocol for one member.

    All members of a simulated group share one
    :class:`~repro.group.membership.GroupMembership`; the *first* agent to
    complete the flush installs the change there (subsequent completions
    see it already applied).  What the protocol guarantees — and the tests
    verify — is the view-synchrony property: at installation, every
    member's settled set for the old view covers the digest union.
    """

    def __init__(
        self,
        protocol: "BroadcastProtocol",
        flush_resend_interval: float = 3.0,
        max_flush_resends: int = 25,
    ) -> None:
        self.protocol = protocol
        self.flush_resend_interval = flush_resend_interval
        self.max_flush_resends = max_flush_resends
        self._allocator = MessageIdAllocator(f"{protocol.entity_id}!vs")
        self.frozen = False
        self._pending_change: Optional[ViewChange] = None
        # Same-view proposals that lost the tie-break; re-proposed against
        # the new view after the winner installs.
        self._deferred: List[ViewChange] = []
        self._flush_acks: Set[EntityId] = set()
        self._digests: Dict[EntityId, frozenset] = {}
        self._old_members: Tuple[EntityId, ...] = ()
        self._sent_flush_ok = False
        self._listeners: List[InstallListener] = []
        self.changes_installed = 0
        # Delivered-set snapshot taken at install time (diagnostics).
        self.flush_snapshot: Optional[frozenset] = None
        # When this member first froze for the currently pending flush
        # chain (rival adoptions keep the original start time).
        self._flush_started: Optional[float] = None
        # Durable audit log: survives restarts so post-mortem invariant
        # checks can reconstruct what each incarnation installed.
        self.install_history: List[InstallRecord] = []
        protocol.add_interceptor(self)
        # Event-driven flush progress: the hold-back queue shrinks only on
        # delivery or stable-prefix skip, and the digest union likewise
        # only becomes settled through those events, so both checks hang
        # off them.  A poll timer here would re-arm forever while a flush
        # is blocked on in-flight repair, livelocking any run-to-quiescence
        # driver (the scheduler's queue would never empty).
        protocol.on_deliver(lambda _envelope: self._on_progress())
        # The membership object is shared across the simulated group, so a
        # peer completing the flush first advances our view out from under
        # a still-pending change; finalize it instead of waiting forever
        # for FLUSH_OK re-broadcasts the installers have stopped sending.
        protocol.group.subscribe(self._on_view_installed)

    # -- API --------------------------------------------------------------

    def on_install(self, listener: InstallListener) -> None:
        self._listeners.append(listener)

    def propose(self, kind: str, entity: EntityId, force: bool = False) -> None:
        """Propose a membership change to the group.

        With ``force=True`` a proposal is broadcast even while another
        change is in flight: concurrent same-view proposals are exactly
        what the deterministic tie-break serialises, and a failure
        detector *must* be able to inject a ``leave`` into a flush that is
        stuck waiting on the crashed member (leaves win the tie-break, so
        the removal flushes first and unblocks the rest).
        """
        if self._pending_change is not None and not force:
            raise ProtocolError("a view change is already in progress")
        view = self.protocol.group.view
        if kind == "join" and entity in view:
            raise MembershipError(f"{entity!r} is already a member")
        if kind == "leave" and entity not in view:
            raise MembershipError(f"{entity!r} is not a member")
        change = ViewChange(kind, entity, view.view_id)
        message = Message(self._allocator.next_id(), VCHG_OPERATION, change)
        self.protocol.network.broadcast(
            self.protocol.entity_id, Envelope(message)
        )

    def nudge(self) -> None:
        """Re-broadcast the pending proposal to restart a wedged flush.

        A flush can stall forever if a participant crashed mid-flush and
        lost its pending state on restart (it no longer knows a flush is
        running, so it never sends FLUSH_OK) after the bounded FLUSH_OK
        re-broadcasts of the others were exhausted.  Re-announcing the
        pending VCHG is idempotent — members already flushing treat the
        duplicate as a FLUSH_OK re-send prompt (see `_on_proposal`), and
        the amnesiac member adopts the change afresh and flushes.
        """
        change = self._pending_change
        if change is None or self.protocol.crashed:
            return
        message = Message(self._allocator.next_id(), VCHG_OPERATION, change)
        self.protocol.network.broadcast(
            self.protocol.entity_id, Envelope(message)
        )

    def guard_send(self) -> None:
        """Raise if application sends are frozen mid-flush.

        Applications integrate by calling this before ``bcast``; see
        :func:`attach_view_sync`.
        """
        if self.frozen:
            raise ProtocolError(
                f"{self.protocol.entity_id}: sends are frozen during a "
                "view change flush"
            )

    # -- control plane ------------------------------------------------------

    def intercept(self, sender: EntityId, envelope: Envelope) -> bool:
        operation = envelope.message.operation
        if operation == VCHG_OPERATION:
            self._on_proposal(envelope.message.payload)
            return True
        if operation == FLUSH_OK_OPERATION:
            self._on_flush_ok(envelope.message.payload)
            return True
        return False

    def _on_proposal(self, change: ViewChange) -> None:
        self._consider(change)
        if change == self._pending_change and self._sent_flush_ok:
            # A duplicate announcement of the change we already flushed
            # for means someone is still missing our FLUSH_OK (e.g. a
            # `nudge` on behalf of a restarted participant after our
            # bounded re-sends ran out).  Answer with exactly one re-send
            # here — NOT in `_consider`, which `_on_flush_ok` also calls:
            # that would turn every FLUSH_OK receipt into a re-broadcast
            # storm.
            self._send_flush_ok(change, resends_left=0)

    @staticmethod
    def _priority(change: ViewChange) -> Tuple[int, EntityId]:
        """Total order over same-view proposals; the minimum wins.

        Leaves beat joins — removing a (presumed crashed) member is what
        unblocks a stuck flush, so it must never queue behind a join —
        and ties break on the lowest affected entity.  Every member
        computes the same winner from the same candidate set, so
        concurrent proposals converge on one flush instead of deadlocking
        on each other's FLUSH_OK.
        """
        return (0 if change.kind == "leave" else 1, change.entity)

    def _consider(self, change: ViewChange) -> None:
        current = self.protocol.group.view
        if change.old_view_id != current.view_id:
            return  # stale proposal for an already-changed view
        if self.protocol.entity_id not in current.members:
            # Not an old-view member (e.g. the entity being joined, or a
            # crashed member that restarted out of the group): flushes are
            # among old-view members only.
            return
        if change.kind == "leave" and len(current.members) == 1:
            # Refusing to empty the group: cascaded detector removals can
            # shrink the view to one member while a leave for it is still
            # in flight (e.g. mutual suspicion across a partition).  The
            # last member stays; every member computes the same refusal
            # from the same (change, view) pair, so nobody flushes for it.
            return
        if change == self._pending_change or change in self._deferred:
            return
        if self._pending_change is None:
            self._adopt(change)
        elif self._priority(change) < self._priority(self._pending_change):
            # A higher-priority rival: shelve the current flush target and
            # restart the flush for the winner (acks and digests are
            # per-change, so none of the collected state carries over).
            self._defer(self._pending_change)
            self._adopt(change)
        else:
            self._defer(change)

    def _adopt(self, change: ViewChange) -> None:
        self._pending_change = change
        self._old_members = self.protocol.group.view.members
        self._flush_acks = set()
        self._digests = {}
        self._sent_flush_ok = False
        self.frozen = True
        if self._flush_started is None:
            self._flush_started = self.protocol.now
        self._check_drained()

    def _defer(self, change: ViewChange) -> None:
        if change not in self._deferred:
            self._deferred.append(change)

    def _known_labels(self) -> frozenset:
        """Every application label this member knows exists."""
        return frozenset(self.protocol._seen) | frozenset(
            self.protocol._envelopes_by_id
        )

    def _on_progress(self) -> None:
        """Re-check flush progress after a delivery or stable-skip."""
        self._check_drained()
        self._try_install()
        self._finalize_if_stale()

    def on_stable_skip(self, origin: EntityId, frontier: int) -> None:
        # Interceptor hook: a stable-prefix skip can settle labels (and
        # empty the hold-back queue) without any delivery firing.
        self._on_progress()

    def _check_drained(self) -> None:
        if self._pending_change is None or self._sent_flush_ok:
            return
        if self.protocol.holdback_size == 0:
            self._sent_flush_ok = True
            self._send_flush_ok(
                self._pending_change, resends_left=self.max_flush_resends
            )

    def _send_flush_ok(self, change: ViewChange, resends_left: int) -> None:
        """Broadcast FLUSH_OK, re-broadcasting until the change installs.

        FLUSH_OK is control traffic outside the ordering protocol's
        repair store, so a lossy network can eat it; the digest payload
        is idempotent, so bounded re-broadcast is the simple cure.
        """
        if self._pending_change != change:
            return  # installed meanwhile, or a rival won the tie-break
        message = Message(
            self._allocator.next_id(),
            FLUSH_OK_OPERATION,
            (
                self.protocol.entity_id,
                change,
                self._known_labels(),
            ),
        )
        self.protocol.network.broadcast(
            self.protocol.entity_id, Envelope(message)
        )
        if resends_left > 0:
            self.protocol.call_in(
                self.flush_resend_interval,
                self._send_flush_ok,
                change,
                resends_left - 1,
            )

    def _on_flush_ok(
        self, payload: Tuple[EntityId, ViewChange, frozenset]
    ) -> None:
        member, change, digest = payload
        # A FLUSH_OK can overtake its VCHG (reordering) or name a rival
        # proposal we have not heard: run it through the same adoption
        # path first.
        self._consider(change)
        if self._pending_change != change:
            return
        self._flush_acks.add(member)
        self._digests[member] = digest
        self._try_install()

    def _required_ackers(self) -> Set[EntityId]:
        """Old-view members whose FLUSH_OK we must collect.

        A member being removed — by the pending change *or by any
        deferred leave* — is presumed unable to participate (the common
        reason for removal is a crash), so it is excluded: the survivors'
        digests still cover everything it can ever deliver.  Without the
        deferred-leave exclusion, a flush for the tie-break winner could
        wait forever on the crashed member a losing proposal was trying
        to remove.
        """
        assert self._pending_change is not None
        required = set(self._old_members)
        for change in (self._pending_change, *self._deferred):
            if change.kind == "leave":
                required.discard(change.entity)
        return required

    def _try_install(self) -> None:
        if self._pending_change is None:
            return
        if not self._required_ackers() <= self._flush_acks:
            return
        target: Set = set()
        for digest in self._digests.values():
            target |= digest
        # Stable-prefix skips count as settled: a rejoiner's digest may
        # name compacted history no member can (or need) re-deliver.
        settled = set(self.protocol.delivered) | set(
            self.protocol.skipped_stable
        )
        if not target <= settled:
            # Old-view traffic still in flight (or being repaired by the
            # recovery layer); the per-delivery hook re-checks when it
            # lands.
            return
        self.flush_snapshot = frozenset(settled)
        self._install(frozenset(target))

    def _install(self, digest_union: frozenset) -> None:
        change = self._pending_change
        assert change is not None
        membership = self.protocol.group
        if membership.view.view_id == change.old_view_id:
            # First completed agent applies the (shared) change.
            if change.kind == "join":
                membership.join(change.entity)
            else:
                membership.leave(change.entity)
        view = membership.view
        started = self._flush_started
        self._pending_change = None
        self._flush_acks = set()
        self._digests = {}
        self._sent_flush_ok = False
        self.frozen = False
        self._flush_started = None
        self.changes_installed += 1
        self.install_history.append(
            InstallRecord(
                view_id=view.view_id,
                change=change,
                snapshot=self.flush_snapshot or frozenset(),
                digest_union=digest_union,
                incarnation=self.protocol.incarnation,
                time=self.protocol.now,
                flush_duration=(
                    self.protocol.now - started if started is not None else 0.0
                ),
            )
        )
        for listener in self._listeners:
            listener(view)
        self._repropose_deferred(view)

    def _on_view_installed(self, view: GroupView) -> None:
        # Deferred a tick: the first installer fires this synchronously
        # from inside its own `_install`, before clearing its pending
        # change — by the time the callback runs, a completed flush has
        # cleaned up after itself and the check is a no-op.
        self.protocol.call_in(0.0, self._finalize_if_stale)

    def _finalize_if_stale(self) -> None:
        """Resolve a pending change the shared view has moved past.

        If the new view already reflects the change, a peer that
        collected the FLUSH_OKs first completed it — adopt the outcome
        once this member has settled every digest label it saw (the
        recovery layer repairs the stragglers; each delivery re-runs this
        check).  The installer's :class:`InstallRecord` carries the
        authoritative digest union.  If the view changed some *other*
        way, the pending change lost a race it never saw; re-propose it
        against the new view.
        """
        change = self._pending_change
        if change is None:
            return
        view = self.protocol.group.view
        if view.view_id == change.old_view_id:
            return
        satisfied = (
            (change.kind == "join" and change.entity in view)
            or (change.kind == "leave" and change.entity not in view)
        )
        if not satisfied:
            self._defer(change)
            self._pending_change = None
            self._flush_acks = set()
            self._digests = {}
            self._sent_flush_ok = False
            self.frozen = False
            self._flush_started = None
            self._repropose_deferred(view)
            return
        target: Set = set()
        for digest in self._digests.values():
            target |= digest
        settled = set(self.protocol.delivered) | set(
            self.protocol.skipped_stable
        )
        if not target <= settled:
            return  # old-view traffic still being repaired; stay frozen
        self.flush_snapshot = frozenset(settled)
        self._install(frozenset(target))

    def _repropose_deferred(self, view: GroupView) -> None:
        """Re-propose tie-break losers against the freshly installed view.

        Every member re-broadcasts the same (frozen, equality-comparable)
        change, so duplicates collapse in :meth:`_consider`; changes made
        moot by the installed winner are dropped.
        """
        deferred, self._deferred = self._deferred, []
        for old in deferred:
            if old.kind == "join" and old.entity in view:
                continue
            if old.kind == "leave" and old.entity not in view:
                continue
            change = ViewChange(old.kind, old.entity, view.view_id)
            message = Message(
                self._allocator.next_id(), VCHG_OPERATION, change
            )
            self.protocol.network.broadcast(
                self.protocol.entity_id, Envelope(message)
            )

    # -- crash-stop integration ---------------------------------------------

    def reset_volatile(self) -> None:
        """Abandon any in-progress flush after the member restarts.

        The flush state is volatile — survivors make progress by excluding
        us (a ``leave`` proposal) or by re-sending FLUSH_OK until we catch
        up.  ``install_history`` is durable audit data and survives.
        """
        self._pending_change = None
        self._deferred.clear()
        self._flush_acks = set()
        self._digests = {}
        self._old_members = ()
        self._sent_flush_ok = False
        self.frozen = False
        self.flush_snapshot = None
        self._flush_started = None


def attach_view_sync(
    protocols: Dict[EntityId, "BroadcastProtocol"],
) -> Dict[EntityId, ViewSyncAgent]:
    """One agent per stack, with sends guarded during flushes."""
    agents = {}
    for entity, protocol in protocols.items():
        agent = ViewSyncAgent(protocol)
        agents[entity] = agent
        original_bcast = protocol.bcast

        def guarded(operation, payload=None, _agent=agent, _orig=original_bcast, **options):
            _agent.guard_send()
            return _orig(operation, payload, **options)

        protocol.bcast = guarded  # type: ignore[method-assign]
    return agents
