"""Failure-driven membership: detector suspicion → view change.

Glues the :class:`~repro.group.failure_detector.HeartbeatFailureDetector`
to the :class:`~repro.group.view_sync.ViewSyncAgent`: each member
broadcasts periodic heartbeats; when a member falls silent past the
detector's timeout, the lowest-ranked *live* member proposes its removal
and the flush protocol installs the shrunken view (the departed member is
excluded from the flush quorum).

This closes the loop the paper leaves to the group substrate: the
computation keeps running, with stable points and consistency intact,
after a member crashes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import ProtocolError
from repro.group.failure_detector import HeartbeatFailureDetector
from repro.group.view_sync import ViewSyncAgent
from repro.types import Envelope, EntityId, Message, MessageIdAllocator

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.broadcast.base import BroadcastProtocol

HEARTBEAT_OPERATION = "__heartbeat__"


class MembershipManager:
    """Heartbeats + suspicion + automatic leave proposal for one member."""

    def __init__(
        self,
        protocol: "BroadcastProtocol",
        view_sync: ViewSyncAgent,
        heartbeat_interval: float = 1.0,
        suspicion_timeout: float = 4.0,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ProtocolError("heartbeat_interval must be positive")
        self.protocol = protocol
        self.view_sync = view_sync
        self.heartbeat_interval = heartbeat_interval
        self._allocator = MessageIdAllocator(f"{protocol.entity_id}!hb")
        others = [
            m
            for m in protocol.group.view.members
            if m != protocol.entity_id
        ]
        self.detector = HeartbeatFailureDetector(
            protocol.scheduler, others, timeout=suspicion_timeout
        )
        self.detector.subscribe(self._on_suspicion)
        self._running = False
        self.removals_proposed = 0
        protocol.add_interceptor(self)

    # -- lifecycle ----------------------------------------------------------

    def start(self, duration: float) -> None:
        """Heartbeat (and monitor) for ``duration`` simulated time.

        Bounded so simulations terminate; production deployments would
        run unbounded.
        """
        if self._running:
            return
        self._running = True
        self.detector.start()
        beats = int(duration / self.heartbeat_interval)
        for i in range(1, beats + 1):
            self.protocol.scheduler.call_in(
                i * self.heartbeat_interval, self._beat
            )
        self.protocol.scheduler.call_in(duration, self._stop)

    def _stop(self) -> None:
        self._running = False
        self.detector.stop()

    def _beat(self) -> None:
        if not self._running:
            return
        message = Message(
            self._allocator.next_id(), HEARTBEAT_OPERATION, None
        )
        self.protocol.network.broadcast(
            self.protocol.entity_id, Envelope(message)
        )

    # -- control plane ---------------------------------------------------------

    def intercept(self, sender: EntityId, envelope: Envelope) -> bool:
        if envelope.message.operation != HEARTBEAT_OPERATION:
            return False
        if sender != self.protocol.entity_id and sender in (
            self.detector._last_heard
        ):
            self.detector.heartbeat(sender)
        return True

    # -- suspicion handling -------------------------------------------------------

    def _live_members(self) -> list:
        return [
            m
            for m in self.protocol.group.view.members
            if m == self.protocol.entity_id or not self.detector.is_suspected(m)
        ]

    def _on_suspicion(self, suspect: EntityId) -> None:
        if suspect not in self.protocol.group.view:
            return
        # The lowest-ranked live member coordinates the removal, so only
        # one proposal is broadcast.
        live = self._live_members()
        if not live or live[0] != self.protocol.entity_id:
            return
        if self.view_sync._pending_change is not None:
            return  # a change is already in flight; detector will re-fire
        self.removals_proposed += 1
        self.view_sync.propose("leave", suspect)


def manage_membership(
    protocols: Dict[EntityId, "BroadcastProtocol"],
    view_sync_agents: Dict[EntityId, ViewSyncAgent],
    heartbeat_interval: float = 1.0,
    suspicion_timeout: float = 4.0,
) -> Dict[EntityId, MembershipManager]:
    """One manager per member (does not start them)."""
    return {
        entity: MembershipManager(
            protocol,
            view_sync_agents[entity],
            heartbeat_interval=heartbeat_interval,
            suspicion_timeout=suspicion_timeout,
        )
        for entity, protocol in protocols.items()
    }
