"""Failure-driven membership: detector suspicion → view change.

Glues the :class:`~repro.group.failure_detector.HeartbeatFailureDetector`
to the :class:`~repro.group.view_sync.ViewSyncAgent`: each member
broadcasts periodic heartbeats; when a member falls silent past the
detector's timeout, the lowest-ranked *live* member proposes its removal
and the flush protocol installs the shrunken view (the departed member is
excluded from the flush quorum).

This closes the loop the paper leaves to the group substrate: the
computation keeps running, with stable points and consistency intact,
after a member crashes.  Three properties make it robust enough for the
chaos campaigns:

* **The monitored set tracks the view.**  The manager subscribes to view
  installs: joiners are monitored from the moment they enter (grace clock
  starting at the install), removed members are forgotten instead of
  staying suspected forever.
* **Proposals survive in-flight flushes.**  A removal is proposed with
  ``force=True``: the view-sync tie-break serialises it against whatever
  flush is running, and leaves win — which is exactly what unblocks a
  flush stuck waiting on the crashed member's FLUSH_OK.
* **A deterministic fallback proposer.**  Only the lowest-ranked live
  member proposes, but each live member schedules its own re-check at
  ``rank × fallback_delay``: if the primary proposer crashes before its
  proposal lands, its own re-check timer dies with it (crash-guarded),
  the next-lowest member's timer finds the suspect still present and
  proposes instead.  Re-checks repeat (bounded) until the suspect leaves
  the view or speaks again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.group.failure_detector import HeartbeatFailureDetector
from repro.group.membership import GroupView
from repro.group.view_sync import ViewSyncAgent
from repro.types import Envelope, EntityId, Message, MessageIdAllocator

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.broadcast.base import BroadcastProtocol

HEARTBEAT_OPERATION = "__heartbeat__"

#: Bounded re-checks per suspicion: enough for every fallback rank plus
#: retries across superseding flushes, small enough to terminate runs.
MAX_PROPOSAL_ATTEMPTS = 10


class MembershipManager:
    """Heartbeats + suspicion + automatic leave proposal for one member."""

    def __init__(
        self,
        protocol: "BroadcastProtocol",
        view_sync: ViewSyncAgent,
        heartbeat_interval: float = 1.0,
        suspicion_timeout: float = 4.0,
        fallback_delay: Optional[float] = None,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ProtocolError("heartbeat_interval must be positive")
        self.protocol = protocol
        self.view_sync = view_sync
        self.heartbeat_interval = heartbeat_interval
        # How long a live member at fallback rank r waits before checking
        # whether the removal it expected has happened (r × delay).
        self.fallback_delay = (
            fallback_delay if fallback_delay is not None else suspicion_timeout
        )
        self._allocator = MessageIdAllocator(f"{protocol.entity_id}!hb")
        others = [
            m
            for m in protocol.group.view.members
            if m != protocol.entity_id
        ]
        self.detector = HeartbeatFailureDetector(
            protocol.scheduler,
            others,
            timeout=suspicion_timeout,
            # The tick re-arms off the raw scheduler (it must survive our
            # crash), but a crashed member must not accrue suspicions.
            active=lambda: not protocol.crashed,
        )
        self.detector.subscribe(self._on_suspicion)
        self._running = False
        self._deadline: Optional[float] = None
        self.removals_proposed = 0
        #: Durable audit: (suspect, time first suspected this episode);
        #: the chaos harness derives suspicion latency from it.
        self.suspicion_log: List[Tuple[EntityId, float]] = []
        protocol.add_interceptor(self)
        protocol.group.subscribe(self._on_view_installed)

    # -- lifecycle ----------------------------------------------------------

    def start(self, duration: float) -> None:
        """Heartbeat (and monitor) for ``duration`` simulated time.

        Bounded so simulations terminate; production deployments would
        run unbounded.
        """
        if self._running:
            return
        self._running = True
        self._deadline = self.protocol.scheduler.now + duration
        self.detector.start()
        self._arm_beat()
        # The stop must fire even if we are crashed at the deadline —
        # otherwise the detector tick re-arms forever and the scheduler
        # never quiesces — so it bypasses the crash guard.
        self.protocol.scheduler.call_in(duration, self._stop)

    def _stop(self) -> None:
        self._running = False
        self.detector.stop()

    def _arm_beat(self) -> None:
        # Crash-guarded self-rearming chain: it dies with a crash (a
        # crashed member is silent, which is the point) and is re-armed
        # by `reset_volatile` when the member restarts.
        self.protocol.call_in(self.heartbeat_interval, self._tick_beat)

    def _tick_beat(self) -> None:
        if not self._running:
            return
        self._beat()
        self._arm_beat()

    def _beat(self) -> None:
        if self.protocol.entity_id not in self.protocol.group.view:
            return  # removed members have no business heartbeating
        message = Message(
            self._allocator.next_id(), HEARTBEAT_OPERATION, None
        )
        self.protocol.network.broadcast(
            self.protocol.entity_id, Envelope(message)
        )

    def reset_volatile(self) -> None:
        """Re-seed the detector and heartbeat chain after a restart.

        Interceptor hook, called by the chassis's restart path.  The
        detector's silence clocks are amnesiac state — every peer gets a
        fresh grace period — and the crash killed the guarded heartbeat
        chain, so restart it if the manager is still within its run.
        """
        self.detector.reset_clocks()
        self._sync_monitored(self.protocol.group.view)
        if self._running and (
            self._deadline is None
            or self.protocol.scheduler.now < self._deadline
        ):
            self._arm_beat()

    # -- monitored-set maintenance -------------------------------------------

    def _on_view_installed(self, view: GroupView) -> None:
        self._sync_monitored(view)

    def _sync_monitored(self, view: GroupView) -> None:
        wanted = {m for m in view.members if m != self.protocol.entity_id}
        for entity in wanted:
            self.detector.monitor(entity)
        for entity in self.detector.monitored - wanted:
            self.detector.forget(entity)

    # -- control plane ---------------------------------------------------------

    def intercept(self, sender: EntityId, envelope: Envelope) -> bool:
        if envelope.message.operation != HEARTBEAT_OPERATION:
            return False
        if sender != self.protocol.entity_id and self.detector.is_monitored(
            sender
        ):
            self.detector.heartbeat(sender)
        return True

    # -- suspicion handling -------------------------------------------------------

    def _live_members(self) -> list:
        return [
            m
            for m in self.protocol.group.view.members
            if m == self.protocol.entity_id or not self.detector.is_suspected(m)
        ]

    def _on_suspicion(self, suspect: EntityId) -> None:
        if self.protocol.crashed:
            return
        if suspect not in self.protocol.group.view:
            return
        self.suspicion_log.append((suspect, self.protocol.scheduler.now))
        self._propose_or_fallback(suspect, MAX_PROPOSAL_ATTEMPTS)

    def _propose_or_fallback(self, suspect: EntityId, attempts: int) -> None:
        """Propose the removal if we lead, else stand by as fallback.

        The lowest-ranked live member proposes immediately; every other
        live member schedules a re-check at ``rank × fallback_delay``.
        All re-check timers are crash-guarded, so a proposer that crashes
        mid-removal silently drops out and the next-lowest survivor's
        timer — which finds the suspect still in the view — takes over.
        The proposer itself also re-checks (its proposal could lose a
        tie-break whose winner does not remove the suspect).
        """
        if not self._running or attempts <= 0:
            return
        if self.protocol.crashed:
            return
        if self.protocol.entity_id not in self.protocol.group.view:
            return  # we were removed ourselves (e.g. partitioned away)
        if suspect not in self.protocol.group.view:
            return  # removal already installed
        if not self.detector.is_suspected(suspect):
            return  # the suspect spoke; stand down
        live = self._live_members()
        rank = live.index(self.protocol.entity_id)
        if rank == 0:
            self._propose_removal(suspect)
            delay = self.fallback_delay
        else:
            delay = rank * self.fallback_delay
        self.protocol.call_in(
            delay, self._propose_or_fallback, suspect, attempts - 1
        )

    def _propose_removal(self, suspect: EntityId) -> None:
        pending = self.view_sync._pending_change
        in_flight = (
            pending is not None
            and pending.kind == "leave"
            and pending.entity == suspect
        ) or any(
            change.kind == "leave" and change.entity == suspect
            for change in self.view_sync._deferred
        )
        if in_flight:
            return  # already proposed (by us or a peer); let it flush
        self.removals_proposed += 1
        self.view_sync.propose("leave", suspect, force=True)


def manage_membership(
    protocols: Dict[EntityId, "BroadcastProtocol"],
    view_sync_agents: Dict[EntityId, ViewSyncAgent],
    heartbeat_interval: float = 1.0,
    suspicion_timeout: float = 4.0,
    fallback_delay: Optional[float] = None,
) -> Dict[EntityId, MembershipManager]:
    """One manager per member (does not start them)."""
    return {
        entity: MembershipManager(
            protocol,
            view_sync_agents[entity],
            heartbeat_interval=heartbeat_interval,
            suspicion_timeout=suspicion_timeout,
            fallback_delay=fallback_delay,
        )
        for entity, protocol in protocols.items()
    }
