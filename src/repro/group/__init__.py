"""Group membership, views, failure detection, view-synchronous changes."""

from repro.group.auto_membership import MembershipManager, manage_membership
from repro.group.failure_detector import HeartbeatFailureDetector
from repro.group.membership import GroupMembership, GroupView
from repro.group.view_sync import ViewChange, ViewSyncAgent, attach_view_sync

__all__ = [
    "GroupMembership",
    "GroupView",
    "HeartbeatFailureDetector",
    "MembershipManager",
    "ViewChange",
    "ViewSyncAgent",
    "attach_view_sync",
    "manage_membership",
]
