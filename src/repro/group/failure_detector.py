"""Heartbeat failure detection.

A simple eventually-perfect-style detector for the simulated environment:
each monitored entity is expected to produce a heartbeat at least every
``heartbeat_interval``; an entity silent for ``timeout`` is *suspected*.
Suspicion feeds :class:`~repro.group.membership.GroupMembership` in the
dynamic-membership integration tests, exercising the protocols' behaviour
when a member departs mid-activity.

The monitored set is dynamic (:meth:`HeartbeatFailureDetector.monitor` /
:meth:`~HeartbeatFailureDetector.forget`): under churn the owner —
:class:`~repro.group.auto_membership.MembershipManager` — keeps it in sync
with view installs, so a joiner's heartbeats are accepted immediately and
a removed member is not suspected forever.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.errors import ConfigurationError
from repro.sim.scheduler import EventHandle, Scheduler
from repro.types import EntityId

SuspicionListener = Callable[[EntityId], None]


class HeartbeatFailureDetector:
    """Tracks last-heard times and raises suspicion on silence."""

    def __init__(
        self,
        scheduler: Scheduler,
        monitored: Iterable[EntityId],
        timeout: float,
        check_interval: Optional[float] = None,
        active: Optional[Callable[[], bool]] = None,
    ) -> None:
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {timeout}")
        self._scheduler = scheduler
        self._timeout = timeout
        self._check_interval = (
            check_interval if check_interval is not None else timeout / 2
        )
        # Optional owner-liveness gate: the tick keeps re-arming off the
        # raw scheduler (so it survives the owner's crash guard), but a
        # crashed owner must not accrue suspicions it could never act on.
        self._active = active
        self._last_heard: Dict[EntityId, float] = {
            entity: scheduler.now for entity in monitored
        }
        self._suspected: Set[EntityId] = set()
        self._listeners: List[SuspicionListener] = []
        self._tick_handle: Optional[EventHandle] = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin periodic checking."""
        if self._running:
            return
        self._running = True
        self._schedule_tick()

    def stop(self) -> None:
        self._running = False
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    def _schedule_tick(self) -> None:
        self._tick_handle = self._scheduler.call_in(
            self._check_interval, self._tick
        )

    def _tick(self) -> None:
        if not self._running:
            return
        if self._active is None or self._active():
            now = self._scheduler.now
            for entity, last in list(self._last_heard.items()):
                if entity in self._suspected:
                    continue
                if now - last > self._timeout:
                    self._suspected.add(entity)
                    for listener in self._listeners:
                        listener(entity)
        self._schedule_tick()

    # -- monitored set -------------------------------------------------------

    def monitor(self, entity: EntityId) -> None:
        """Start monitoring ``entity`` (idempotent).

        The grace clock starts *now*: a just-joined member owes its first
        heartbeat a full timeout from here, not from detector construction.
        """
        if entity in self._last_heard:
            return
        self._last_heard[entity] = self._scheduler.now
        self._suspected.discard(entity)

    def forget(self, entity: EntityId) -> None:
        """Stop monitoring ``entity`` (idempotent).

        A member removed from the view must not stay suspected forever —
        its silence is now expected, not a failure.
        """
        self._last_heard.pop(entity, None)
        self._suspected.discard(entity)

    def is_monitored(self, entity: EntityId) -> bool:
        return entity in self._last_heard

    @property
    def monitored(self) -> Set[EntityId]:
        return set(self._last_heard)

    def reset_clocks(self) -> None:
        """Restart every grace clock and clear suspicions.

        Used when the detector's owner restarts after a crash: its notion
        of "how long each peer has been silent" is amnesiac state, so every
        peer gets a fresh full timeout instead of being suspected for
        silence the owner never actually observed.
        """
        now = self._scheduler.now
        for entity in self._last_heard:
            self._last_heard[entity] = now
        self._suspected.clear()

    # -- inputs --------------------------------------------------------------

    def heartbeat(self, entity: EntityId) -> None:
        """Record a sign of life from ``entity``.

        A suspected entity that speaks again is un-suspected (the detector
        is only eventually accurate, like any timeout-based detector).
        """
        if entity not in self._last_heard:
            raise ConfigurationError(f"{entity!r} is not monitored")
        self._last_heard[entity] = self._scheduler.now
        self._suspected.discard(entity)

    # -- outputs --------------------------------------------------------------

    def subscribe(self, listener: SuspicionListener) -> None:
        """Invoke ``listener(entity)`` when ``entity`` becomes suspected."""
        self._listeners.append(listener)

    def is_suspected(self, entity: EntityId) -> bool:
        return entity in self._suspected

    @property
    def suspected(self) -> Set[EntityId]:
        return set(self._suspected)
