"""Heartbeat failure detection.

A simple eventually-perfect-style detector for the simulated environment:
each monitored entity is expected to produce a heartbeat at least every
``heartbeat_interval``; an entity silent for ``timeout`` is *suspected*.
Suspicion feeds :class:`~repro.group.membership.GroupMembership` in the
dynamic-membership integration tests, exercising the protocols' behaviour
when a member departs mid-activity.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.errors import ConfigurationError
from repro.sim.scheduler import EventHandle, Scheduler
from repro.types import EntityId

SuspicionListener = Callable[[EntityId], None]


class HeartbeatFailureDetector:
    """Tracks last-heard times and raises suspicion on silence."""

    def __init__(
        self,
        scheduler: Scheduler,
        monitored: Iterable[EntityId],
        timeout: float,
        check_interval: Optional[float] = None,
    ) -> None:
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {timeout}")
        self._scheduler = scheduler
        self._timeout = timeout
        self._check_interval = (
            check_interval if check_interval is not None else timeout / 2
        )
        self._last_heard: Dict[EntityId, float] = {
            entity: scheduler.now for entity in monitored
        }
        self._suspected: Set[EntityId] = set()
        self._listeners: List[SuspicionListener] = []
        self._tick_handle: Optional[EventHandle] = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin periodic checking."""
        if self._running:
            return
        self._running = True
        self._schedule_tick()

    def stop(self) -> None:
        self._running = False
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    def _schedule_tick(self) -> None:
        self._tick_handle = self._scheduler.call_in(
            self._check_interval, self._tick
        )

    def _tick(self) -> None:
        if not self._running:
            return
        now = self._scheduler.now
        for entity, last in self._last_heard.items():
            if entity in self._suspected:
                continue
            if now - last > self._timeout:
                self._suspected.add(entity)
                for listener in self._listeners:
                    listener(entity)
        self._schedule_tick()

    # -- inputs --------------------------------------------------------------

    def heartbeat(self, entity: EntityId) -> None:
        """Record a sign of life from ``entity``.

        A suspected entity that speaks again is un-suspected (the detector
        is only eventually accurate, like any timeout-based detector).
        """
        if entity not in self._last_heard:
            raise ConfigurationError(f"{entity!r} is not monitored")
        self._last_heard[entity] = self._scheduler.now
        self._suspected.discard(entity)

    # -- outputs --------------------------------------------------------------

    def subscribe(self, listener: SuspicionListener) -> None:
        """Invoke ``listener(entity)`` when ``entity`` becomes suspected."""
        self._listeners.append(listener)

    def is_suspected(self, entity: EntityId) -> bool:
        return entity in self._suspected

    @property
    def suspected(self) -> Set[EntityId]:
        return set(self._suspected)
