"""Workload generation: request schedules and drivers.

The paper parameterises workloads by the commutative/non-commutative mix:
"a repetitive cycle of processing a non-commutative message ... followed
by a set of f (>= 0) commutative messages (on an average).  Typically, 90%
of the operations are commutative ... Thus, for example, f = 20"
(Section 6.1).  :func:`cycle_schedule` generates exactly that shape;
:class:`WorkloadDriver` injects a schedule into a running system through
its front-ends at simulated arrival times.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.types import EntityId, MessageId


@dataclass(frozen=True)
class ScheduledRequest:
    """One client request to inject at a simulated time.

    ``session`` names the client session the request belongs to (used by
    sharded workloads, where session order is a consistency obligation);
    single-group workloads leave it ``None``.
    """

    time: float
    member: EntityId
    operation: str
    payload: Any = None
    session: Optional[str] = None


def poisson_arrivals(
    rate: float, count: int, rng: random.Random, start: float = 0.0
) -> List[float]:
    """``count`` arrival times of a Poisson process with intensity ``rate``."""
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate}")
    times: List[float] = []
    now = start
    for _ in range(count):
        now += rng.expovariate(rate)
        times.append(now)
    return times


def uniform_arrivals(
    spacing: float, count: int, start: float = 0.0
) -> List[float]:
    """``count`` evenly spaced arrival times."""
    if spacing <= 0:
        raise ConfigurationError(f"spacing must be positive, got {spacing}")
    return [start + spacing * (i + 1) for i in range(count)]


def cycle_schedule(
    members: Sequence[EntityId],
    commutative_ops: Sequence[str],
    non_commutative_op: str,
    cycles: int,
    f: int,
    rng: random.Random,
    arrival_rate: float = 1.0,
    payload_factory: Optional[Callable[[str, int], Any]] = None,
    issuer: Optional[EntityId] = None,
) -> List[ScheduledRequest]:
    """The Section 6.1 cycle workload.

    Per cycle: ``f`` commutative requests (operation drawn uniformly from
    ``commutative_ops``, issuing member drawn uniformly from ``members``
    unless ``issuer`` pins all requests to one front-end), then one
    non-commutative request.  Arrivals form a Poisson process.

    ``payload_factory(operation, request_index)`` builds payloads
    (default: ``None``).

    Note: non-commutative requests are always issued by ``issuer`` or, if
    unset, by the *first* member — the paper's protocol relies on a chain
    of sync points, which racing NC issuers would break (Section 5.2 routes
    that case to total ordering instead).
    """
    if cycles < 0 or f < 0:
        raise ConfigurationError(f"cycles={cycles} and f={f} must be >= 0")
    if not members:
        raise ConfigurationError("need at least one member")
    if not commutative_ops and f > 0:
        raise ConfigurationError("f > 0 requires commutative operations")
    nc_issuer = issuer if issuer is not None else members[0]
    times = poisson_arrivals(arrival_rate, cycles * (f + 1), rng)
    schedule: List[ScheduledRequest] = []
    index = 0
    for _cycle in range(cycles):
        for _ in range(f):
            member = issuer if issuer is not None else rng.choice(list(members))
            operation = rng.choice(list(commutative_ops))
            payload = (
                payload_factory(operation, index) if payload_factory else None
            )
            schedule.append(
                ScheduledRequest(times[index], member, operation, payload)
            )
            index += 1
        payload = (
            payload_factory(non_commutative_op, index)
            if payload_factory
            else None
        )
        schedule.append(
            ScheduledRequest(times[index], nc_issuer, non_commutative_op, payload)
        )
        index += 1
    return schedule


def mixed_schedule(
    members: Sequence[EntityId],
    operations: Dict[str, float],
    count: int,
    rng: random.Random,
    arrival_rate: float = 1.0,
    payload_factory: Optional[Callable[[str, int], Any]] = None,
) -> List[ScheduledRequest]:
    """Spontaneous workload: each request drawn from a weighted mix.

    Models the "loosely coupled applications [where] messages may be
    generated spontaneously" of Section 5.2 (conferencing, name service).
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if not operations:
        raise ConfigurationError("need at least one operation")
    names = list(operations)
    weights = [operations[n] for n in names]
    if min(weights) < 0 or sum(weights) <= 0:
        raise ConfigurationError(f"invalid weights: {operations}")
    times = poisson_arrivals(arrival_rate, count, rng)
    schedule: List[ScheduledRequest] = []
    for index in range(count):
        member = rng.choice(list(members))
        operation = rng.choices(names, weights=weights)[0]
        payload = (
            payload_factory(operation, index) if payload_factory else None
        )
        schedule.append(
            ScheduledRequest(times[index], member, operation, payload)
        )
    return schedule


def sharded_schedule(
    shard_map: Any,
    sessions: int,
    ops_per_session: int,
    rng: random.Random,
    cross_fraction: float = 0.5,
    read_fraction: float = 0.2,
    arrival_rate: float = 1.0,
    key_prefix: str = "k",
) -> List[ScheduledRequest]:
    """Keyed multi-shard session traffic for a sharded object space.

    Each session gets a *home* shard (round-robin over the map's shards)
    and issues ``ops_per_session`` requests: with probability
    ``read_fraction`` a two-shard barrier ``read`` (payload
    ``{"shards": [...]}``), otherwise a keyed ``put`` whose key routes —
    under ``shard_map`` — to the home shard, or with probability
    ``cross_fraction`` to a uniformly random shard (payload
    ``{"key": ..., "value": ...}``).  ``member`` is the request's target
    shard rendered as ``"shard<N>"`` (reads target the lowest touched
    shard); the session layer re-routes by key anyway, so the field only
    matters for replay bookkeeping.

    Requests arrive as one Poisson process, dealt to sessions round-robin
    — sessions overlap in time, and each per-session subsequence stays
    time-ordered, which is what session order means.
    """
    if sessions < 1 or ops_per_session < 0:
        raise ConfigurationError(
            f"sessions={sessions} must be >= 1 and "
            f"ops_per_session={ops_per_session} >= 0"
        )
    if not 0.0 <= cross_fraction <= 1.0:
        raise ConfigurationError("cross_fraction must be in [0, 1]")
    if not 0.0 <= read_fraction <= 1.0:
        raise ConfigurationError("read_fraction must be in [0, 1]")
    shards = list(range(shard_map.num_shards))
    times = poisson_arrivals(arrival_rate, sessions * ops_per_session, rng)
    schedule: List[ScheduledRequest] = []
    index = 0
    for number in range(sessions):
        session = f"sess{number}"
        home = shards[number % len(shards)]
        for turn in range(ops_per_session):
            when = times[turn * sessions + number]
            if rng.random() < read_fraction and len(shards) >= 2:
                touched = sorted(rng.sample(shards, 2))
                schedule.append(ScheduledRequest(
                    when,
                    f"shard{touched[0]}",
                    "read",
                    {"shards": touched},
                    session=session,
                ))
            else:
                target = (
                    rng.choice(shards)
                    if rng.random() < cross_fraction
                    else home
                )
                key = shard_map.sample_key(target, rng, prefix=key_prefix)
                schedule.append(ScheduledRequest(
                    when,
                    f"shard{target}",
                    "put",
                    {"key": key, "value": f"v{index}"},
                    session=session,
                ))
            index += 1
    schedule.sort(key=lambda request: request.time)
    return schedule


class WorkloadDriver:
    """Feeds a schedule into a system's request interface.

    ``submit`` is any callable ``(member, operation, payload) -> MessageId``
    — both :class:`~repro.core.access_protocol.StablePointSystem` and
    :class:`~repro.core.access_protocol.TotalOrderSystem` expose a matching
    ``request`` method.
    """

    def __init__(
        self,
        scheduler: Any,
        submit: Callable[[EntityId, str, Any], MessageId],
        schedule: Sequence[ScheduledRequest],
    ) -> None:
        self._submit = submit
        self.issued: List[MessageId] = []
        for request in schedule:
            scheduler.call_at(request.time, self._issue, request)

    def _issue(self, request: ScheduledRequest) -> None:
        label = self._submit(request.member, request.operation, request.payload)
        self.issued.append(label)
