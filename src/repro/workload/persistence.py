"""Saving and loading request schedules.

Experiments become shareable when their workloads are artifacts: a
schedule generated once (seeded) can be saved to JSON, attached to a
report, and replayed bit-for-bit on another machine — the workload
equivalent of the simulator's determinism guarantee.

Payloads must be JSON-representable (the built-in workloads use dicts of
scalars); anything else raises at save time rather than corrupting the
file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import ConfigurationError
from repro.workload.generators import ScheduledRequest

#: Version 2 added the optional per-request ``session`` field (sharded
#: workloads).  Version-1 documents — no ``session`` keys — still load;
#: their requests get ``session=None``, which is what they meant.
FORMAT_VERSION = 2

_SUPPORTED_VERSIONS = (1, 2)


def schedule_to_json(schedule: Sequence[ScheduledRequest]) -> str:
    """Serialize a schedule to a JSON document string."""
    entries = []
    for request in schedule:
        try:
            json.dumps(request.payload)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"payload of request at t={request.time} is not "
                f"JSON-representable: {exc}"
            ) from exc
        entry = {
            "time": request.time,
            "member": request.member,
            "operation": request.operation,
            "payload": request.payload,
        }
        if request.session is not None:
            entry["session"] = request.session
        entries.append(entry)
    return json.dumps(
        {"version": FORMAT_VERSION, "requests": entries}, indent=2
    )


def schedule_from_json(document: str) -> List[ScheduledRequest]:
    """Parse a schedule from a JSON document string."""
    try:
        data = json.loads(document)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid schedule JSON: {exc}") from exc
    if not isinstance(data, dict) or "requests" not in data:
        raise ConfigurationError("schedule JSON lacks a 'requests' list")
    version = data.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise ConfigurationError(
            f"unsupported schedule format version: {version!r}"
        )
    schedule = []
    for index, entry in enumerate(data["requests"]):
        try:
            schedule.append(
                ScheduledRequest(
                    time=float(entry["time"]),
                    member=entry["member"],
                    operation=entry["operation"],
                    payload=entry.get("payload"),
                    session=entry.get("session"),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed request #{index}: {exc}"
            ) from exc
    return schedule


def save_schedule(
    schedule: Sequence[ScheduledRequest], path: Union[str, Path]
) -> None:
    """Write a schedule to ``path`` as JSON."""
    Path(path).write_text(schedule_to_json(schedule), encoding="utf-8")


def load_schedule(path: Union[str, Path]) -> List[ScheduledRequest]:
    """Read a schedule previously written by :func:`save_schedule`."""
    return schedule_from_json(Path(path).read_text(encoding="utf-8"))
