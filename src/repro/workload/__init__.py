"""Workload generators and drivers."""

from repro.workload.exploration import (
    ExplorationReport,
    explore_orderings,
    ordering_diversity_ratio,
)
from repro.workload.persistence import (
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
)
from repro.workload.generators import (
    ScheduledRequest,
    WorkloadDriver,
    cycle_schedule,
    mixed_schedule,
    poisson_arrivals,
    sharded_schedule,
    uniform_arrivals,
)

__all__ = [
    "ExplorationReport",
    "ScheduledRequest",
    "WorkloadDriver",
    "cycle_schedule",
    "explore_orderings",
    "load_schedule",
    "mixed_schedule",
    "ordering_diversity_ratio",
    "poisson_arrivals",
    "save_schedule",
    "schedule_from_json",
    "schedule_to_json",
    "sharded_schedule",
    "uniform_arrivals",
]
