"""Interleaving exploration across seeds.

Causal order admits many legal delivery interleavings; any single seeded
run shows exactly one.  :func:`explore_orderings` re-runs the same
logical scenario over a sweep of network seeds and collects the distinct
orderings observed — a lightweight schedule explorer for tests
("does the concurrency actually manifest?", "do all observed orders obey
the graph?") and for estimating how much asynchrony a workload exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Tuple

from repro.types import EntityId, MessageId

# A scenario builder: given a seed, run the scenario and return each
# member's delivery sequence.
ScenarioFn = Callable[[int], Mapping[EntityId, List[MessageId]]]

Ordering = Tuple[MessageId, ...]


@dataclass(frozen=True)
class ExplorationReport:
    """What a seed sweep observed."""

    runs: int
    orderings: FrozenSet[Ordering]
    per_member_orderings: Dict[EntityId, FrozenSet[Ordering]]

    @property
    def distinct(self) -> int:
        return len(self.orderings)

    def member_diversity(self, entity: EntityId) -> int:
        """Distinct orders observed at one member across the sweep."""
        return len(self.per_member_orderings.get(entity, frozenset()))


def explore_orderings(
    scenario: ScenarioFn, seeds: Iterable[int]
) -> ExplorationReport:
    """Run ``scenario`` per seed; collect distinct delivery orderings.

    Orders are collected both globally (every member of every run
    contributes) and per member (how much *one* replica's experience
    varies across runs).
    """
    all_orderings: set = set()
    per_member: Dict[EntityId, set] = {}
    runs = 0
    for seed in seeds:
        runs += 1
        sequences = scenario(seed)
        for entity, sequence in sequences.items():
            ordering = tuple(sequence)
            all_orderings.add(ordering)
            per_member.setdefault(entity, set()).add(ordering)
    return ExplorationReport(
        runs=runs,
        orderings=frozenset(all_orderings),
        per_member_orderings={
            e: frozenset(orders) for e, orders in per_member.items()
        },
    )


def ordering_diversity_ratio(report: ExplorationReport, total_legal: int) -> float:
    """Fraction of the legal interleavings a sweep actually visited.

    ``total_legal`` is typically the linear-extension count of the
    scenario's dependency graph.
    """
    if total_legal <= 0:
        return 0.0
    return report.distinct / total_legal
