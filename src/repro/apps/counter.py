"""Replicated integer counter — the paper's running example.

A service exposing increment/decrement (commutative) and read
(non-commutative) on one or more named integers, with the ordering
requirement of Section 2.2: "a rd operation cannot be concurrent with an
inc/dec operation, while the inc and dec operations can be concurrent" —
``‖{inc(x), dec(x)} ≺ rd(x)``.

:class:`CounterService` wraps a :class:`~repro.core.access_protocol.StablePointSystem`
with a typed API; reads are deferred to the next stable point so every
member returns the same value (Section 5.1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.access_protocol import StablePointSystem
from repro.core.commutativity import CommutativitySpec
from repro.core.stable_points import StablePoint
from repro.core.state_machine import StateMachine
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.types import EntityId, Message, MessageId


def multi_counter_machine() -> StateMachine:
    """State: immutable mapping item -> int (as a frozenset of pairs)."""

    def _get(state: frozenset, item: str) -> int:
        for key, value in state:
            if key == item:
                return value
        return 0

    def _set(state: frozenset, item: str, value: int) -> frozenset:
        entries = {k: v for k, v in state}
        entries[item] = value
        return frozenset(entries.items())

    def inc(state: frozenset, message: Message) -> frozenset:
        item = message.payload["item"]
        amount = message.payload.get("amount", 1)
        return _set(state, item, _get(state, item) + amount)

    def dec(state: frozenset, message: Message) -> frozenset:
        item = message.payload["item"]
        amount = message.payload.get("amount", 1)
        return _set(state, item, _get(state, item) - amount)

    def rd(state: frozenset, message: Message) -> frozenset:
        return state

    return StateMachine(frozenset(), {"inc": inc, "dec": dec, "rd": rd})


def multi_counter_spec() -> CommutativitySpec:
    """inc/dec commute; rd does not; different items always commute."""
    return CommutativitySpec(
        commutative_ops={"inc", "dec"},
        item_of=lambda m: m.payload["item"] if m.payload else None,
    )


class CounterService:
    """A replicated multi-counter over the stable-point protocol."""

    def __init__(
        self,
        members: Sequence[EntityId],
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        seed: int = 0,
    ) -> None:
        self.system = StablePointSystem(
            members,
            multi_counter_machine,
            multi_counter_spec(),
            latency=latency,
            faults=faults,
            seed=seed,
        )
        self._read_results: List[Tuple[EntityId, MessageId, Any, StablePoint]] = []

    # -- operations ----------------------------------------------------------

    def increment(
        self, member: EntityId, item: str = "x", amount: int = 1
    ) -> MessageId:
        return self.system.request(
            member, "inc", {"item": item, "amount": amount}
        )

    def decrement(
        self, member: EntityId, item: str = "x", amount: int = 1
    ) -> MessageId:
        return self.system.request(
            member, "dec", {"item": item, "amount": amount}
        )

    def read(self, member: EntityId, item: str = "x") -> MessageId:
        """Issue a read: a synchronization point for the whole group.

        The returned value is captured at the next stable point at *every*
        member via :meth:`read_results`.
        """
        label = self.system.request(member, "rd", {"item": item})
        for entity, replica in self.system.replicas.items():
            replica.read_at_next_stable_point(
                self._capture_read(entity, label, item)
            )
        return label

    def _capture_read(self, entity: EntityId, label: MessageId, item: str):
        def capture(state: frozenset, point: StablePoint) -> None:
            value = dict(state).get(item, 0)
            self._read_results.append((entity, label, value, point))

        return capture

    # -- results --------------------------------------------------------------

    def run(self) -> None:
        self.system.run()

    def value_at(self, member: EntityId, item: str = "x") -> int:
        """The member's current (live) value of ``item``."""
        state = self.system.replicas[member].read_now()
        return dict(state).get(item, 0)

    def read_results(self) -> List[Tuple[EntityId, MessageId, Any, StablePoint]]:
        """(member, read label, value, stable point) per captured read."""
        return list(self._read_results)

    def values(self, item: str = "x") -> Dict[EntityId, int]:
        return {m: self.value_at(m, item) for m in self.system.members}
