"""Distributed file service — the paper's opening example.

"A distributed file service may be implemented by a group of servers,
with each server maintaining a local copy of files and exchanging
messages with other servers in the group to update the various file
copies in response to client requests" (Section 1).

The data model is log-structured, which maps the paper's commutativity
machinery onto files naturally:

* ``append(path, record)`` — adds a record to a file's record *set*:
  commutative with every other append (set union), like the conferencing
  annotations of §5.2;
* ``write(path, content)`` — replaces the file's base content:
  non-commutative per path (a synchronization point for that file);
* ``remove(path)`` — deletes the file: non-commutative;
* ``read(path)`` — non-commutative; served as a deferred read at the next
  stable point so every server returns the same bytes (§5.1).

Item scoping (§5.1, "decomposition of the data into distinct items")
makes operations on different paths always commutative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.access_protocol import StablePointSystem
from repro.core.commutativity import CommutativitySpec
from repro.core.stable_points import StablePoint
from repro.core.state_machine import StateMachine
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.types import EntityId, Message, MessageId

# A file: (base content, frozenset of appended records).
FileValue = Tuple[str, FrozenSet[str]]
# Filesystem state: frozenset of (path, content, records).
FsState = FrozenSet[Tuple[str, str, FrozenSet[str]]]


def _as_dict(state: FsState) -> Dict[str, FileValue]:
    return {path: (content, records) for path, content, records in state}


def _as_state(files: Dict[str, FileValue]) -> FsState:
    return frozenset(
        (path, content, records) for path, (content, records) in files.items()
    )


def file_machine() -> StateMachine:
    """The replicated filesystem's transition function."""

    def write(state: FsState, message: Message) -> FsState:
        files = _as_dict(state)
        path = message.payload["path"]
        _, records = files.get(path, ("", frozenset()))
        files[path] = (message.payload["content"], records)
        return _as_state(files)

    def append(state: FsState, message: Message) -> FsState:
        files = _as_dict(state)
        path = message.payload["path"]
        content, records = files.get(path, ("", frozenset()))
        files[path] = (content, records | {message.payload["record"]})
        return _as_state(files)

    def remove(state: FsState, message: Message) -> FsState:
        files = _as_dict(state)
        files.pop(message.payload["path"], None)
        return _as_state(files)

    def read(state: FsState, message: Message) -> FsState:
        return state

    return StateMachine(
        frozenset(),
        {"write": write, "append": append, "remove": remove, "read": read},
    )


def file_spec() -> CommutativitySpec:
    """Appends commute; write/remove/read do not; paths scope items."""
    return CommutativitySpec(
        commutative_ops={"append"},
        item_of=lambda m: m.payload["path"] if m.payload else None,
    )


@dataclass(frozen=True)
class ReadResult:
    """One server's answer to a deferred read."""

    server: EntityId
    path: str
    content: str
    records: FrozenSet[str]
    stable_index: int


class FileService:
    """A group of file servers behind a typed client API."""

    def __init__(
        self,
        servers: Sequence[EntityId],
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        seed: int = 0,
    ) -> None:
        self.system = StablePointSystem(
            servers,
            file_machine,
            file_spec(),
            latency=latency,
            faults=faults,
            seed=seed,
        )
        self._read_results: List[ReadResult] = []

    # -- client operations ------------------------------------------------------

    def write(self, server: EntityId, path: str, content: str) -> MessageId:
        """Replace ``path``'s base content (a per-file sync point)."""
        return self.system.request(
            server, "write", {"path": path, "content": content}
        )

    def append(self, server: EntityId, path: str, record: str) -> MessageId:
        """Append a record to ``path`` (commutative)."""
        return self.system.request(
            server, "append", {"path": path, "record": record}
        )

    def remove(self, server: EntityId, path: str) -> MessageId:
        return self.system.request(server, "remove", {"path": path})

    def read(self, server: EntityId, path: str) -> MessageId:
        """Issue a read; every server's agreed answer is captured.

        Answers appear in :meth:`read_results` once the read's stable
        point is processed.
        """
        label = self.system.request(server, "read", {"path": path})
        for entity, replica in self.system.replicas.items():
            replica.read_at_next_stable_point(
                self._capture(entity, path)
            )
        return label

    def _capture(self, entity: EntityId, path: str):
        def callback(state: FsState, point: StablePoint) -> None:
            content, records = _as_dict(state).get(path, ("", frozenset()))
            self._read_results.append(
                ReadResult(entity, path, content, records, point.index)
            )

        return callback

    # -- operation ------------------------------------------------------------------

    def run(self) -> None:
        self.system.run()

    def read_results(self) -> List[ReadResult]:
        return list(self._read_results)

    # -- inspection -----------------------------------------------------------------

    def listing(self, server: EntityId) -> Dict[str, FileValue]:
        """The server's current (live) filesystem view."""
        return _as_dict(self.system.replicas[server].read_now())

    def file_at(self, server: EntityId, path: str) -> Optional[FileValue]:
        return self.listing(server).get(path)

    def converged(self) -> bool:
        states = [r.read_now() for r in self.system.replicas.values()]
        return all(s == states[0] for s in states[1:])
