"""Distributed conferencing — collaborative document annotation (§5.2).

"Distributed conferencing in which the participants collaboratively
annotate and/or modify a design document from their workstations" is the
paper's canonical *loosely coupled* application: operations are generated
spontaneously.  The document model here:

* ``annotate(paragraph, note)`` — adds a note to a paragraph.  Notes are a
  *set*, so annotations commute with everything except edits of the same
  paragraph: the quintessential commutative operation.
* ``edit(paragraph, text)`` — replaces a paragraph's text:
  non-commutative per paragraph (last write wins, so order matters).

Each participant's window converges with the others; edits act as
per-document synchronization points when issued through the front-end
discipline (they are non-commutative, so the Section 6.1 cycle applies).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.core.access_protocol import StablePointSystem
from repro.core.commutativity import CommutativitySpec
from repro.core.state_machine import StateMachine
from repro.net.latency import LatencyModel
from repro.types import EntityId, Message, MessageId

# Document state: frozenset of (paragraph, text, frozenset-of-notes).
Paragraph = Tuple[str, str, FrozenSet[str]]


def _as_dict(state: frozenset) -> Dict[str, Tuple[str, FrozenSet[str]]]:
    return {p: (text, notes) for p, text, notes in state}


def _as_state(doc: Dict[str, Tuple[str, FrozenSet[str]]]) -> frozenset:
    return frozenset(
        (p, text, notes) for p, (text, notes) in doc.items()
    )


def document_machine() -> StateMachine:
    """The shared design document."""

    def annotate(state: frozenset, message: Message) -> frozenset:
        doc = _as_dict(state)
        paragraph = message.payload["paragraph"]
        note = message.payload["note"]
        text, notes = doc.get(paragraph, ("", frozenset()))
        doc[paragraph] = (text, notes | {note})
        return _as_state(doc)

    def edit(state: frozenset, message: Message) -> frozenset:
        doc = _as_dict(state)
        paragraph = message.payload["paragraph"]
        text = message.payload["text"]
        _, notes = doc.get(paragraph, ("", frozenset()))
        doc[paragraph] = (text, notes)
        return _as_state(doc)

    return StateMachine(frozenset(), {"annotate": annotate, "edit": edit})


def document_spec() -> CommutativitySpec:
    """Annotations commute (set union); edits do not.

    Item scoping: operations on different paragraphs always commute.
    """
    return CommutativitySpec(
        commutative_ops={"annotate"},
        item_of=lambda m: m.payload["paragraph"] if m.payload else None,
    )


class ConferenceSystem:
    """Participants sharing one design document."""

    def __init__(
        self,
        participants: Sequence[EntityId],
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
    ) -> None:
        self.system = StablePointSystem(
            participants,
            document_machine,
            document_spec(),
            latency=latency,
            seed=seed,
        )

    # -- operations -----------------------------------------------------------

    def annotate(
        self, participant: EntityId, paragraph: str, note: str
    ) -> MessageId:
        return self.system.request(
            participant, "annotate", {"paragraph": paragraph, "note": note}
        )

    def edit(
        self, participant: EntityId, paragraph: str, text: str
    ) -> MessageId:
        return self.system.request(
            participant, "edit", {"paragraph": paragraph, "text": text}
        )

    def run(self) -> None:
        self.system.run()

    # -- windows --------------------------------------------------------------

    def window(
        self, participant: EntityId
    ) -> Dict[str, Tuple[str, FrozenSet[str]]]:
        """The participant's current view of the document."""
        return _as_dict(self.system.replicas[participant].read_now())

    def windows_converged(self) -> bool:
        states = [r.read_now() for r in self.system.replicas.values()]
        return all(s == states[0] for s in states[1:])
