"""Example applications from the paper's motivation sections."""

from repro.apps.card_game import CardGame, CardPlayer
from repro.apps.conference import (
    ConferenceSystem,
    document_machine,
    document_spec,
)
from repro.apps.file_service import FileService, file_machine, file_spec
from repro.apps.counter import (
    CounterService,
    multi_counter_machine,
    multi_counter_spec,
)
from repro.apps.kvstore import (
    KeyedFrontEnd,
    KVStoreSystem,
    kv_machine,
    kv_spec,
)
from repro.apps.lock_service import LockMember, LockService
from repro.apps.name_service import (
    NameServiceMember,
    NameServiceSystem,
    QueryAnswer,
)

__all__ = [
    "CardGame",
    "CardPlayer",
    "ConferenceSystem",
    "CounterService",
    "FileService",
    "KVStoreSystem",
    "KeyedFrontEnd",
    "LockMember",
    "LockService",
    "NameServiceMember",
    "NameServiceSystem",
    "QueryAnswer",
    "document_machine",
    "document_spec",
    "file_machine",
    "file_spec",
    "kv_machine",
    "kv_spec",
    "multi_counter_machine",
    "multi_counter_spec",
]
