"""Decentralized lock arbitration — the LOCK/TFR protocol of Section 6.2.

Access to a shared page is arbitrated without a lock server: in each
acquisition cycle ``S`` every member spontaneously broadcasts a
``[LOCK, a_i, S]`` request; the requests are totally ordered by ``ASend``;
"on receiving [a] specific predetermined number of LOCK messages, each
member executes an arbitration algorithm.  Since the algorithm is
deterministic, all the members choose the same next lock holder, thereby
ensuring consensus among members" — with **zero** extra agreement
messages.  Each holder accesses the page, then broadcasts ``[TFR, S]`` to
transfer the lock to the next member in the arbitration sequence; "after
the last member in the arbitration sequence has transferred the lock, the
next lock acquisition cycle (S+1) begins" (Figure 5).

Epoch layout per cycle ``S`` (with ``M`` members): epoch ``S*(M+1)``
carries the ``M`` concurrent LOCK requests; epochs ``S*(M+1)+1+j`` each
carry the single TFR of the ``j``-th holder.  The arbitration sequence is
a deterministic rotation of the member ranking by ``S``, so every member
eventually goes first.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.broadcast.asend import ASendTotalOrder
from repro.errors import ConfigurationError
from repro.group.membership import GroupMembership
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.types import Envelope, EntityId


class LockMember:
    """One member of the arbitration group."""

    def __init__(self, service: "LockService", protocol: ASendTotalOrder) -> None:
        self.service = service
        self.protocol = protocol
        self.holder_log: List[EntityId] = []  # who held the lock, in order
        self.page: List[str] = []  # the shared page, edit by edit
        self.acquisitions = 0
        self._locks_seen_in_cycle = 0
        self._current_sequence: List[EntityId] = []
        self._tfrs_seen_in_cycle = 0
        protocol.on_deliver(self._on_delivery)

    @property
    def entity_id(self) -> EntityId:
        return self.protocol.entity_id

    # -- issuing ----------------------------------------------------------

    def request_lock(self, cycle: int) -> None:
        epoch = cycle * (len(self.service.members_order) + 1)
        self.protocol.asend(
            "LOCK", {"member": self.entity_id, "cycle": cycle}, epoch=epoch
        )

    def _transfer(self, cycle: int, holder_index: int) -> None:
        epoch = cycle * (len(self.service.members_order) + 1) + 1 + holder_index
        # The TFR doubles as the holder's page edit (paper §6.2: the
        # holder "has completed page access" when it transfers): the edit
        # rides the totally ordered transfer, so every member applies the
        # same edits in the same order.
        self.protocol.asend(
            "TFR",
            {
                "member": self.entity_id,
                "cycle": cycle,
                "index": holder_index,
                "edit": self.service.page_edit(self.entity_id, cycle),
            },
            epoch=epoch,
        )

    # -- delivery ----------------------------------------------------------

    def _on_delivery(self, envelope: Envelope) -> None:
        operation = envelope.message.operation
        if operation == "LOCK":
            self._on_lock(envelope)
        elif operation == "TFR":
            self._on_tfr(envelope)

    def _on_lock(self, envelope: Envelope) -> None:
        cycle = envelope.message.payload["cycle"]
        self._locks_seen_in_cycle += 1
        if self._locks_seen_in_cycle == len(self.service.members_order):
            # All LOCKs of the cycle delivered: arbitrate deterministically.
            self._locks_seen_in_cycle = 0
            self._current_sequence = self.service.arbitration_sequence(cycle)
            self._grant(cycle, holder_index=0)

    def _grant(self, cycle: int, holder_index: int) -> None:
        holder = self._current_sequence[holder_index]
        self.holder_log.append(holder)
        if holder == self.entity_id:
            self.acquisitions += 1
            self.service.note_acquisition(holder, cycle, self.protocol.now)
            # Access the page, then transfer.
            self.protocol.scheduler.call_in(
                self.service.access_time, self._transfer, cycle, holder_index
            )

    def _on_tfr(self, envelope: Envelope) -> None:
        cycle = envelope.message.payload["cycle"]
        index = envelope.message.payload["index"]
        edit = envelope.message.payload.get("edit")
        if edit is not None:
            self.page.append(edit)
        self._tfrs_seen_in_cycle += 1
        members = self.service.members_order
        if index + 1 < len(members):
            self._grant(cycle, holder_index=index + 1)
            return
        # Last TFR of the cycle: start the next cycle, if any remain.
        self._tfrs_seen_in_cycle = 0
        if cycle + 1 < self.service.cycles:
            self.request_lock(cycle + 1)


class LockService:
    """The full arbitration group plus measurement hooks."""

    def __init__(
        self,
        members: Sequence[EntityId],
        cycles: int = 1,
        access_time: float = 0.5,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
    ) -> None:
        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        if len(members) < 2:
            raise ConfigurationError("arbitration needs at least two members")
        self.members_order = list(members)
        self.cycles = cycles
        self.access_time = access_time
        self.scheduler = Scheduler()
        self.rng = RngRegistry(seed)
        self.network = Network(self.scheduler, latency=latency, rng=self.rng)
        membership = GroupMembership(members)
        group_size = len(self.members_order)

        def expected(epoch: int) -> int:
            return group_size if epoch % (group_size + 1) == 0 else 1

        self.members: Dict[EntityId, LockMember] = {}
        for entity in members:
            protocol = ASendTotalOrder(
                entity, membership, expected_per_epoch=expected
            )
            self.network.register(protocol)
            self.members[entity] = LockMember(self, protocol)
        self.acquisition_times: List[tuple[EntityId, int, float]] = []

    # -- the shared page ------------------------------------------------------------

    def page_edit(self, holder: EntityId, cycle: int) -> str:
        """The edit a holder applies during its page access."""
        return f"{holder}@{cycle}"

    def page_copies(self) -> Dict[EntityId, List[str]]:
        """Each member's copy of the shared page, in applied order."""
        return {e: list(m.page) for e, m in self.members.items()}

    def pages_identical(self) -> bool:
        """Mutual-exclusion consequence: all page copies match exactly."""
        pages = list(self.page_copies().values())
        return all(page == pages[0] for page in pages[1:])

    # -- deterministic arbitration ------------------------------------------------

    def arbitration_sequence(self, cycle: int) -> List[EntityId]:
        """Rotation of the member ranking by the cycle number.

        Purely a function of shared knowledge (view ranking + cycle), so
        every member computes the same sequence — the paper's
        "deterministic arbitration algorithm".
        """
        size = len(self.members_order)
        offset = cycle % size
        return [
            self.members_order[(offset + i) % size] for i in range(size)
        ]

    # -- running --------------------------------------------------------------------

    def run(self) -> None:
        """Issue cycle-0 LOCK requests everywhere and drain the simulation."""
        for member in self.members.values():
            member.request_lock(0)
        self.scheduler.run()

    def note_acquisition(
        self, holder: EntityId, cycle: int, time: float
    ) -> None:
        self.acquisition_times.append((holder, cycle, time))

    # -- analysis -------------------------------------------------------------------

    def holder_logs(self) -> Dict[EntityId, List[EntityId]]:
        return {e: list(m.holder_log) for e, m in self.members.items()}

    def consensus_reached(self) -> bool:
        """Did every member compute the identical holder sequence?"""
        logs = list(self.holder_logs().values())
        return all(log == logs[0] for log in logs[1:])

    def expected_total_acquisitions(self) -> int:
        return self.cycles * len(self.members_order)

    def total_acquisitions(self) -> int:
        return sum(m.acquisitions for m in self.members.values())
