"""Distributed name service — the application-specific protocol of §5.2.

Registrations (``upd``) and resolutions (``qry``) "may occur independently
on a name repository" — spontaneous messages.  Instead of paying for total
ordering, the application tolerates relaxed (causal) ordering and detects
the rare inconsistency itself: "the query operation carries sufficient
context information in terms of the ordering of [the updates]", and a
query whose answer could differ across members "should [be] discard[ed]".

Concretely, a query carries the *ordered sequence* of update labels its
issuer had seen for the queried name (the paper: "sufficient context
information in terms of the ordering of upd1 and upd2").  Causal delivery
guarantees every member has those updates before answering; a member
whose own update sequence for the name differs from the context — extra
concurrent updates, or the same updates applied in a different order —
may answer differently from other members, so it flags the answer stale
for the application to discard/retry.  Sequence (not set) comparison
matters: two members can hold the same update *set* applied in different
orders and still return different values.

:class:`NameServiceSystem` runs the same workload over either engine:

* ``engine="causal"`` — CBCAST + application-level staleness detection,
* ``engine="total"``  — sequencer total order, no inconsistency possible
  (the Figure 4 alternative), at higher message cost and latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.broadcast.base import BroadcastProtocol
from repro.broadcast.cbcast import CbcastBroadcast
from repro.broadcast.sequencer import SequencerTotalOrder
from repro.errors import ConfigurationError
from repro.group.membership import GroupMembership
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.types import Envelope, EntityId, MessageId


@dataclass(frozen=True)
class QueryAnswer:
    """One member's answer to one query."""

    member: EntityId
    query: MessageId
    name: str
    value: Optional[str]
    stale: bool
    extra_updates: frozenset
    reordered: bool


class NameServiceMember:
    """One replica of the name registry with app-level staleness checks."""

    def __init__(self, protocol: BroadcastProtocol) -> None:
        self.protocol = protocol
        self.registry: Dict[str, str] = {}
        # Update labels delivered here, per name, in delivery order.
        self.seen_updates: Dict[str, List[MessageId]] = {}
        self.answers: List[QueryAnswer] = []
        self.stale_answers = 0
        protocol.on_deliver(self._on_delivery)

    @property
    def entity_id(self) -> EntityId:
        return self.protocol.entity_id

    # -- issuing ---------------------------------------------------------

    def update(self, name: str, value: str) -> MessageId:
        """Register/overwrite a binding (spontaneous broadcast)."""
        return self.protocol.bcast("upd", {"name": name, "value": value})

    def query(self, name: str) -> MessageId:
        """Resolve a name, carrying the issuer's ordered update context."""
        context = tuple(self.seen_updates.get(name, ()))
        return self.protocol.bcast(
            "qry", {"name": name, "context": context}
        )

    # -- delivery ----------------------------------------------------------

    def _on_delivery(self, envelope: Envelope) -> None:
        operation = envelope.message.operation
        if operation == "upd":
            self._apply_update(envelope)
        elif operation == "qry":
            self._answer_query(envelope)

    def _apply_update(self, envelope: Envelope) -> None:
        name = envelope.message.payload["name"]
        value = envelope.message.payload["value"]
        self.registry[name] = value
        self.seen_updates.setdefault(name, []).append(envelope.msg_id)

    def _answer_query(self, envelope: Envelope) -> None:
        name = envelope.message.payload["name"]
        context = tuple(envelope.message.payload["context"])
        local = tuple(self.seen_updates.get(name, ()))
        extra = frozenset(set(local) - set(context))
        # Stale when the member's update history for the name is not the
        # exact sequence the issuer saw: extra updates, or a different
        # interleaving of the same concurrent updates.
        stale = local != context
        reordered = stale and not extra
        if stale:
            self.stale_answers += 1
        self.answers.append(
            QueryAnswer(
                member=self.entity_id,
                query=envelope.msg_id,
                name=name,
                value=self.registry.get(name),
                stale=stale,
                extra_updates=extra,
                reordered=reordered,
            )
        )


class NameServiceSystem:
    """A group of name-service members over a chosen ordering engine."""

    ENGINES = ("causal", "total")

    def __init__(
        self,
        members: Sequence[EntityId],
        engine: str = "causal",
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        seed: int = 0,
    ) -> None:
        if engine not in self.ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; pick from {self.ENGINES}"
            )
        self.engine = engine
        self.scheduler = Scheduler()
        self.rng = RngRegistry(seed)
        self.network = Network(
            self.scheduler, latency=latency, faults=faults, rng=self.rng
        )
        self.membership = GroupMembership(members)
        factory = CbcastBroadcast if engine == "causal" else SequencerTotalOrder
        self.members: Dict[EntityId, NameServiceMember] = {}
        for entity in members:
            protocol = factory(entity, self.membership)
            self.network.register(protocol)
            self.members[entity] = NameServiceMember(protocol)

    def run(self) -> None:
        self.scheduler.run()

    # -- analysis -------------------------------------------------------------

    def answers_by_query(self) -> Dict[MessageId, List[QueryAnswer]]:
        grouped: Dict[MessageId, List[QueryAnswer]] = {}
        for member in self.members.values():
            for answer in member.answers:
                grouped.setdefault(answer.query, []).append(answer)
        return grouped

    def inconsistent_queries(self) -> List[MessageId]:
        """Queries whose members returned differing values."""
        inconsistent = []
        for query, answers in self.answers_by_query().items():
            values = {a.value for a in answers}
            if len(values) > 1:
                inconsistent.append(query)
        return inconsistent

    def flagged_queries(self) -> List[MessageId]:
        """Queries flagged stale by at least one member."""
        return [
            query
            for query, answers in self.answers_by_query().items()
            if any(a.stale for a in answers)
        ]

    def total_stale_answers(self) -> int:
        return sum(m.stale_answers for m in self.members.values())
