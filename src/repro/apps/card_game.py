"""Multiplayer card game — the relaxed-ordering example of Section 5.1.

Players share a window showing every card played; players take turns in a
fixed seating sequence, but "an action of the l-th player does not depend
on the action of the preceding (l-1)-th player but on that of some other
player k" further back::

    card_k ≺ card_l   and   ‖{card_l, card_i}  for  i = k+1 .. l-1

With *dependency distance* ``d``, the card at global turn ``t`` depends
only on the card at turn ``t - d``; cards at intermediate turns are
concurrent with it.  ``d = 1`` is the strict turn order (a total chain,
zero concurrency); larger ``d`` relaxes the order and the paper predicts
"higher concurrency".

Each player issues its card as soon as its dependency is delivered
locally (plus a think time), so wall-clock completion directly reflects
how much the ordering lets players overlap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.broadcast.osend import OSendBroadcast
from repro.errors import ConfigurationError
from repro.graph.depgraph import DependencyGraph
from repro.graph.stability import concurrent_pairs
from repro.group.membership import GroupMembership
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.types import Envelope, EntityId, MessageId


class CardPlayer:
    """One player: issues its turns when their dependencies arrive."""

    def __init__(self, game: "CardGame", protocol: OSendBroadcast) -> None:
        self.game = game
        self.protocol = protocol
        self.window: List[int] = []  # turns seen, in local delivery order
        self._played: set[int] = set()
        protocol.on_deliver(self._on_delivery)

    @property
    def entity_id(self) -> EntityId:
        return self.protocol.entity_id

    def play_turn(self, turn: int, after: Optional[MessageId]) -> None:
        if turn in self._played:
            return
        self._played.add(turn)
        label = self.protocol.osend(
            "card", {"turn": turn, "player": self.entity_id},
            occurs_after=after,
        )
        self.game.turn_labels[turn] = label

    def _on_delivery(self, envelope: Envelope) -> None:
        turn = envelope.message.payload["turn"]
        self.window.append(turn)
        self.game.note_delivery(turn, envelope.msg_id, self.entity_id)
        # Do any of my future turns depend on this card?
        for my_turn in self.game.turns_owned_by(self.entity_id):
            if my_turn in self._played:
                continue
            dependency = my_turn - self.game.dependency_distance
            if dependency == turn:
                self.game.scheduler.call_in(
                    self.game.think_time,
                    self.play_turn,
                    my_turn,
                    envelope.msg_id,
                )


class CardGame:
    """A full game: seating, turn schedule, dependency structure."""

    def __init__(
        self,
        players: Sequence[EntityId],
        rounds: int,
        dependency_distance: int = 1,
        think_time: float = 0.1,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
    ) -> None:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        if dependency_distance < 1:
            raise ConfigurationError(
                f"dependency_distance must be >= 1, got {dependency_distance}"
            )
        self.players_order = list(players)
        self.rounds = rounds
        self.dependency_distance = dependency_distance
        self.think_time = think_time
        self.scheduler = Scheduler()
        self.rng = RngRegistry(seed)
        self.network = Network(self.scheduler, latency=latency, rng=self.rng)
        membership = GroupMembership(players)
        self.players: Dict[EntityId, CardPlayer] = {}
        for entity in players:
            protocol = OSendBroadcast(entity, membership)
            self.network.register(protocol)
            self.players[entity] = CardPlayer(self, protocol)
        self.turn_labels: Dict[int, MessageId] = {}
        self.delivery_times: Dict[int, float] = {}  # first full delivery
        self._deliveries_per_turn: Dict[int, int] = {}
        self.completion_time: Optional[float] = None

    # -- schedule ------------------------------------------------------------

    @property
    def total_turns(self) -> int:
        return self.rounds * len(self.players_order)

    def owner_of(self, turn: int) -> EntityId:
        return self.players_order[turn % len(self.players_order)]

    def turns_owned_by(self, entity: EntityId) -> List[int]:
        return [
            t for t in range(self.total_turns) if self.owner_of(t) == entity
        ]

    # -- running ---------------------------------------------------------------

    def play(self) -> None:
        """Run the game to completion."""
        # Turns with no dependency start immediately.
        for turn in range(min(self.dependency_distance, self.total_turns)):
            owner = self.players[self.owner_of(turn)]
            self.scheduler.call_in(
                self.think_time, owner.play_turn, turn, None
            )
        self.scheduler.run()
        if len(self.delivery_times) == self.total_turns:
            self.completion_time = self.scheduler.now

    def note_delivery(
        self, turn: int, label: MessageId, entity: EntityId
    ) -> None:
        count = self._deliveries_per_turn.get(turn, 0) + 1
        self._deliveries_per_turn[turn] = count
        if count == len(self.players_order):
            self.delivery_times[turn] = self.scheduler.now

    # -- analysis ----------------------------------------------------------------

    def dependency_graph(self) -> DependencyGraph:
        """The game's card graph, as extracted by the first player."""
        first = self.players[self.players_order[0]]
        return first.protocol.graph

    def concurrency_degree(self) -> int:
        """Number of concurrent card pairs in the extracted graph."""
        return len(concurrent_pairs(self.dependency_graph()))

    def concurrency_width(self) -> int:
        """Largest set of mutually concurrent cards (exact antichain).

        The most cards that can ever be simultaneously in flight — d-1
        for dependency distance d once the game is in steady state.
        """
        from repro.graph.antichain import width

        return width(self.dependency_graph())

    def all_windows_converged(self) -> bool:
        """Did every player end up seeing every card?"""
        expected = set(range(self.total_turns))
        return all(
            set(player.window) == expected for player in self.players.values()
        )
