"""Replicated key-value store with item-scoped ordering.

Demonstrates Section 5.1's point that stability "relates to decomposition
of the data into distinct items and scoping out the effects of messages on
these items": writes to *different* keys commute and stay concurrent;
writes to the *same* key are chained causally (last-writer order is the
declared order); a read of a key occurs after every outstanding write the
issuer knows for that key.

The per-key chaining is a finer ordering policy than the category-based
:class:`~repro.core.frontend.FrontEndManager`, so the store carries its
own :class:`KeyedFrontEnd` — an example of building new ordering
disciplines on the ``OSend`` primitive.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.broadcast.osend import OSendBroadcast
from repro.core.commutativity import CommutativitySpec
from repro.core.state_machine import StateMachine
from repro.graph.predicates import OccursAfter
from repro.group.membership import GroupMembership
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.types import Envelope, EntityId, Message, MessageId


def kv_machine() -> StateMachine:
    """State: immutable frozenset of (key, value) pairs."""

    def put(state: frozenset, message: Message) -> frozenset:
        entries = {k: v for k, v in state}
        entries[message.payload["key"]] = message.payload["value"]
        return frozenset(entries.items())

    def delete(state: frozenset, message: Message) -> frozenset:
        entries = {k: v for k, v in state}
        entries.pop(message.payload["key"], None)
        return frozenset(entries.items())

    def get(state: frozenset, message: Message) -> frozenset:
        return state

    return StateMachine(frozenset(), {"put": put, "del": delete, "get": get})


def kv_spec() -> CommutativitySpec:
    """puts/deletes on different keys commute; same key conflicts.

    ``get`` is never commutative (it is a synchronization point for its
    key), expressed by the extra rule.
    """

    def rule(a: Message, b: Message) -> Optional[bool]:
        if a.payload["key"] != b.payload["key"]:
            return True
        if "get" in (a.operation, b.operation):
            return False
        return None

    return CommutativitySpec(commutative_ops=set(), extra_rule=rule)


def fold_ledger(records: Iterable) -> Dict[str, object]:
    """Fold issue-ordered ledger records into key/value state.

    The single place the store's write semantics live for readers that
    work off the cluster ledger rather than a replica's live state: the
    stable-point barrier (:mod:`repro.shard.barrier`) folds its snapshot
    cut through this, and the serving layer's session-local ``get`` fast
    path folds a session's causal past the same way — both therefore
    agree with :func:`kv_machine`'s ``put`` by construction.

    ``records`` are :class:`~repro.shard.ledger.OpRecord`-shaped objects
    (``kind``/``value`` attributes) already sorted by issue index; kinds
    other than ``put``/``migrate`` are control traffic and fold to
    nothing.
    """
    machine = kv_machine()
    state = machine.initial_state
    for record in records:
        if record.kind == "put":
            state = machine.apply(
                state, Message(record.label, "put", record.value)
            )
        elif record.kind == "migrate":
            entries = {key: value for key, value in state}
            entries.update(record.value["entries"])
            state = frozenset(entries.items())
    return dict(state)


class KeyedFrontEnd:
    """Per-key causal chaining over ``OSend``.

    Tracks, per key, the labels of writes not yet covered by a later
    operation on the same key; chains same-key writes; AND-depends reads
    on all known outstanding writes to their key.
    """

    def __init__(self, protocol: OSendBroadcast) -> None:
        self._protocol = protocol
        self._last_write: Dict[str, MessageId] = {}
        protocol.on_deliver(self._on_delivery)

    def put(self, key: str, value: object) -> MessageId:
        label = self._protocol.osend(
            "put",
            {"key": key, "value": value},
            occurs_after=self._last_write.get(key),
        )
        self._last_write[key] = label
        return label

    def delete(self, key: str) -> MessageId:
        label = self._protocol.osend(
            "del", {"key": key}, occurs_after=self._last_write.get(key)
        )
        self._last_write[key] = label
        return label

    def get(self, key: str) -> MessageId:
        return self._protocol.osend(
            "get", {"key": key}, occurs_after=self._last_write.get(key)
        )

    def _on_delivery(self, envelope: Envelope) -> None:
        """Learn about other front-ends' writes from delivered traffic."""
        if envelope.message.operation not in ("put", "del"):
            return
        if envelope.msg_id.sender == self._protocol.entity_id:
            return
        key = envelope.message.payload["key"]
        self._last_write[key] = envelope.msg_id


class KVStoreSystem:
    """A replicated key-value store over ``OSend``."""

    def __init__(
        self,
        members: Sequence[EntityId],
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
    ) -> None:
        self.scheduler = Scheduler()
        self.rng = RngRegistry(seed)
        self.network = Network(self.scheduler, latency=latency, rng=self.rng)
        membership = GroupMembership(members)
        self.machine = kv_machine()
        self.spec = kv_spec()
        self.protocols: Dict[EntityId, OSendBroadcast] = {}
        self.frontends: Dict[EntityId, KeyedFrontEnd] = {}
        self._states: Dict[EntityId, frozenset] = {}
        for entity in members:
            protocol = OSendBroadcast(entity, membership)
            self.network.register(protocol)
            self.protocols[entity] = protocol
            self.frontends[entity] = KeyedFrontEnd(protocol)
            self._states[entity] = self.machine.initial_state
            protocol.on_deliver(self._make_applier(entity))

    def _make_applier(self, entity: EntityId):
        def apply(envelope: Envelope) -> None:
            self._states[entity] = self.machine.apply(
                self._states[entity], envelope.message
            )

        return apply

    # -- convenience API -------------------------------------------------------

    def put(self, member: EntityId, key: str, value: object) -> MessageId:
        return self.frontends[member].put(key, value)

    def delete(self, member: EntityId, key: str) -> MessageId:
        return self.frontends[member].delete(key)

    def get(self, member: EntityId, key: str) -> MessageId:
        return self.frontends[member].get(key)

    def run(self) -> None:
        self.scheduler.run()

    # -- inspection ----------------------------------------------------------------

    def value_at(self, member: EntityId, key: str) -> Optional[object]:
        return dict(self._states[member]).get(key)

    def states(self) -> Dict[EntityId, frozenset]:
        return dict(self._states)

    def converged(self) -> bool:
        states = list(self._states.values())
        return all(s == states[0] for s in states[1:])
