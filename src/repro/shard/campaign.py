"""Seeded sharded chaos campaigns.

:func:`sharded_campaign` lays out per-shard disturbances (each fault
event targets one replication group), cross-shard session traffic, and
optionally one slot rebalance placed *inside* a crash window on the
moving slot's source shard — the overlap the acceptance battery cares
about: a drain barrier racing a dead contact, sessions waiting out the
frozen slot, and the cutover handoff all under churn.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence, Tuple

from repro.chaos.campaign import ChaosCampaign, ChaosEvent
from repro.errors import ConfigurationError
from repro.shard.map import ShardMap
from repro.types import EntityId

#: Disturbance kinds the sharded generator can draw from.
SHARDED_DISTURBANCES = ("crash", "partition", "loss", "dup", "churn")


def sharded_campaign(
    shard_map: ShardMap,
    shard_members: Mapping[int, Sequence[EntityId]],
    seed: int,
    *,
    sessions: int = 4,
    ops_per_session: int = 12,
    cross_fraction: float = 0.5,
    read_fraction: float = 0.2,
    disturbances: Sequence[str] = ("crash", "partition", "loss"),
    rebalance: bool = True,
) -> ChaosCampaign:
    """Generate a seeded campaign over a sharded cluster.

    Each session has a *home* shard; ``cross_fraction`` of its writes
    target a uniformly random shard instead (keys are sampled to route
    there under the initial map), and ``read_fraction`` of its
    operations are two-shard barrier reads.  Fault events carry
    ``(shard, arg)`` so the runner dispatches them to one group.

    With ``rebalance`` and >= 2 shards, one slot move is scheduled; if
    the campaign has a crash window, the move starts mid-window on the
    crashed member's shard — rebalance overlapping a crash.
    """
    if not 0.0 <= cross_fraction <= 1.0:
        raise ConfigurationError("cross_fraction must be in [0, 1]")
    if not 0.0 <= read_fraction <= 1.0:
        raise ConfigurationError("read_fraction must be in [0, 1]")
    shards = sorted(shard_members)
    if shards != list(range(shard_map.num_shards)):
        raise ConfigurationError(
            "shard_members must cover exactly the map's shards"
        )
    unknown = set(disturbances) - set(SHARDED_DISTURBANCES)
    if unknown:
        raise ConfigurationError(f"unknown disturbances: {sorted(unknown)}")
    rng = random.Random(seed)
    events = []
    cursor = 4.0
    crash_windows: list = []  # (start, end, shard)
    kinds = list(disturbances)
    rng.shuffle(kinds)
    for kind in kinds:
        shard = rng.choice(shards)
        members = list(shard_members[shard])
        if kind in ("crash", "churn"):
            member = rng.choice(members)
            downtime = rng.uniform(8.0, 14.0)
            start_action = "crash" if kind == "crash" else "remove"
            end_action = "restart" if kind == "crash" else "rejoin"
            events.append(ChaosEvent(
                round(cursor, 2), start_action, (shard, member)
            ))
            events.append(ChaosEvent(
                round(cursor + downtime, 2), end_action, (shard, member)
            ))
            crash_windows.append((cursor, cursor + downtime, shard))
            cursor += downtime * rng.uniform(0.4, 0.7)
        elif kind == "partition":
            rng.shuffle(members)
            cut = rng.randint(1, len(members) - 1)
            groups = (tuple(members[:cut]), tuple(members[cut:]))
            heal_after = rng.uniform(5.0, 9.0)
            events.append(ChaosEvent(
                round(cursor, 2), "partition", (shard, groups)
            ))
            events.append(ChaosEvent(
                round(cursor + heal_after, 2), "heal", (shard, None)
            ))
            cursor += heal_after + rng.uniform(3.0, 6.0)
        elif kind == "loss":
            phase = rng.uniform(8.0, 12.0)
            events.append(ChaosEvent(
                round(cursor, 2), "loss",
                (shard, round(rng.uniform(0.05, 0.2), 3)),
            ))
            events.append(ChaosEvent(
                round(cursor + phase, 2), "loss", (shard, 0.0)
            ))
            cursor += phase + rng.uniform(3.0, 6.0)
        elif kind == "dup":
            phase = rng.uniform(6.0, 10.0)
            events.append(ChaosEvent(
                round(cursor, 2), "dup",
                (shard, round(rng.uniform(0.1, 0.3), 3)),
            ))
            events.append(ChaosEvent(
                round(cursor + phase, 2), "dup", (shard, 0.0)
            ))
            cursor += phase + rng.uniform(3.0, 6.0)
    if rebalance and shard_map.num_shards >= 2:
        if crash_windows:
            start, end, source = crash_windows[0]
            when = round(start + (end - start) * 0.4, 2)
        else:
            source = rng.choice(shards)
            when = round(cursor, 2)
            cursor += 4.0
        slot = rng.choice(shard_map.slots_of(source))
        dest = rng.choice([s for s in shards if s != source])
        events.append(ChaosEvent(when, "rebalance", (slot, dest)))
    tail = max([cursor] + [event.time for event in events])
    duration = tail + 10.0
    counter = 0
    for index in range(sessions):
        session = f"sess{index}"
        home = shards[index % len(shards)]
        for _ in range(ops_per_session):
            when = round(rng.uniform(0.5, duration - 8.0), 2)
            if rng.random() < read_fraction:
                if len(shards) >= 2:
                    touched = tuple(sorted(rng.sample(shards, 2)))
                else:
                    touched = (shards[0],)
                events.append(ChaosEvent(
                    when, "read", (session, touched)
                ))
            else:
                target = (
                    rng.choice(shards)
                    if rng.random() < cross_fraction
                    else home
                )
                key = shard_map.sample_key(target, rng)
                counter += 1
                events.append(ChaosEvent(
                    when, "op", (session, key, f"v{counter}")
                ))
    ordered: Tuple[ChaosEvent, ...] = tuple(
        event
        for _, _, event in sorted(
            (event.time, index, event) for index, event in enumerate(events)
        )
    )
    return ChaosCampaign(
        name=f"sharded-{seed}", events=ordered, duration=duration
    )
