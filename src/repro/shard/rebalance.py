"""Slot rebalancing: drain -> transfer -> cutover.

Moving a slot between replication groups without breaking causal
consistency takes three phases:

``drain``
    The router freezes the slot — sessions whose head operation targets
    it wait in place (preserving session order) — and a single-shard
    :class:`~repro.shard.barrier.StablePointBarrier` runs on the source
    group.  Its stable point fences every write the move must carry.

``transfer``
    The barrier's snapshot is restricted to the moving slot through
    :func:`repro.core.state_transfer.restrict_snapshot` — the same
    machinery late joiners bootstrap from, applied to a key range
    instead of a whole replica.

``cutover``
    A non-commutative ``migrate`` operation is broadcast on the
    *destination* group carrying the slot's entries, with ``cross_deps``
    = the moved labels (the migration is causally *after* everything it
    carries; the stamp makes that auditable).  Then the shard map is
    bumped, and the router unfreezes the slot with the migrate label as
    its *handoff dependency*: every later write to the slot — from any
    session, involved in the move or not — names the migrate record in
    its ``Occurs-After``, so no destination member can deliver a
    post-move write before the state it overwrites.

A rebalance that cannot finish (no contact reachable within the retry
budget) aborts: the slot unfreezes with the map unchanged, and the move
is recorded as ``aborted`` for the audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.state_transfer import Snapshot, restrict_snapshot
from repro.types import MessageId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.barrier import BarrierRead
    from repro.shard.cluster import ShardedCluster

#: One-second retries for the cutover broadcast before the move aborts.
MIGRATE_ATTEMPTS = 240


@dataclass
class MoveRecord:
    """One slot move, through its phases."""

    slot: int
    source: int
    dest: int
    started: float
    phase: str = "drain"  # drain | transfer | done | aborted
    migrate_label: Optional[MessageId] = None
    moved_labels: int = 0
    entries: int = 0
    cutover_time: Optional[float] = None
    #: Global issue index of the first post-cutover operation; the
    #: routing audit flags any later put for this slot that still went
    #: to the source group.
    cutover_index: Optional[int] = None


class Rebalancer:
    """Executes slot moves against a :class:`ShardedCluster`."""

    def __init__(self, cluster: "ShardedCluster") -> None:
        self.cluster = cluster
        self.moves: List[MoveRecord] = []

    def active(self) -> bool:
        return any(m.phase in ("drain", "transfer") for m in self.moves)

    # -- phases ------------------------------------------------------------

    def move_slot(self, slot: int, dest: int) -> MoveRecord:
        """Begin moving ``slot`` to shard ``dest`` (asynchronous)."""
        from repro.shard.barrier import StablePointBarrier

        cluster = self.cluster
        source = cluster.shard_map.shard_for_slot(slot)
        record = MoveRecord(
            slot=slot, source=source, dest=dest, started=cluster.scheduler.now
        )
        self.moves.append(record)
        if source == dest:
            record.phase = "done"
            record.cutover_time = cluster.scheduler.now
            record.cutover_index = len(cluster.issue_order)
            return record
        cluster.router.freeze_slot(slot)
        StablePointBarrier(
            cluster,
            (source,),
            on_complete=lambda read, record=record: self._transfer(
                record, read
            ),
            session=f"rebalance-{slot}.{len(self.moves)}",
        ).start()
        return record

    def _transfer(
        self, record: MoveRecord, read: Optional["BarrierRead"]
    ) -> None:
        cluster = self.cluster
        if read is None:
            record.phase = "aborted"
            cluster.router.unfreeze_slot(record.slot)
            return
        record.phase = "transfer"
        covered = read.covered[record.source]
        full = Snapshot(
            state=dict(read.value),
            covered=frozenset(covered),
            donor=f"shard{record.source}",
            stable_index=record.slot,
        )
        moved = restrict_snapshot(
            full,
            select_key=lambda key: cluster.shard_map.slot_of(key)
            == record.slot,
            select_label=lambda label: cluster.ops[label].slot == record.slot,
        )
        record.moved_labels = len(moved.covered)
        record.entries = len(moved.state)
        self._cutover(record, moved, MIGRATE_ATTEMPTS)

    def _cutover(
        self, record: MoveRecord, moved: Snapshot, attempts: int
    ) -> None:
        cluster = self.cluster
        contact = cluster.contact(record.dest)
        label = None
        if contact is not None:
            # The moved writes may themselves causally follow earlier
            # destination-group writes (a session that wrote dest first,
            # then the moving slot).  The migrate record must be ordered
            # after that projected past too, or a destination member
            # could deliver the migration before state it depends on.
            deps = set(cluster.delivered_frontier(record.dest, contact))
            deps |= cluster.project(moved.covered, record.dest)
            label = cluster.shard_send(
                record.dest,
                "migrate",
                {
                    "slot": record.slot,
                    "entries": dict(moved.state),
                    "from": record.source,
                },
                occurs_after=cluster.maximal(deps),
                cross_deps=cluster.maximal(moved.covered),
                session=None,
                slot=record.slot,
                preferred=contact,
            )
        if label is None:
            if attempts <= 0:
                record.phase = "aborted"
                cluster.router.unfreeze_slot(record.slot)
                return
            cluster.scheduler.call_in(
                1.0, self._cutover, record, moved, attempts - 1
            )
            return
        record.migrate_label = label
        record.phase = "done"
        record.cutover_time = cluster.scheduler.now
        record.cutover_index = cluster.ops[label].index + 1
        cluster.shard_map = cluster.shard_map.reassign(record.slot, record.dest)
        # Cached barrier snapshots for either side describe the pre-move
        # key->shard world (the moved slot's keys just changed home);
        # drop them rather than let a later read seed from a stale cut.
        cluster.invalidate_snapshots(record.source, record.dest)
        cluster.router.unfreeze_slot(record.slot, handoff=label)
