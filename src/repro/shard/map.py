"""Deterministic, versioned key -> shard assignment.

Keys hash onto a fixed ring of *slots* (CRC-32, stable across runs and
platforms); slots are assigned to shards.  Rebalancing reassigns one
slot at a time and bumps the map version — routers compare versions to
know a cutover happened, and every key's slot is permanent, so a move
relocates a well-defined key range.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ShardMap:
    """An immutable slot->shard table; ``reassign`` returns a successor."""

    num_shards: int
    num_slots: int = 64
    version: int = 0
    assignment: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError("a shard map needs >= 1 shard")
        if self.num_slots < self.num_shards:
            raise ConfigurationError(
                f"{self.num_slots} slot(s) cannot cover "
                f"{self.num_shards} shard(s)"
            )
        if not self.assignment:
            object.__setattr__(
                self,
                "assignment",
                tuple(slot % self.num_shards for slot in range(self.num_slots)),
            )
        if len(self.assignment) != self.num_slots:
            raise ConfigurationError(
                f"assignment covers {len(self.assignment)} of "
                f"{self.num_slots} slots"
            )
        for slot, shard in enumerate(self.assignment):
            if not 0 <= shard < self.num_shards:
                raise ConfigurationError(
                    f"slot {slot} assigned to unknown shard {shard}"
                )

    # -- lookups -----------------------------------------------------------

    def slot_of(self, key: str) -> int:
        """The key's permanent slot (stable across map versions)."""
        return zlib.crc32(key.encode("utf-8")) % self.num_slots

    def shard_for_slot(self, slot: int) -> int:
        if not 0 <= slot < self.num_slots:
            raise ConfigurationError(f"unknown slot {slot}")
        return self.assignment[slot]

    def shard_of(self, key: str) -> int:
        return self.assignment[self.slot_of(key)]

    def slots_of(self, shard: int) -> Tuple[int, ...]:
        """All slots currently assigned to ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(f"unknown shard {shard}")
        return tuple(
            slot for slot, owner in enumerate(self.assignment) if owner == shard
        )

    # -- evolution ---------------------------------------------------------

    def reassign(self, slot: int, to_shard: int) -> "ShardMap":
        """A successor map with ``slot`` owned by ``to_shard``."""
        if not 0 <= slot < self.num_slots:
            raise ConfigurationError(f"unknown slot {slot}")
        if not 0 <= to_shard < self.num_shards:
            raise ConfigurationError(f"unknown shard {to_shard}")
        assignment = list(self.assignment)
        assignment[slot] = to_shard
        return ShardMap(
            num_shards=self.num_shards,
            num_slots=self.num_slots,
            version=self.version + 1,
            assignment=tuple(assignment),
        )

    # -- workload support --------------------------------------------------

    def sample_key(self, shard: int, rng, prefix: str = "k") -> str:
        """A key that currently routes to ``shard`` (deterministic scan).

        ``rng`` picks the scan's starting point; the first matching key
        from there is returned, so the same registry stream reproduces
        the same workload.
        """
        if not self.slots_of(shard):
            raise ConfigurationError(f"shard {shard} owns no slots")
        start = rng.randrange(1_000_000)
        for offset in range(200_000):
            key = f"{prefix}{start + offset}"
            if self.shard_of(key) == shard:
                return key
        raise ConfigurationError(
            f"could not find a key for shard {shard}"
        )  # pragma: no cover - astronomically unlikely
