"""The cluster-wide operation ledger.

Each shard runs its *own* causal-broadcast group; no protocol instance
ever sees the whole object space.  The ledger is the sharded cluster's
external ground truth (mirroring what :class:`~repro.chaos.cluster.
ChaosCluster` records at ``app_send`` for a single group): one
:class:`OpRecord` per issued operation, holding both the in-group
``Occurs-After`` set and the cross-group dependency stamp, in global
issue order.  The invariant battery audits delivery logs against it, and
:class:`~repro.shard.barrier.StablePointBarrier` folds read values from
it — so reads survive store compaction and crashes without any
per-member key/value state machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.types import MessageId

#: Operation kinds that carry object-space data.  ``barrier`` is control
#: traffic: it synchronises but writes nothing.
DATA_KINDS = frozenset({"put", "migrate"})

#: Kinds that commute between stable points (paper Section 6): ``put``s
#: on distinct keys are independent; ``barrier`` and ``migrate`` are the
#: synchronization points themselves.
COMMUTATIVE_KINDS = frozenset({"put"})


@dataclass(frozen=True)
class OpRecord:
    """One issued operation, as recorded at send time.

    ``deps`` is the in-group ``Occurs-After`` AND-dependency the envelope
    carries; ``cross_deps`` the foreign labels stamped for audit (their
    in-group projections were already folded into ``deps`` by the
    router — see ``docs/SHARDING.md``).  ``index`` is the global issue
    ordinal; every dependency points at a lower index.
    """

    label: MessageId
    shard: int
    kind: str
    key: Optional[str]
    slot: Optional[int]
    value: object
    deps: FrozenSet[MessageId]
    cross_deps: FrozenSet[MessageId]
    session: Optional[str]
    index: int
    time: float
