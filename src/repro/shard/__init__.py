"""Sharded multi-group object space (see ``docs/SHARDING.md``).

Splits the object space across N independent causal-broadcast groups;
cross-shard causality is carried by application-declared ``Occurs-After``
ancestors (paper Section 3.1) projected per shard by the session layer,
consistent multi-shard reads ride stable-point barriers (Section 4), and
slot rebalancing reuses the state-transfer machinery.
"""

from repro.shard.barrier import BarrierRead, StablePointBarrier
from repro.shard.campaign import SHARDED_DISTURBANCES, sharded_campaign
from repro.shard.cluster import ShardedCluster, ShardedResult
from repro.shard.ledger import DATA_KINDS, OpRecord
from repro.shard.map import ShardMap
from repro.shard.rebalance import MoveRecord, Rebalancer
from repro.shard.router import Session, ShardRouter

__all__ = [
    "BarrierRead",
    "DATA_KINDS",
    "MoveRecord",
    "OpRecord",
    "Rebalancer",
    "SHARDED_DISTURBANCES",
    "Session",
    "ShardMap",
    "ShardRouter",
    "ShardedCluster",
    "ShardedResult",
    "StablePointBarrier",
    "sharded_campaign",
]
