"""Consistent multi-shard reads at stable points.

Section 4 of the paper makes stable points *locally detectable*: a
non-commutative message's ``Occurs-After`` cut is processed identically
at every member before the message itself is.  The barrier exploits
exactly that: for each touched shard it broadcasts a non-commutative
``barrier`` operation whose ``Occurs-After`` is a contact member's
current delivered frontier.  When the barrier delivers anywhere, causal
delivery guarantees its cut — the barrier's transitive causal past — is
settled in the same relative order at every member of that shard, so
the cut is a legal read snapshot with no extra agreement traffic
("without requiring separate message exchanges", Section 7).

Cross-shard closure: a covered write may carry ``cross_deps`` into
another *touched* shard whose cut does not cover them yet (the barriers
raced).  The barrier then issues a supplemental barrier on that shard
whose ``Occurs-After`` includes the missing labels, and re-checks —
bounded rounds, after which the union of cuts is closed under both
in-group and cross-group dependency edges restricted to the touched
shards: a causally consistent multi-shard snapshot.

The read *value* is folded from the cluster ledger (issue-order fold of
the covered writes), not from any member's live state — so reads are
insensitive to store compaction and crash amnesia.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.shard.ledger import DATA_KINDS
from repro.types import MessageId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.cluster import ShardedCluster

#: One-second retries per barrier broadcast before the read aborts.
BARRIER_ATTEMPTS = 240

#: Closure-extension rounds before the read aborts.  Each round can only
#: chase cross-dependencies of labels the previous round added, so real
#: workloads converge in one or two.
MAX_CLOSURE_ROUNDS = 8


@dataclass(frozen=True)
class BarrierRead:
    """The outcome of one stable-point barrier read."""

    session: Optional[str]
    shards: Tuple[int, ...]
    value: Dict[str, object]
    covered: Dict[int, FrozenSet[MessageId]]
    barrier_labels: Dict[int, Tuple[MessageId, ...]]
    rounds: int
    issued_at: float
    completed_at: float

    @property
    def labels(self) -> FrozenSet[MessageId]:
        """Every data label the snapshot covers, across shards."""
        return frozenset(
            label for cut in self.covered.values() for label in cut
        )


class StablePointBarrier:
    """One in-flight barrier read across a set of shards."""

    def __init__(
        self,
        cluster: "ShardedCluster",
        shards: Sequence[int],
        on_complete: Callable[[Optional[BarrierRead]], None],
        session: Optional[str] = None,
        baseline: Optional[Dict[int, FrozenSet[MessageId]]] = None,
        cross: Optional[Dict[int, FrozenSet[MessageId]]] = None,
        max_rounds: int = MAX_CLOSURE_ROUNDS,
    ) -> None:
        self.cluster = cluster
        self.shards: Tuple[int, ...] = tuple(dict.fromkeys(shards))
        self.on_complete = on_complete
        self.session = session
        #: Per-shard labels the barrier must cover regardless of what the
        #: contact has delivered — the issuing session's frontier, so a
        #: read observes the session's own writes (session order demands
        #: it, and the cross-shard audit checks it).
        self.baseline: Dict[int, FrozenSet[MessageId]] = {
            shard: frozenset((baseline or {}).get(shard, frozenset()))
            for shard in self.shards
        }
        #: The issuing session's *full* per-shard frontier.  Each barrier
        #: label stamps the other shards' part as ``cross_deps`` so the
        #: global graph records the session-order edge "earlier op ≺ this
        #: barrier" — without it, another session covering this barrier
        #: through a contact's delivered frontier would absorb a causal
        #: past with the issuing session's foreign writes missing, and
        #: its later writes would under-declare their Occurs-After.
        self._cross_frontier: Dict[int, FrozenSet[MessageId]] = {
            shard: frozenset(labels)
            for shard, labels in (cross or {}).items()
        }
        self.max_rounds = max_rounds
        self.covered: Dict[int, Set[MessageId]] = {s: set() for s in self.shards}
        #: Snapshot-cache entry for this touched-shard set, captured once
        #: so every shard that seeds does so from the *same* mutually
        #: closed read (the cluster replaces entries wholesale).
        self._cache_key = tuple(sorted(self.shards))
        self._cache_entry = cluster._snapshot_cache.get(self._cache_key)
        #: Shards whose cut/fold were seeded from the cache entry — their
        #: prefix labels skipped the closure scan.
        self._seeded: Set[int] = set()
        self._prefix_scanned = False
        #: Covered labels not yet closure-scanned.  A label's cross-deps
        #: are immutable, so once scanned (its missing deps forced into a
        #: supplemental barrier's Occurs-After, hence into a later cut)
        #: re-scanning it can never surface new work — each closure round
        #: therefore walks only the labels the latest deliveries added.
        self._unscanned: List[Tuple[int, MessageId]] = []
        #: shard -> key -> (issue index, value) of the newest covered
        #: write to the key on that shard, folded incrementally as cuts
        #: arrive.  Merging the per-shard folds by max index at
        #: completion is equivalent to the issue-order ``fold_ledger``
        #: over the union of cuts: ``put`` and ``migrate`` are
        #: last-writer-wins per key, so the fold is the max-index write
        #: of each key.  Kept per shard (not global) so a shard can seed
        #: its fold from the snapshot cache independently of the others.
        self._folded: Dict[int, Dict[str, Tuple[int, object]]] = {
            s: {} for s in self.shards
        }
        self._barrier_labels: Dict[int, List[MessageId]] = {
            s: [] for s in self.shards
        }
        self._waiting: Set[MessageId] = set()
        #: Issue obligations parked on a retry timer (contact down); the
        #: read must not complete while any touched shard is unfenced.
        self._retries = 0
        self._rounds = 0
        self._done = False
        self.issued_at = cluster.scheduler.now

    def start(self) -> None:
        self.cluster.barriers_started += 1
        for shard in self.shards:
            self._issue(shard, frozenset(), BARRIER_ATTEMPTS)

    # -- barrier issue / delivery ------------------------------------------

    def _issue(
        self, shard: int, extra: FrozenSet[MessageId], attempts: int
    ) -> None:
        if self._done:
            return
        cluster = self.cluster
        contact = cluster.contact(shard)
        label = None
        if contact is not None:
            deps = cluster.maximal(
                set(cluster.delivered_frontier(shard, contact))
                | set(self.baseline[shard])
                | set(extra)
            )
            cross: Set[MessageId] = set()
            for other, labels in self._cross_frontier.items():
                if other != shard:
                    cross |= labels
            label = cluster.shard_send(
                shard,
                "barrier",
                None,
                occurs_after=deps,
                cross_deps=cluster.maximal(cross),
                session=self.session,
                preferred=contact,
            )
        if label is None:
            if attempts <= 0:
                self._abort()
                return
            self._retries += 1
            cluster.scheduler.call_in(
                1.0, self._retry, shard, extra, attempts - 1
            )
            return
        self._barrier_labels[shard].append(label)
        self._waiting.add(label)
        cluster.watch(
            label,
            lambda _member, shard=shard, label=label: self._delivered(
                shard, label
            ),
        )

    def _retry(
        self, shard: int, extra: FrozenSet[MessageId], attempts: int
    ) -> None:
        self._retries -= 1
        self._issue(shard, extra, attempts)

    def _delivered(self, shard: int, label: MessageId) -> None:
        if self._done:
            return
        self._waiting.discard(label)
        cluster = self.cluster
        # The barrier label itself is control traffic, so the data cut is
        # its causal past restricted to this shard's writes — two set
        # intersections, no per-label kind lookups.
        past = cluster.graph.causal_past(label)
        entry = self._cache_entry
        if entry is not None and not self.covered[shard]:
            cached = entry.get(shard)
            if cached is not None and cached[0] in past:
                # The cached read's barrier is in this barrier's causal
                # past, so its cut (= past ∩ writes, zero-round reads
                # only) is a subset of ours: seed covered and the fold
                # from it and let `fresh` shrink to the delta.
                self.covered[shard] = set(cached[1])
                self._folded[shard] = dict(cached[2])
                self._seeded.add(shard)
        fresh = past & cluster.write_labels[shard]
        fresh -= self.covered[shard]
        if fresh:
            self.covered[shard] |= fresh
            ops = cluster.ops
            folded = self._folded[shard]
            for covered_label in fresh:
                record = ops[covered_label]
                if record.kind == "put":
                    key = record.value["key"]
                    entry = folded.get(key)
                    if entry is None or entry[0] < record.index:
                        folded[key] = (record.index, record.value["value"])
                else:  # migrate
                    for key, value in record.value["entries"].items():
                        entry = folded.get(key)
                        if entry is None or entry[0] < record.index:
                            folded[key] = (record.index, value)
                self._unscanned.append((shard, covered_label))
        if not self._waiting and not self._retries:
            self._check_closure()

    # -- cross-shard closure ----------------------------------------------

    def _check_closure(self) -> None:
        cluster = self.cluster
        touched = set(self.shards)
        missing: Dict[int, Set[MessageId]] = {}
        pending = self._unscanned
        self._unscanned = []
        for shard, label in pending:
            for dep in cluster.ops[label].cross_deps:
                dep_shard = cluster.shard_of_label.get(dep)
                if (
                    dep_shard in touched
                    and cluster.ops[dep].kind in DATA_KINDS
                    and dep not in self.covered[dep_shard]
                ):
                    missing.setdefault(dep_shard, set()).add(dep)
        if not missing:
            if (
                self._seeded
                and len(self._seeded) != len(self.shards)
                and not self._prefix_scanned
            ):
                # Partial seed: some touched shard's cut does not contain
                # the cached read's cut for it, so the mutual-closure
                # argument that lets seeded prefixes skip the scan does
                # not apply.  Scan them once the old way, then re-check.
                self._prefix_scanned = True
                entry = self._cache_entry
                self._unscanned.extend(
                    (shard, covered_label)
                    for shard in self._seeded
                    for covered_label in entry[shard][1]
                )
                self._check_closure()
                return
            self._complete()
            return
        self._rounds += 1
        if self._rounds > self.max_rounds:
            self._abort()
            return
        for shard, labels in sorted(missing.items()):
            self._issue(shard, frozenset(labels), BARRIER_ATTEMPTS)

    # -- completion --------------------------------------------------------

    def _complete(self) -> None:
        self._done = True
        cluster = self.cluster
        # The per-shard incremental folds hold the max-index write per
        # key on each shard; their max-index merge is what the
        # issue-order ``fold_ledger`` of the union of cuts reduces to
        # (puts and migrates are last-writer-wins).
        merged: Dict[str, Tuple[int, object]] = {}
        for folded in self._folded.values():
            for key, pair in folded.items():
                current = merged.get(key)
                if current is None or current[0] < pair[0]:
                    merged[key] = pair
        value = {key: pair[1] for key, pair in merged.items()}
        covered = {s: frozenset(c) for s, c in self.covered.items()}
        if self._rounds == 0 and all(
            len(labels) == 1 for labels in self._barrier_labels.values()
        ):
            # Exactly one barrier per shard means each cut is precisely
            # that barrier's causal past restricted to the shard's writes
            # — the shape the seeding domination test relies on — so this
            # read can serve as the next one's prefix.  The completed
            # read never mutates its folds again, so they are stored
            # as-is (seeding copies).
            cluster._snapshot_cache[self._cache_key] = {
                shard: (
                    self._barrier_labels[shard][0],
                    covered[shard],
                    self._folded[shard],
                )
                for shard in self.shards
            }
        read = BarrierRead(
            session=self.session,
            shards=self.shards,
            value=value,
            covered=covered,
            barrier_labels={
                s: tuple(labels) for s, labels in self._barrier_labels.items()
            },
            rounds=self._rounds,
            issued_at=self.issued_at,
            completed_at=cluster.scheduler.now,
        )
        cluster.barrier_reads.append(read)
        self.on_complete(read)

    def _abort(self) -> None:
        if self._done:
            return
        self._done = True
        self.cluster.reads_failed += 1
        self.on_complete(None)
