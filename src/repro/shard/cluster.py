"""N replication groups, one simulated timeline, one object space.

:class:`ShardedCluster` composes one fully wired
:class:`~repro.chaos.cluster.ChaosCluster` per shard — each its own
``OSend`` causal-broadcast group with recovery, GC, view-sync and
auto-membership, on its own network — all sharing a single
:class:`~repro.sim.scheduler.Scheduler`.  No ordering machinery spans
groups: cross-shard causality travels only as explicit ``Occurs-After``
ancestors injected by the session layer (:mod:`repro.shard.router`) and
as audit-only ``cross_deps`` stamps, which is exactly the paper's bet —
application-declared precedence needs no system-wide clocks.

The cluster keeps the global ground truth (:mod:`repro.shard.ledger`):
every issued operation, its dependency sets, and the global dependency
graph over both edge kinds.  On top of that ride the barrier reads
(:mod:`repro.shard.barrier`), slot moves (:mod:`repro.shard.rebalance`)
and the post-campaign audit: each group's full
:class:`~repro.analysis.invariants.InvariantMonitor` battery plus the
cross-shard causal-consistency check
(:class:`~repro.analysis.invariants.CrossShardChecker`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.invariants import CrossShardChecker, Violation
from repro.chaos.campaign import ChaosCampaign, ChaosEvent
from repro.chaos.cluster import MAX_EVENTS_PER_DRAIN, ChaosCluster
from repro.core.commutativity import CommutativitySpec
from repro.core.stable_points import StablePointDetector
from repro.errors import ConfigurationError, ProtocolError, SimulationError
from repro.graph.depgraph import DependencyGraph
from repro.net.latency import LatencyModel
from repro.shard.frontier import FrontierTracker
from repro.shard.ledger import COMMUTATIVE_KINDS, DATA_KINDS, OpRecord
from repro.shard.map import ShardMap
from repro.shard.rebalance import Rebalancer
from repro.shard.router import ShardRouter
from repro.sim.scheduler import Scheduler
from repro.types import EntityId, MessageId

if False:  # pragma: no cover - typing only
    from repro.shard.barrier import BarrierRead


@dataclass
class ShardedResult:
    """Outcome of one sharded campaign run."""

    name: str
    shards: int
    violations: List[Violation]
    ops: int
    ops_skipped: int
    reads: int
    reads_failed: int
    rebalances: int
    rebalances_aborted: int
    crashes: int
    restarts: int
    data_messages: int
    settle_rounds: int
    sim_time: float
    stable_points: Dict[EntityId, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"{self.name:<16s} shards={self.shards} {status:<16s} "
            f"ops={self.ops} skipped={self.ops_skipped} "
            f"reads={self.reads}/{self.reads + self.reads_failed} "
            f"moves={self.rebalances}"
            + (f"(-{self.rebalances_aborted})" if self.rebalances_aborted else "")
            + f" crashes={self.crashes} settle_rounds={self.settle_rounds} "
            f"t={self.sim_time:.1f}"
        )


class ShardedCluster:
    """A sharded object space over independent causal-broadcast groups."""

    def __init__(
        self,
        shards: int = 2,
        members_per_shard: int = 3,
        seed: int = 0,
        *,
        num_slots: int = 16,
        shard_ids: Optional[Iterable[int]] = None,
        latency: Optional[LatencyModel] = None,
        overlap: bool = False,
        auto_membership: bool = True,
        scan_interval: float = 2.0,
        nack_backoff: float = 4.0,
        hop_events: str = "full",
    ) -> None:
        if shards < 1:
            raise ConfigurationError("a sharded cluster needs >= 1 shard")
        self.scheduler = Scheduler()
        # The map always spans the full shard space, even when this
        # cluster hosts a subset (`shard_ids`): a multi-process worker
        # must route keys exactly like its siblings, and member names /
        # derived seeds stay identical to the full-cluster layout so a
        # hosted shard's group is bit-for-bit the same either way.
        self.shard_map = ShardMap(shards, num_slots=num_slots)
        if shard_ids is None:
            self.shard_ids: Tuple[int, ...] = tuple(range(shards))
        else:
            self.shard_ids = tuple(sorted(set(shard_ids)))
            if not self.shard_ids:
                raise ConfigurationError("shard_ids must name >= 1 shard")
            bad = [s for s in self.shard_ids if not 0 <= s < shards]
            if bad:
                raise ConfigurationError(
                    f"shard_ids {bad} outside range 0..{shards - 1}"
                )
        self.groups: Dict[int, ChaosCluster] = {}
        self.shard_of_member: Dict[EntityId, int] = {}
        for shard in self.shard_ids:
            members = tuple(
                f"s{shard}n{index}" for index in range(members_per_shard)
            )
            # Distinct derived seeds: each group gets its own RNG registry
            # (shared streams would entangle the shards' latency draws).
            group = ChaosCluster(
                protocol="osend",
                members=members,
                seed=seed * 1_000_003 + shard,
                latency=latency,
                scan_interval=scan_interval,
                nack_backoff=nack_backoff,
                overlap=overlap,
                auto_membership=auto_membership,
                scheduler=self.scheduler,
                hop_events=hop_events,
            )
            self.groups[shard] = group
            # A restart wipes the member's volatile settled prefix, so
            # any barrier snapshot touching its shard may describe a cut
            # the group can no longer serve verbatim — drop those
            # entries (satellite of the PR-6 cache; see
            # `invalidate_snapshots`).
            group.on_restart = (
                lambda member, shard=shard: self.invalidate_snapshots(shard)
            )
            for member in members:
                self.shard_of_member[member] = shard
        # -- the global ledger (ground truth; see repro.shard.ledger) ----
        self.graph = DependencyGraph()
        self.ops: Dict[MessageId, OpRecord] = {}
        self.issue_order: List[MessageId] = []
        self.shard_of_label: Dict[MessageId, int] = {}
        #: shard -> its data-carrying labels (``DATA_KINDS`` only) — lets
        #: the barrier restrict a causal cut to one shard's writes with a
        #: single set intersection instead of a per-label kind lookup.
        self.write_labels: Dict[int, Set[MessageId]] = {
            shard: set() for shard in self.shard_ids
        }
        #: shard -> key -> its writes in issue order (puts, plus the
        #: migrate labels that carried the key between shards).  Lets a
        #: replica read answer "newest delivered write of this key" with
        #: a short reversed scan instead of a ledger fold.
        self.key_writes: Dict[int, Dict[str, List[MessageId]]] = {
            shard: {} for shard in self.shard_ids
        }
        #: session -> issue-order batches (a write is a singleton batch; a
        #: read's barrier labels form one batch — they are concurrent).
        self.session_batches: Dict[str, List[List[MessageId]]] = {}
        #: label -> callbacks fired on its first delivery anywhere.
        self._watchers: Dict[MessageId, List[Callable[[EntityId], None]]] = {}
        self.detectors: Dict[EntityId, StablePointDetector] = {}
        #: member -> running maximal frontier of its settled ledger
        #: labels, maintained incrementally by the delivery hook (via
        #: :class:`~repro.shard.frontier.FrontierTracker`) so
        #: `delivered_frontier` is O(frontier) instead of a maximal scan
        #: over the member's whole delivered history.
        self._frontiers: Dict[EntityId, FrontierTracker] = {}
        #: member -> `_settled_version` the frontier was last synced at; a
        #: mismatch means `_delivered_ids` mutated outside delivery
        #: (restart wipe, stable-prefix skip, state transfer) and the
        #: frontier must be rebuilt from scratch.
        self._frontier_sync: Dict[EntityId, int] = {}
        #: Members whose frontier is maintained incrementally by the
        #: delivery hook.  Only queried members (the per-shard contacts,
        #: in practice) pay the per-delivery frontier update; the rest
        #: join on their first `delivered_frontier` query with one
        #: rebuild from their settled set.
        self._frontier_active: Set[EntityId] = set()
        spec = CommutativitySpec(commutative_ops=COMMUTATIVE_KINDS)
        for shard, group in self.groups.items():
            for member, stack in group.stacks.items():
                detector = StablePointDetector(member, spec)
                self.detectors[member] = detector
                self._frontiers[member] = FrontierTracker(
                    self.graph.causal_past, self._op_index
                )
                self._frontier_sync[member] = stack._settled_version
                stack.on_deliver(
                    self._delivery_hook(member, detector, group)
                )
        self.router = ShardRouter(self)
        self.rebalancer = Rebalancer(self)
        self.barrier_reads: List["BarrierRead"] = []
        #: touched-shard-set (sorted tuple) -> per-shard (barrier label,
        #: covered cut, folded values) of the newest zero-round barrier
        #: read over exactly those shards.  A later read whose barrier
        #: causally dominates the cached label seeds its cut and fold
        #: from the entry and only processes the delta — without it every
        #: read re-folds (and re-closure-scans) the whole shard history.
        #: Entries are replaced wholesale, never mutated: in-flight reads
        #: hold a reference to the entry they seeded from.
        self._snapshot_cache: Dict[
            Tuple[int, ...],
            Dict[
                int,
                Tuple[
                    MessageId,
                    FrozenSet[MessageId],
                    Dict[str, Tuple[int, object]],
                ],
            ],
        ] = {}
        self.barriers_started = 0
        self.reads_failed = 0
        self._livelock: Optional[str] = None

    # -- delivery plumbing -------------------------------------------------

    def _op_index(self, label: MessageId) -> int:
        return self.ops[label].index

    def _delivery_hook(
        self, member: EntityId, detector: StablePointDetector, group
    ):
        tracker = self._frontiers[member]
        data_labels = group.data_labels
        active = self._frontier_active

        def hook(envelope) -> None:
            detector.observe(envelope, self.scheduler.now)
            label = envelope.msg_id
            if label in data_labels and member in active:
                # Incremental maximal: causal delivery means no in-group
                # ancestor of `label` arrives after it, so `label` either
                # shadows frontier members (via its global causal past) or
                # is itself shadowed by one that got here first through a
                # cross-shard edge (see repro.shard.frontier for why the
                # issue-index guard makes this sound).
                tracker.note(label)
            watchers = self._watchers.pop(label, None)
            if watchers:
                for watcher in watchers:
                    watcher(member)

        return hook

    def watch(
        self, label: MessageId, callback: Callable[[EntityId], None]
    ) -> None:
        """Invoke ``callback`` on ``label``'s first delivery anywhere.

        Fires immediately if some member of the label's group already
        settled it (delivered, or skip-settled via a stable prefix).
        """
        shard = self.shard_of_label[label]
        for member, stack in self.groups[shard].stacks.items():
            if label in stack._delivered_ids:
                callback(member)
                return
        self._watchers.setdefault(label, []).append(callback)

    # -- the ledger --------------------------------------------------------

    def shard_send(
        self,
        shard: int,
        kind: str,
        payload: object,
        *,
        occurs_after: Iterable[MessageId],
        cross_deps: Iterable[MessageId],
        session: Optional[str],
        key: Optional[str] = None,
        slot: Optional[int] = None,
        preferred: Optional[EntityId] = None,
    ) -> Optional[MessageId]:
        """Broadcast one operation in ``shard``'s group and record it.

        Tries each up, in-view member (``preferred`` first) until one
        accepts the send; returns ``None`` if none can right now (all
        crashed, evicted, or flush-frozen) — callers retry on a timer.
        """
        group = self.groups[shard]
        deps = frozenset(occurs_after)
        cross = frozenset(cross_deps)
        foreign = [l for l in deps if self.shard_of_label.get(l) != shard]
        if foreign:
            raise ProtocolError(
                f"occurs_after for shard {shard} names foreign labels: "
                f"{sorted(map(str, foreign))}"
            )
        local = [l for l in cross if self.shard_of_label.get(l) == shard]
        if local:
            raise ProtocolError(
                f"cross_deps for shard {shard} names in-group labels: "
                f"{sorted(map(str, local))}"
            )
        order = list(group.members)
        if preferred in group.stacks:
            order.remove(preferred)
            order.insert(0, preferred)
        for member in order:
            stack = group.stacks[member]
            if stack.crashed or member not in group.group.view:
                continue
            try:
                label = stack.bcast(
                    kind, payload, occurs_after=deps, cross_deps=cross
                )
            except ProtocolError:
                # Flush-frozen: try the next member.
                continue
            self._record(
                label,
                shard=shard,
                kind=kind,
                key=key,
                slot=slot,
                value=payload,
                deps=deps,
                cross_deps=cross,
                session=session,
            )
            group._sends[member].append((label, stack.incarnation))
            return label
        return None

    def _record(
        self,
        label: MessageId,
        *,
        shard: int,
        kind: str,
        key: Optional[str],
        slot: Optional[int],
        value: object,
        deps: FrozenSet[MessageId],
        cross_deps: FrozenSet[MessageId],
        session: Optional[str],
    ) -> None:
        self.graph.add(label, deps | cross_deps)
        self.ops[label] = OpRecord(
            label=label,
            shard=shard,
            kind=kind,
            key=key,
            slot=slot,
            value=value,
            deps=deps,
            cross_deps=cross_deps,
            session=session,
            index=len(self.issue_order),
            time=self.scheduler.now,
        )
        self.issue_order.append(label)
        self.shard_of_label[label] = shard
        if kind in DATA_KINDS:
            self.write_labels[shard].add(label)
            by_key = self.key_writes[shard]
            if kind == "put":
                by_key.setdefault(key, []).append(label)
            else:  # migrate: the label carries every moved key
                for entry_key in value["entries"]:
                    by_key.setdefault(entry_key, []).append(label)
        group = self.groups[shard]
        group.data_labels.add(label)
        group.dependencies[label] = deps
        group.audience[label] = frozenset(group.group.view.members)

    def note_session_batch(
        self, session: str, labels: List[MessageId]
    ) -> None:
        if labels:
            self.session_batches.setdefault(session, []).append(list(labels))

    # -- causal-order utilities -------------------------------------------

    def maximal(self, labels: Iterable[MessageId]) -> FrozenSet[MessageId]:
        """Prune ``labels`` to its maximal elements under the graph.

        Labels are presented newest-issued-first: a later ledger label is
        the likelier dominator, so the graph's shadowing scan usually
        swallows the whole pool within its first few closures.
        """
        pool = set(labels)
        if len(pool) <= 1:
            return frozenset(pool)
        ops = self.ops
        ordered = sorted(
            pool,
            key=lambda l: ops[l].index if l in ops else -1,
            reverse=True,
        )
        return self.graph.maximal_elements(ordered)

    def project(
        self, labels: Iterable[MessageId], shard: int
    ) -> FrozenSet[MessageId]:
        """``labels``' transitive causal past, restricted to ``shard``.

        The projection follows *both* edge kinds (in-group and cross),
        which is what lets a session that observed a label on shard B
        correctly depend on that label's shard-A ancestors.
        """
        group = self.groups.get(shard)
        if group is None:
            # A subset cluster (multi-process worker) does not host this
            # shard, so no ledger label can live there.
            return frozenset()
        shard_labels = group.data_labels
        pool = tuple(labels)
        if len(pool) == 1 and pool[0] in shard_labels:
            # The label dominates its own causal past, so restricted to
            # its home shard it is the unique maximum.
            return frozenset(pool)
        result: Set[MessageId] = set()
        for label in pool:
            if label in shard_labels:
                result.add(label)
            result |= self.graph.causal_past(label) & shard_labels
        return self.maximal(result)

    def _lagging(self, group: ChaosCluster, member: EntityId) -> bool:
        """Is ``member`` an amnesiac — settled prefix empty of data?

        A just-restarted replica whose state transfer has not landed yet
        has wiped `_delivered_ids`; until anti-entropy refills it, the
        member has delivered *none* of the group's data labels.  The
        `isdisjoint` is O(1) expected for a healthy member (its first
        settled label hits) and cheap for an amnesiac (small settled
        set scanned against the data-label set).
        """
        if not group.data_labels:
            return False
        stack = group.stacks[member]
        return stack._delivered_ids.isdisjoint(group.data_labels)

    def contact(self, shard: int) -> Optional[EntityId]:
        """The first up, in-view, non-amnesiac member of ``shard``, if any.

        Falls back to the first up in-view member when every candidate
        is amnesiac (a freshly restarted group still needs *a* contact
        to rebuild through).
        """
        group = self.groups[shard]
        fallback: Optional[EntityId] = None
        for member in group.members:
            if group.stacks[member].crashed or member not in group.group.view:
                continue
            if not self._lagging(group, member):
                return member
            if fallback is None:
                fallback = member
        return fallback

    def read_members(self, shard: int) -> List[EntityId]:
        """Members of ``shard`` eligible to serve replica reads.

        Up, in-view, and caught up past amnesia; when *every* up member
        is amnesiac they are all returned (the coverage gate still
        protects correctness — an empty settled set covers nothing).
        """
        group = self.groups[shard]
        fresh: List[EntityId] = []
        lagging: List[EntityId] = []
        for member in group.members:
            if group.stacks[member].crashed or member not in group.group.view:
                continue
            if self._lagging(group, member):
                lagging.append(member)
            else:
                fresh.append(member)
        return fresh if fresh else lagging

    def covers(
        self, shard: int, member: EntityId, labels: Iterable[MessageId]
    ) -> bool:
        """Has ``member`` settled every label in ``labels``?

        The replica-read eligibility gate: a member may serve a session's
        read of a shard iff it has delivered the session frontier's
        projection onto that shard (plus any migration handoff).  Checked
        against the raw settled set — no frontier activation, no closure
        walks — so probing many members stays cheap.
        """
        delivered = self.groups[shard].stacks[member]._delivered_ids
        return all(label in delivered for label in labels)

    def member_read(
        self, shard: int, member: EntityId, key: str
    ) -> Tuple[Optional[object], Optional[MessageId]]:
        """``key``'s newest write ``member`` has settled, as (value, label).

        Walks the key's per-shard write history newest-first and returns
        the first write inside the member's settled set — the exact
        value a last-writer-wins fold of that member's delivered prefix
        would produce for the key, without folding anything.
        """
        delivered = self.groups[shard].stacks[member]._delivered_ids
        for label in reversed(self.key_writes[shard].get(key, ())):
            if label not in delivered:
                continue
            record = self.ops[label]
            if record.kind == "put":
                return record.value["value"], label
            return record.value["entries"][key], label
        return None, None

    def read_contact(
        self, shard: int, floor: Iterable[MessageId]
    ) -> Optional[EntityId]:
        """A read-serving member of ``shard`` covering ``floor``.

        Prefers the stable contact (keeping frontier maintenance lazy on
        everyone else); only when the contact does not cover the floor
        does it probe the other read members, and when nobody covers it
        falls back to the contact — the caller's retry/dependency
        machinery handles the wait.
        """
        floor = tuple(floor)
        contact = self.contact(shard)
        if not floor or (
            contact is not None and self.covers(shard, contact, floor)
        ):
            return contact
        for member in self.read_members(shard):
            if self.covers(shard, member, floor):
                return member
        return contact

    def invalidate_snapshots(self, *shards: int) -> None:
        """Drop barrier snapshot-cache entries touching any of ``shards``.

        Called on rebalance cutover (the moved slot's keys change home,
        so a cached fold for source or dest describes a pre-move world)
        and on member restart (the member's settled prefix was wiped; a
        cut cached against the old incarnation may no longer be
        servable as-is).  With no arguments, clears everything.  Entries
        are dropped, never mutated — in-flight reads keep whatever entry
        they already seeded from, which stays sound because cached cuts
        only describe the barrier's fixed causal past.
        """
        if not shards:
            self._snapshot_cache.clear()
            return
        affected = set(shards)
        stale = [
            key for key in self._snapshot_cache if affected.intersection(key)
        ]
        for key in stale:
            del self._snapshot_cache[key]

    def delivered_frontier(
        self, shard: int, member: EntityId
    ) -> FrozenSet[MessageId]:
        """Maximal ledger labels ``member`` has settled in its group."""
        group = self.groups[shard]
        stack = group.stacks[member]
        tracker = self._frontiers[member]
        version = stack._settled_version
        if member not in self._frontier_active:
            # First query for this member: the delivery hook has been
            # skipping its frontier, so activate it and force a rebuild.
            self._frontier_active.add(member)
            self._frontier_sync[member] = version - 1
        if self._frontier_sync[member] != version:
            # `_delivered_ids` mutated outside delivery (restart wipe,
            # stable-prefix skip, state transfer) or the member was just
            # activated: the incremental frontier is stale, so rebuild it
            # from the full settled set — delivered ∪ skip-settled — and
            # resync.  `maximal` is the fast closure-intersection path;
            # the tracker adopts its result as-is.
            ops = self.ops
            tracker.reset({
                label: ops[label].index
                for label in self.maximal(
                    stack._delivered_ids & group.data_labels
                )
            })
            self._frontier_sync[member] = version
        return tracker.labels()

    # -- campaign execution ------------------------------------------------

    def _apply_sharded(self, event: ChaosEvent) -> None:
        action = event.action
        if action == "op":
            session, key, value = event.arg
            self.router.session(session).put(key, value)
        elif action == "read":
            session, shards = event.arg
            self.router.session(session).read(shards)
        elif action == "rebalance":
            slot, dest = event.arg
            self.rebalancer.move_slot(slot, dest)
        else:
            shard, arg = event.arg
            self.groups[shard]._apply(ChaosEvent(event.time, action, arg))

    def run_campaign(
        self,
        campaign: ChaosCampaign,
        max_settle_rounds: int = 80,
        check_invariants: bool = True,
    ) -> ShardedResult:
        """Execute ``campaign``, drive repair to convergence, audit."""
        for group in self.groups.values():
            for manager in group.managers.values():
                manager.start(campaign.duration)
        for event in campaign.events:
            self.scheduler.call_at(event.time, self._apply_sharded, event)
        try:
            self.scheduler.run_until(campaign.duration, MAX_EVENTS_PER_DRAIN)
        except SimulationError as exc:
            self._livelock = str(exc)
        self._restore()
        violations, rounds = self.settle(max_settle_rounds)
        if check_invariants:
            violations = violations + self.check_invariants()
        sessions = self.router.sessions.values()
        moves = self.rebalancer.moves
        return ShardedResult(
            name=campaign.name,
            shards=len(self.shard_ids),
            violations=violations,
            ops=sum(s.ops_issued for s in sessions),
            ops_skipped=sum(s.ops_skipped for s in sessions),
            reads=len(self.barrier_reads),
            reads_failed=self.reads_failed,
            rebalances=sum(1 for m in moves if m.phase == "done"),
            rebalances_aborted=sum(1 for m in moves if m.phase == "aborted"),
            crashes=sum(g.crashes for g in self.groups.values()),
            restarts=sum(g.restarts for g in self.groups.values()),
            data_messages=len(self.ops),
            settle_rounds=rounds,
            sim_time=self.scheduler.now,
            stable_points={
                member: detector.count
                for member, detector in self.detectors.items()
            },
        )

    def _restore(self) -> None:
        """End-of-campaign cleanup across every group."""
        for group in self.groups.values():
            group.heal()
            group.set_loss(0.0)
            group.set_duplicate(0.0)
        self._drain()
        for group in self.groups.values():
            for member, stack in group.stacks.items():
                if stack.crashed and member in group.group.view:
                    group.restart(member)
            for member in group.members:
                if member not in group.group.view:
                    group.rejoin(member)
        self._drain()

    def drain(self) -> None:
        """Run the shared scheduler to quiescence (public, for demos)."""
        self._drain()

    def _drain(self) -> None:
        if self._livelock is not None:
            return
        try:
            self.scheduler.run(MAX_EVENTS_PER_DRAIN)
        except SimulationError as exc:
            self._livelock = str(exc)

    # -- repair-to-convergence --------------------------------------------

    def converged(self) -> bool:
        if any(not group.converged() for group in self.groups.values()):
            return False
        if self.router.busy():
            return False
        if self.rebalancer.active():
            return False
        return True

    def settle(self, max_rounds: int = 80) -> Tuple[List[Violation], int]:
        """Repair rounds (per group) until global convergence.

        Convergence additionally requires the session layer to be idle:
        every queued write issued or dropped, every barrier read
        completed or aborted, no slot frozen — liveness of the *sharded*
        machinery is audited, not just of each group.
        """
        for round_number in range(1, max_rounds + 1):
            if self._livelock is not None:
                return (
                    [Violation(
                        "liveness",
                        None,
                        f"scheduler failed to quiesce: {self._livelock}",
                    )],
                    round_number - 1,
                )
            if self.converged():
                return [], round_number - 1
            for group in self.groups.values():
                group._repair_membership()
                for member in group._repair_participants():
                    group.recoveries[member].anti_entropy_round()
                    group.trackers[member].gossip_round()
            self.router.kick()
            self._drain()
        if self.converged():
            return [], max_rounds
        return [self._liveness_violation(max_rounds)], max_rounds

    def _liveness_violation(self, rounds: int) -> Violation:
        report = []
        for shard, group in self.groups.items():
            if not group.converged():
                view = group.group.view
                report.append(
                    f"shard {shard} not converged "
                    f"(view={view.view_id}:{','.join(view.members)})"
                )
        report.extend(self.router.stuck_report())
        if self.rebalancer.active():
            report.append("rebalance in flight")
        return Violation(
            "liveness",
            None,
            f"no convergence after {rounds} repair rounds "
            f"({'; '.join(report)})",
        )

    # -- auditing ----------------------------------------------------------

    def check_invariants(self) -> List[Violation]:
        """Per-group batteries + cross-shard CC + routing audit."""
        violations: List[Violation] = []
        for shard in self.shard_ids:
            violations.extend(self.groups[shard].check_invariants())
        violations.extend(self.check_cross_shard())
        violations.extend(self._check_routing())
        return violations

    def check_cross_shard(self) -> List[Violation]:
        protocols: Dict[EntityId, object] = {}
        for group in self.groups.values():
            protocols.update(group.stacks)
        checker = CrossShardChecker(
            protocols,
            shard_of_member=self.shard_of_member,
            shard_of_label=self.shard_of_label,
            dependencies={l: r.deps for l, r in self.ops.items()},
            cross_dependencies={
                l: r.cross_deps for l, r in self.ops.items()
            },
            session_batches=self.session_batches,
            issue_order=self.issue_order,
        )
        return checker.check()

    def _check_routing(self) -> List[Violation]:
        """No put may reach a slot's *old* group after its cutover."""
        violations: List[Violation] = []
        for move in self.rebalancer.moves:
            if move.phase != "done" or move.cutover_index is None:
                continue
            superseded = any(
                other is not move
                and other.slot == move.slot
                and other.cutover_index is not None
                and other.cutover_index > move.cutover_index
                for other in self.rebalancer.moves
            )
            if superseded:
                continue
            for label in self.issue_order[move.cutover_index:]:
                record = self.ops[label]
                if (
                    record.kind == "put"
                    and record.slot == move.slot
                    and record.shard == move.source
                ):
                    violations.append(Violation(
                        "shard-routing",
                        None,
                        f"{label} put key {record.key!r} on shard "
                        f"{record.shard} after slot {move.slot} moved to "
                        f"{move.dest}",
                    ))
        return violations
