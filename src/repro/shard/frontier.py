"""Incremental maximal-antichain maintenance for delivered frontiers.

A member's *delivered frontier* is the maximal antichain of the data
labels it has causally delivered — the heads of its local causal past.
:class:`~repro.shard.cluster.ShardedCluster` maintains one per queried
member so that barrier issue and replica-read gating never rescan the
whole ledger.  The algorithm lives here, separated from the cluster, so
it can be property-tested on its own (``tests/shard/test_frontier.py``
pins the incremental path label-for-label against the full rebuild
across all six broadcast protocols).

Two facts make the incremental step sound, and both are invariants of
the surrounding system rather than of this class:

* labels arrive in an order that respects their causal dependencies
  (causal delivery), so when :meth:`FrontierTracker.note` sees a new
  label, every element of that label's causal past has already been
  noted — the new label can only *shadow* existing heads, never be
  shadowed by a missing one, **except** when redelivery/replay hands us
  an old label late, which the issue-index guard catches;
* the issue index is a linear extension of causality (a label's causal
  past only ever contains lower-indexed labels), so a head with a
  *higher* index than the incoming label can be checked directly for
  dominance, and :meth:`FrontierTracker.rebuild`'s descending-index scan
  can keep a label as maximal the moment no already-kept head dominates
  it.

Anything that invalidates the delivered set wholesale — a restart wiping
volatile state, an anti-entropy stable-prefix skip settling labels that
were never individually delivered, a member whose maintenance starts
late (lazy activation) — must go through :meth:`FrontierTracker.rebuild`
(or :meth:`FrontierTracker.reset` with an externally computed antichain)
instead of replaying deliveries.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable

from repro.types import MessageId

__all__ = ["FrontierTracker"]


class FrontierTracker:
    """Maximal antichain of noted labels, maintained incrementally.

    ``causal_past(label)`` must return the set of labels strictly before
    ``label``; ``index_of(label)`` must be a linear extension of that
    order (issue index).  Both are supplied by the owner so one shared
    dependency graph can back every member's tracker.
    """

    __slots__ = ("heads", "_causal_past", "_index_of")

    def __init__(
        self,
        causal_past: Callable[[MessageId], frozenset],
        index_of: Callable[[MessageId], int],
    ) -> None:
        #: Current frontier: label -> issue index.
        self.heads: Dict[MessageId, int] = {}
        self._causal_past = causal_past
        self._index_of = index_of

    def labels(self) -> FrozenSet[MessageId]:
        return frozenset(self.heads)

    def note(self, label: MessageId) -> None:
        """Fold one causally-delivered label into the frontier.

        A later-indexed head that already dominates ``label`` means the
        label is a redelivery of something inside the frontier's past —
        drop it.  Otherwise ``label`` is maximal (its own past was noted
        before it, by causal delivery) and it evicts any heads inside
        its past.
        """
        index = self._index_of(label)
        causal_past = self._causal_past
        for head, head_index in self.heads.items():
            if head_index > index and label in causal_past(head):
                return
        past = causal_past(label)
        shadowed = [head for head in self.heads if head in past]
        for head in shadowed:
            del self.heads[head]
        self.heads[label] = index

    def rebuild(self, labels: Iterable[MessageId]) -> None:
        """Recompute the frontier from scratch over ``labels``.

        Descending-index scan: a label is maximal iff no already-kept
        (higher-indexed) head dominates it — sound because causal pasts
        only contain lower-indexed labels.
        """
        self.heads.clear()
        causal_past = self._causal_past
        index_of = self._index_of
        for label in sorted(labels, key=index_of, reverse=True):
            if not any(label in causal_past(head) for head in self.heads):
                self.heads[label] = index_of(label)

    def reset(self, heads: Dict[MessageId, int]) -> None:
        """Adopt an externally computed maximal set (label -> index)."""
        self.heads = dict(heads)
