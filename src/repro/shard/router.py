"""Client-side routing with per-session cross-shard dependency tracking.

The paper's ``OSend`` lets the *application* declare causal precedence
(Section 3.1); this layer is that application.  Each :class:`Session`
keeps a per-shard *frontier* — the maximal labels its causal past
projects onto each shard — and stamps every write with:

* ``occurs_after`` = the frontier of the destination shard (in-group
  labels the group's own delivery predicate can enforce), plus the
  slot's migration-handoff label if the key's slot ever moved;
* ``cross_deps``   = the frontiers of every *other* shard (foreign
  labels; stamped for observation and audit — their in-group projection
  is what ``occurs_after`` already carries).

Observing a label (the session's own write, or a barrier label from a
completed read) *absorbs* its full transitive causal past into the
frontier, projected per shard through the cluster's global dependency
graph.  Projection is what makes the scheme sound: if ``put1(A)`` ≺
``put2(B)`` ≺ ``barrier(B)`` was observed, a later write to shard A
depends on ``put1`` even though the session never touched A before.

Sessions are FIFO: an operation is issued only after every earlier one
(writes issue, reads complete).  A write whose slot is frozen by an
in-flight rebalance waits at the head of the queue — preserving session
order through the cutover.
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ProtocolError
from repro.types import MessageId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.barrier import BarrierRead
    from repro.shard.cluster import ShardedCluster

#: One-second retries an operation survives before being dropped — the
#: contact may be crashed, flush-frozen, or the slot frozen mid-move;
#: bounded so campaign settling always terminates.
PUT_ATTEMPTS = 240

#: Version tag carried by serialized session tokens.  Bump when the
#: token schema changes; importers reject tags they do not understand
#: rather than silently misreading a newer layout.
TOKEN_VERSION = 1


class Session:
    """One client session: FIFO keyed writes and barrier reads."""

    def __init__(self, router: "ShardRouter", name: str) -> None:
        self.router = router
        self.name = name
        #: shard -> maximal labels of this session's causal past there.
        self.frontier: Dict[int, FrozenSet[MessageId]] = {}
        self._queue: Deque[list] = deque()
        self._reading = False
        self._retry_armed = False
        self.ops_issued = 0
        self.ops_skipped = 0
        self.reads: List["BarrierRead"] = []
        self.reads_failed = 0

    # -- public API --------------------------------------------------------

    def put(
        self,
        key: str,
        value: object,
        on_issued: Optional[Callable[[Optional[MessageId]], None]] = None,
    ) -> None:
        """Queue a keyed write; issues as soon as the session's turn comes.

        ``on_issued`` (if given) fires exactly once: with the assigned
        label when the write broadcasts, or with ``None`` if the write
        exhausts its retry budget and is dropped.  The serving layer uses
        it to answer wire requests with the label the put became.
        """
        self._queue.append(["put", key, value, PUT_ATTEMPTS, on_issued])
        self.pump()

    def read(
        self,
        shards: Optional[Sequence[int]] = None,
        callback: Optional[Callable[["BarrierRead"], None]] = None,
    ) -> None:
        """Queue a consistent multi-shard read (all shards by default)."""
        chosen = tuple(shards) if shards is not None else None
        self._queue.append(["read", chosen, callback])
        self.pump()

    @property
    def idle(self) -> bool:
        return not self._queue and not self._reading

    # -- causal session tokens ---------------------------------------------

    def export_token(self) -> str:
        """Serialize this session's per-shard frontier as an opaque token.

        The token is self-contained: a client can disconnect, hand the
        token to any server fronting the same object space, and
        :meth:`import_token` restores the causal floor under which its
        next operations issue — read-your-writes and monotonic order
        survive the reconnect.  Version-tagged so the schema can evolve
        (importers reject tags they do not know).
        """
        return json.dumps(
            {
                "v": TOKEN_VERSION,
                "session": self.name,
                "frontier": {
                    str(shard): sorted(
                        [label.sender, label.seqno] for label in labels
                    )
                    for shard, labels in sorted(self.frontier.items())
                    if labels
                },
            },
            separators=(",", ":"),
        )

    def import_token(self, token: str) -> FrozenSet[MessageId]:
        """Merge a previously exported token into this session's frontier.

        Labels the cluster's ledger does not know (a token minted against
        a different object space, or one whose history this server never
        saw) cannot be ordered against anything here; they are dropped
        and returned so callers can surface the loss.  A structurally
        invalid token, or one carrying an unknown version tag or a shard
        outside this cluster's map, raises :class:`ProtocolError` — a
        newer layout must never be silently misread as an empty frontier.
        """
        try:
            document = json.loads(token)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed session token: {exc}") from exc
        if not isinstance(document, dict):
            raise ProtocolError("malformed session token: not an object")
        version = document.get("v")
        if version != TOKEN_VERSION:
            raise ProtocolError(
                f"unknown session token version: {version!r} "
                f"(this node speaks {TOKEN_VERSION})"
            )
        frontier = document.get("frontier")
        if not isinstance(frontier, dict):
            raise ProtocolError("malformed session token: missing frontier")
        cluster = self.router.cluster
        unknown: Set[MessageId] = set()
        for shard_key, pairs in frontier.items():
            try:
                shard = int(shard_key)
                labels = {MessageId(sender, seqno) for sender, seqno in pairs}
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"malformed session token frontier: {exc}"
                ) from exc
            if shard not in cluster.groups:
                if 0 <= shard < cluster.shard_map.num_shards:
                    # The shard exists in the object space but is hosted
                    # by a sibling (subset cluster / multi-process
                    # worker): its labels are that sibling's to order,
                    # not losses to report.
                    continue
                raise ProtocolError(
                    f"session token names unknown shard {shard}"
                )
            known = {label for label in labels if label in cluster.graph}
            unknown |= labels - known
            if known:
                merged = set(self.frontier.get(shard, ())) | known
                self.frontier[shard] = cluster.maximal(merged)
        return frozenset(unknown)

    # -- engine ------------------------------------------------------------

    def pump(self) -> None:
        """Issue queued operations until blocked (frozen slot, read)."""
        while self._queue and not self._reading:
            entry = self._queue[0]
            if entry[0] == "put":
                _, key, value, _attempts, on_issued = entry
                label = self._issue_put(key, value)
                if label is None:
                    entry[3] -= 1
                    if entry[3] <= 0:
                        self.ops_skipped += 1
                        self._queue.popleft()
                        if on_issued is not None:
                            on_issued(None)
                        continue
                    self._arm_retry()
                    return
                self._queue.popleft()
                if on_issued is not None:
                    on_issued(label)
            else:
                _, shards, callback = entry
                self._queue.popleft()
                self._begin_read(shards, callback)
                return

    def _issue_put(self, key: str, value: object) -> Optional[MessageId]:
        cluster = self.router.cluster
        slot = self.router.map.slot_of(key)
        if self.router.slot_frozen(slot):
            return None
        shard = self.router.map.shard_for_slot(slot)
        deps: Set[MessageId] = set(self.frontier.get(shard, ()))
        handoff = self.router.handoff_dep(slot)
        if handoff is not None:
            # The slot moved here at some point: every later write must
            # follow the migration record, or an uninvolved session's
            # write could be delivered before the state it overwrites.
            deps.add(handoff)
        cross: Set[MessageId] = set()
        for other, labels in self.frontier.items():
            if other != shard:
                cross |= labels
        label = cluster.shard_send(
            shard,
            "put",
            {"key": key, "value": value},
            occurs_after=cluster.maximal(deps),
            cross_deps=cluster.maximal(cross),
            session=self.name,
            key=key,
            slot=slot,
        )
        if label is None:
            return None
        # The new label dominates everything it was stamped with.
        self.frontier[shard] = frozenset({label})
        if handoff is not None:
            # The handoff label drags in causal past the session never
            # observed (the migration follows the moved writes *and* the
            # destination frontier, which reach other shards through
            # cross-dependencies).  Fold it in, or the session's next
            # write to those shards under-declares its Occurs-After.
            self._absorb(label)
        cluster.note_session_batch(self.name, [label])
        self.ops_issued += 1
        return label

    def _begin_read(
        self,
        shards: Optional[Sequence[int]],
        callback: Optional[Callable[["BarrierRead"], None]],
    ) -> None:
        from repro.shard.barrier import StablePointBarrier

        cluster = self.router.cluster
        touched = tuple(shards) if shards is not None else cluster.shard_ids
        self._reading = True

        def done(read: Optional["BarrierRead"]) -> None:
            self._reading = False
            if read is None:
                self.reads_failed += 1
            else:
                self.reads.append(read)
                labels = [
                    label
                    for per_shard in read.barrier_labels.values()
                    for label in per_shard
                ]
                cluster.note_session_batch(self.name, labels)
                for label in labels:
                    self._absorb(label)
                if callback is not None:
                    callback(read)
            self.pump()

        StablePointBarrier(
            cluster,
            touched,
            on_complete=done,
            session=self.name,
            baseline={
                shard: self.frontier.get(shard, frozenset())
                for shard in touched
            },
            cross=dict(self.frontier),
        ).start()

    def read_floor(
        self, key: str
    ) -> Tuple[int, int, FrozenSet[MessageId]]:
        """What a replica must have settled to serve ``key`` to us.

        Returns ``(shard, slot, floor)``: the key's current home shard
        and slot, and the session token's projection onto that shard —
        the frontier labels the session already holds there, plus the
        slot's migration handoff when one is pending.  A member whose
        settled set covers ``floor`` can answer the read without
        violating any session guarantee (the replica-read eligibility
        rule; see docs/SERVING.md).
        """
        slot = self.router.map.slot_of(key)
        shard = self.router.map.shard_for_slot(slot)
        floor = set(self.frontier.get(shard, ()))
        handoff = self.router.handoff_dep(slot)
        if handoff is not None:
            floor.add(handoff)
        return shard, slot, frozenset(floor)

    def observe(self, label: MessageId) -> None:
        """Fold an externally observed write into the session frontier.

        The serving layer calls this when a replica read returned
        ``label``'s value: from then on the session's reads and writes
        must stay causally after it (monotonic reads / writes-follow-
        reads by construction).  Cheap no-op when the frontier already
        dominates the label.
        """
        cluster = self.router.cluster
        shard = cluster.shard_of_label.get(label)
        if shard is not None:
            current = self.frontier.get(shard, ())
            if label in current:
                return
            graph = cluster.graph
            if any(graph.precedes(label, head) for head in current):
                return
        self._absorb(label)

    def _absorb(self, label: MessageId) -> None:
        """Fold ``label``'s transitive causal past into the frontier."""
        cluster = self.router.cluster
        for shard in cluster.shard_ids:
            projected = cluster.project((label,), shard)
            if projected:
                merged = set(self.frontier.get(shard, ())) | set(projected)
                self.frontier[shard] = cluster.maximal(merged)

    def _arm_retry(self) -> None:
        if self._retry_armed:
            return
        self._retry_armed = True

        def fire() -> None:
            self._retry_armed = False
            self.pump()

        self.router.cluster.scheduler.call_in(1.0, fire)


class ShardRouter:
    """Routes session traffic onto shard groups; owns slot freezes."""

    def __init__(self, cluster: "ShardedCluster") -> None:
        self.cluster = cluster
        self._sessions: Dict[str, Session] = {}
        self._frozen: Set[int] = set()
        #: slot -> migration record every post-cutover write must follow.
        self._handoff: Dict[int, MessageId] = {}

    @property
    def map(self):
        return self.cluster.shard_map

    def session(self, name: str) -> Session:
        if name not in self._sessions:
            self._sessions[name] = Session(self, name)
        return self._sessions[name]

    @property
    def sessions(self) -> Dict[str, Session]:
        return dict(self._sessions)

    # -- rebalance coordination -------------------------------------------

    def slot_frozen(self, slot: int) -> bool:
        return slot in self._frozen

    def handoff_dep(self, slot: int) -> Optional[MessageId]:
        return self._handoff.get(slot)

    def freeze_slot(self, slot: int) -> None:
        self._frozen.add(slot)

    def unfreeze_slot(
        self, slot: int, handoff: Optional[MessageId] = None
    ) -> None:
        self._frozen.discard(slot)
        if handoff is not None:
            self._handoff[slot] = handoff
        self.kick()

    # -- liveness plumbing -------------------------------------------------

    def kick(self) -> None:
        """Re-pump every session (after an unfreeze or a repair round)."""
        for session in self._sessions.values():
            session.pump()

    def busy(self) -> bool:
        return bool(self._frozen) or any(
            not session.idle for session in self._sessions.values()
        )

    def stuck_report(self) -> List[str]:
        report = []
        for name, session in self._sessions.items():
            if not session.idle:
                report.append(
                    f"session {name}: queued={len(session._queue)} "
                    f"reading={session._reading}"
                )
        if self._frozen:
            report.append(f"frozen slots: {sorted(self._frozen)}")
        return report
