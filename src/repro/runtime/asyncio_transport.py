"""Run the protocol stacks on a real asyncio event loop.

The broadcast protocols only ask three things of their environment:
a clock (``network.scheduler.now``), delayed callbacks
(``scheduler.call_in``) and a transport (``network.broadcast`` /
``network.unicast``).  :class:`AsyncioNetwork` provides all three over a
live event loop, so the *same* protocol and application classes that run
deterministically in the simulator also run in real time — the separation
the paper advocates between the communication substrate and the data
access protocols layered on it.

Latency models still apply (each hop sleeps its sampled delay), which
makes the asyncio runtime useful for demos and soak tests; deterministic
experiments should use :class:`repro.sim.scheduler.Scheduler`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Iterable, Optional

from repro.errors import ConfigurationError, MembershipError
from repro.net.faults import FaultPlan, RELIABLE
from repro.net.latency import ConstantLatency, LatencyModel
from repro.sim.node import SimNode
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.types import Envelope, EntityId


class AsyncioClock:
    """Scheduler-compatible facade over an asyncio event loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop, on_done: Callable[[], None]) -> None:
        self._loop = loop
        self._epoch = loop.time()
        self._outstanding = 0
        self._on_done = on_done

    @property
    def now(self) -> float:
        """Seconds since this network was created."""
        return self._loop.time() - self._epoch

    @property
    def outstanding(self) -> int:
        """Scheduled callbacks not yet run."""
        return self._outstanding

    def call_in(self, delay: float, callback: Callable[..., Any], *args: Any):
        if delay < 0:
            raise ConfigurationError(f"negative delay: {delay}")
        self._outstanding += 1

        def run() -> None:
            self._outstanding -= 1
            try:
                callback(*args)
            finally:
                if self._outstanding == 0:
                    self._on_done()

        return self._loop.call_later(delay, run)

    def call_at(self, time: float, callback: Callable[..., Any], *args: Any):
        return self.call_in(max(0.0, time - self.now), callback, *args)

    def call_now(self, callback: Callable[..., Any], *args: Any):
        return self.call_in(0.0, callback, *args)


class AsyncioNetwork:
    """Drop-in replacement for :class:`repro.net.network.Network`.

    Use :meth:`quiesce` to await the point where no deliveries remain in
    flight.
    """

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        rng: Optional[RngRegistry] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if loop is not None:
            self._loop = loop
        else:
            # Resolve from the running loop only: `get_event_loop()` is
            # deprecated outside a running loop and, worse, could silently
            # create a *new* loop on a non-main thread — timers scheduled
            # there would never fire.
            try:
                self._loop = asyncio.get_running_loop()
            except RuntimeError:
                raise ConfigurationError(
                    "AsyncioNetwork requires a running event loop; "
                    "construct it inside a coroutine or pass loop="
                ) from None
        self._idle = asyncio.Event()
        self._idle.set()
        self.scheduler = AsyncioClock(self._loop, self._idle.set)
        self.latency = latency if latency is not None else ConstantLatency(0.001)
        self.faults = faults if faults is not None else RELIABLE
        rng = rng if rng is not None else RngRegistry(0)
        self._latency_rng = rng.stream("net.latency")
        self._fault_rng = rng.stream("net.faults")
        self.trace = trace if trace is not None else TraceRecorder()
        self._nodes: Dict[EntityId, SimNode] = {}
        self.hops_sent = 0
        self.hops_delivered = 0
        self.hops_dropped = 0

    # -- membership (mirrors Network) -----------------------------------------

    def register(self, node: SimNode) -> SimNode:
        if node.entity_id in self._nodes:
            raise ConfigurationError(f"duplicate entity id: {node.entity_id!r}")
        self._nodes[node.entity_id] = node
        node.attach(self)  # type: ignore[arg-type]
        return node

    def node(self, entity_id: EntityId) -> SimNode:
        try:
            return self._nodes[entity_id]
        except KeyError:
            raise MembershipError(f"unknown entity: {entity_id!r}") from None

    @property
    def entity_ids(self):
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- transport ----------------------------------------------------------------

    def unicast(
        self, source: EntityId, destination: EntityId, envelope: Envelope
    ) -> None:
        if destination not in self._nodes:
            raise MembershipError(f"unknown destination: {destination!r}")
        self._hop(source, destination, envelope)

    def broadcast(self, source: EntityId, envelope: Envelope) -> None:
        self.trace.record(
            self.scheduler.now,
            "send",
            source=source,
            msg_id=envelope.msg_id,
            operation=envelope.message.operation,
        )
        for destination in self._nodes:
            self._hop(source, destination, envelope)

    def _hop(
        self, source: EntityId, destination: EntityId, envelope: Envelope
    ) -> None:
        self.hops_sent += 1
        copies, blocked = self.faults.decide(
            source, destination, self._fault_rng
        )
        if copies == 0:
            self.hops_dropped += 1
            self.trace.record(
                self.scheduler.now,
                "drop",
                source=source,
                destination=destination,
                msg_id=envelope.msg_id,
                blocked=blocked,
            )
            return
        self._idle.clear()
        for _ in range(copies):
            delay = self.latency.sample(source, destination, self._latency_rng)
            self.scheduler.call_in(
                delay, self._arrive, source, destination, envelope
            )

    def _arrive(
        self, source: EntityId, destination: EntityId, envelope: Envelope
    ) -> None:
        node = self._nodes.get(destination)
        if node is None or node.crashed:
            self.hops_dropped += 1
            return
        self.hops_delivered += 1
        self.trace.record(
            self.scheduler.now,
            "receive",
            source=source,
            destination=destination,
            msg_id=envelope.msg_id,
        )
        node.on_receive(source, envelope)

    # -- quiescence -----------------------------------------------------------------

    async def quiesce(self, timeout: Optional[float] = None) -> None:
        """Wait until no deliveries are outstanding.

        Deliveries may schedule further sends, so waits in a loop until
        the idle event survives a zero-delay check.

        The idle event is cleared *before* sampling ``outstanding``: with
        the old clear-after-check order, a callback that ran between the
        check and the clear would set the event, the clear would erase
        that wakeup, and the wait could block for the full timeout (or
        forever) with nothing actually outstanding.
        """
        while True:
            self._idle.clear()
            if self.scheduler.outstanding == 0:
                return
            await asyncio.wait_for(self._idle.wait(), timeout)
            # Yield once so freshly-scheduled zero-delay work registers.
            await asyncio.sleep(0)


async def quiesce_all(
    networks: Iterable[AsyncioNetwork], timeout: Optional[float] = None
) -> None:
    """Quiesce several networks hosted on one event loop, together.

    A sharded deployment runs one :class:`AsyncioNetwork` per replication
    group on a single loop (the serving layer's live topology).  Awaiting
    each network's :meth:`~AsyncioNetwork.quiesce` in sequence is not
    enough: a callback on network B may run while network A's quiesce is
    returning and schedule fresh work on A.  This helper loops until one
    full pass observes *every* network simultaneously idle.

    ``timeout`` bounds each individual wait, as in ``quiesce``.
    """
    nets = list(networks)
    while True:
        for net in nets:
            await net.quiesce(timeout)
        # One extra yield: deliveries finishing on the last network may
        # have scheduled zero-delay work on an earlier one.
        await asyncio.sleep(0)
        if all(net.scheduler.outstanding == 0 for net in nets):
            return
