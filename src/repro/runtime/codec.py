"""Wire encoding for envelopes (JSON).

In-process transports pass :class:`~repro.types.Envelope` objects by
reference; crossing a real network needs a byte encoding.  This codec
covers the metadata the broadcast protocols attach:

* ``occurs_after`` — :class:`~repro.graph.predicates.OccursAfter`,
* ``vclock`` — :class:`~repro.clocks.vector.VectorClock`,
* ``epoch`` / ``total_seq`` — ints,
* ``lamport`` — :class:`~repro.clocks.lamport.Timestamp`,
* ``sent_matrix`` — RST's nested dict.

Payloads must be JSON-compatible scalars/lists/dicts, with two
extensions used by the library's own control traffic: ``MessageId``
values and frozensets of them are encoded structurally.

The codec is deliberately strict about *metadata*: unknown metadata keys
raise instead of being dropped silently, so a protocol extension cannot
lose information on the wire without a test noticing.  Unknown top-level
*envelope* fields, by contrast, are ignored on decode — a newer peer may
annotate envelopes (tracing ids, routing hints) without breaking older
decoders, which is what lets the wire format evolve one side at a time.

:func:`encode_value` / :func:`decode_value` expose the payload value
codec on its own; the serving layer (:mod:`repro.serve.wire`) reuses it
for request/reply documents so labels and label sets cross the client
wire with the same structural encoding the envelope payloads use.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.clocks.lamport import Timestamp
from repro.clocks.vector import VectorClock
from repro.errors import ProtocolError
from repro.graph.predicates import OccursAfter
from repro.types import Envelope, Message, MessageId

WIRE_VERSION = 1


# -- value encoding -----------------------------------------------------------


def _encode_value(value: Any) -> Any:
    if isinstance(value, MessageId):
        return {"__mid__": [value.sender, value.seqno]}
    if isinstance(value, (frozenset, set)):
        return {"__set__": [_encode_value(v) for v in sorted(value)]}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {
            "__dict__": [
                [_encode_value(k), _encode_value(v)]
                for k, v in value.items()
            ]
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    raise ProtocolError(f"cannot encode payload value: {value!r}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__mid__" in value:
            sender, seqno = value["__mid__"]
            return MessageId(sender, seqno)
        if "__set__" in value:
            return frozenset(_decode_value(v) for v in value["__set__"])
        if "__tuple__" in value:
            return tuple(_decode_value(v) for v in value["__tuple__"])
        if "__dict__" in value:
            return {
                _decode_value(k): _decode_value(v)
                for k, v in value["__dict__"]
            }
        raise ProtocolError(f"unknown structured value: {value!r}")
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode_value(value: Any) -> Any:
    """Encode one payload value into JSON-compatible structures.

    Scalars pass through; ``MessageId``, sets, tuples and non-string-keyed
    dicts become tagged objects (``__mid__``/``__set__``/…).  Raises
    :class:`ProtocolError` on anything JSON cannot carry.
    """
    return _encode_value(value)


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` (post-``json.loads`` structures)."""
    try:
        return _decode_value(value)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed wire value: {exc}") from exc


# -- metadata encoding ------------------------------------------------------------


def _encode_metadata(metadata: Any) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {}
    for key, value in metadata.items():
        if key == "occurs_after" and isinstance(value, OccursAfter):
            encoded[key] = [
                [l.sender, l.seqno] for l in sorted(value.ancestors)
            ]
        elif key == "vclock" and isinstance(value, VectorClock):
            encoded[key] = value.as_dict()
        elif key == "lamport" and isinstance(value, Timestamp):
            encoded[key] = [value.counter, value.entity]
        elif key == "sent_matrix" and isinstance(value, dict):
            encoded[key] = {
                row: dict(cols) for row, cols in value.items()
            }
        elif key in ("epoch", "total_seq") and isinstance(value, int):
            encoded[key] = value
        else:
            raise ProtocolError(
                f"cannot encode metadata key {key!r} (value {value!r})"
            )
    return encoded


def _decode_metadata(encoded: Dict[str, Any]) -> Dict[str, Any]:
    metadata: Dict[str, Any] = {}
    for key, value in encoded.items():
        if key == "occurs_after":
            metadata[key] = OccursAfter.after(
                [MessageId(s, n) for s, n in value]
            )
        elif key == "vclock":
            metadata[key] = VectorClock(value)
        elif key == "lamport":
            counter, entity = value
            metadata[key] = Timestamp(counter, entity)
        elif key == "sent_matrix":
            metadata[key] = {
                row: {col: int(c) for col, c in cols.items()}
                for row, cols in value.items()
            }
        elif key in ("epoch", "total_seq"):
            metadata[key] = int(value)
        else:
            raise ProtocolError(f"unknown metadata key on wire: {key!r}")
    return metadata


# -- envelope encoding -----------------------------------------------------------


def encode_envelope(envelope: Envelope) -> bytes:
    """Serialize an envelope to UTF-8 JSON bytes."""
    document = {
        "v": WIRE_VERSION,
        "id": [envelope.msg_id.sender, envelope.msg_id.seqno],
        "op": envelope.message.operation,
        "payload": _encode_value(envelope.message.payload),
        "meta": _encode_metadata(envelope.metadata),
    }
    return json.dumps(document, separators=(",", ":")).encode("utf-8")


def decode_envelope(data: bytes) -> Envelope:
    """Parse an envelope from :func:`encode_envelope` output.

    Top-level fields this decoder does not know are ignored (forward
    compatibility: a newer encoder may annotate envelopes); unknown
    *metadata* keys still raise, because metadata is what the ordering
    protocols act on and must never be silently dropped.
    """
    try:
        document = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed wire envelope: {exc}") from exc
    version = document.get("v")
    if version != WIRE_VERSION:
        raise ProtocolError(f"unsupported wire version: {version!r}")
    try:
        sender, seqno = document["id"]
        message = Message(
            MessageId(sender, seqno),
            document["op"],
            _decode_value(document["payload"]),
        )
        metadata = _decode_metadata(document["meta"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed wire envelope: {exc}") from exc
    return Envelope(message, metadata)
