"""Wire encoding for envelopes (JSON, plus a compact binary form).

In-process transports pass :class:`~repro.types.Envelope` objects by
reference; crossing a real network needs a byte encoding.  This codec
covers the metadata the broadcast protocols attach:

* ``occurs_after`` — :class:`~repro.graph.predicates.OccursAfter`,
* ``vclock`` — :class:`~repro.clocks.vector.VectorClock`,
* ``epoch`` / ``total_seq`` — ints,
* ``lamport`` — :class:`~repro.clocks.lamport.Timestamp`,
* ``sent_matrix`` — RST's nested dict.

Payloads must be JSON-compatible scalars/lists/dicts, with two
extensions used by the library's own control traffic: ``MessageId``
values and frozensets of them are encoded structurally.

The codec is deliberately strict about *metadata*: unknown metadata keys
raise instead of being dropped silently, so a protocol extension cannot
lose information on the wire without a test noticing.  Unknown top-level
*envelope* fields, by contrast, are ignored on decode — a newer peer may
annotate envelopes (tracing ids, routing hints) without breaking older
decoders, which is what lets the wire format evolve one side at a time.

:func:`encode_value` / :func:`decode_value` expose the payload value
codec on its own; the serving layer (:mod:`repro.serve.wire`) reuses it
for request/reply documents so labels and label sets cross the client
wire with the same structural encoding the envelope payloads use.

Next to the JSON form lives a **binary** codec over the *same* value
domain: every value the JSON codec accepts round-trips identically
through :func:`encode_value_binary` / :func:`decode_value_binary` (and
envelopes through :func:`encode_envelope_binary`).  Values are tagged
bytes — one tag byte, then LEB128 varints for lengths and integers
(zigzag for signed), ``struct``-packed doubles for floats, UTF-8 for
strings — with no intermediate ``__mid__``-style structural wrapping, so
a ``MessageId`` costs a tag, a short string and a varint instead of a
JSON object.  The serving layer negotiates which form a connection
speaks; JSON stays the default.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Tuple

from repro.clocks.lamport import Timestamp
from repro.clocks.vector import VectorClock
from repro.errors import ProtocolError
from repro.graph.predicates import OccursAfter
from repro.types import Envelope, Message, MessageId

WIRE_VERSION = 1


# -- value encoding -----------------------------------------------------------


def _encode_value(value: Any) -> Any:
    if isinstance(value, MessageId):
        return {"__mid__": [value.sender, value.seqno]}
    if isinstance(value, (frozenset, set)):
        return {"__set__": [_encode_value(v) for v in sorted(value)]}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {
            "__dict__": [
                [_encode_value(k), _encode_value(v)]
                for k, v in value.items()
            ]
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    raise ProtocolError(f"cannot encode payload value: {value!r}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__mid__" in value:
            sender, seqno = value["__mid__"]
            return MessageId(sender, seqno)
        if "__set__" in value:
            return frozenset(_decode_value(v) for v in value["__set__"])
        if "__tuple__" in value:
            return tuple(_decode_value(v) for v in value["__tuple__"])
        if "__dict__" in value:
            return {
                _decode_value(k): _decode_value(v)
                for k, v in value["__dict__"]
            }
        raise ProtocolError(f"unknown structured value: {value!r}")
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode_value(value: Any) -> Any:
    """Encode one payload value into JSON-compatible structures.

    Scalars pass through; ``MessageId``, sets, tuples and non-string-keyed
    dicts become tagged objects (``__mid__``/``__set__``/…).  Raises
    :class:`ProtocolError` on anything JSON cannot carry.
    """
    return _encode_value(value)


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` (post-``json.loads`` structures)."""
    try:
        return _decode_value(value)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed wire value: {exc}") from exc


# -- metadata encoding ------------------------------------------------------------


def _encode_metadata(metadata: Any) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {}
    for key, value in metadata.items():
        if key == "occurs_after" and isinstance(value, OccursAfter):
            encoded[key] = [
                [l.sender, l.seqno] for l in sorted(value.ancestors)
            ]
        elif key == "vclock" and isinstance(value, VectorClock):
            encoded[key] = value.as_dict()
        elif key == "lamport" and isinstance(value, Timestamp):
            encoded[key] = [value.counter, value.entity]
        elif key == "sent_matrix" and isinstance(value, dict):
            encoded[key] = {
                row: dict(cols) for row, cols in value.items()
            }
        elif key in ("epoch", "total_seq") and isinstance(value, int):
            encoded[key] = value
        else:
            raise ProtocolError(
                f"cannot encode metadata key {key!r} (value {value!r})"
            )
    return encoded


def _decode_metadata(encoded: Dict[str, Any]) -> Dict[str, Any]:
    metadata: Dict[str, Any] = {}
    for key, value in encoded.items():
        if key == "occurs_after":
            metadata[key] = OccursAfter.after(
                [MessageId(s, n) for s, n in value]
            )
        elif key == "vclock":
            metadata[key] = VectorClock(value)
        elif key == "lamport":
            counter, entity = value
            metadata[key] = Timestamp(counter, entity)
        elif key == "sent_matrix":
            metadata[key] = {
                row: {col: int(c) for col, c in cols.items()}
                for row, cols in value.items()
            }
        elif key in ("epoch", "total_seq"):
            metadata[key] = int(value)
        else:
            raise ProtocolError(f"unknown metadata key on wire: {key!r}")
    return metadata


# -- envelope encoding -----------------------------------------------------------


def encode_envelope(envelope: Envelope) -> bytes:
    """Serialize an envelope to UTF-8 JSON bytes."""
    document = {
        "v": WIRE_VERSION,
        "id": [envelope.msg_id.sender, envelope.msg_id.seqno],
        "op": envelope.message.operation,
        "payload": _encode_value(envelope.message.payload),
        "meta": _encode_metadata(envelope.metadata),
    }
    return json.dumps(document, separators=(",", ":")).encode("utf-8")


def decode_envelope(data: bytes) -> Envelope:
    """Parse an envelope from :func:`encode_envelope` output.

    Top-level fields this decoder does not know are ignored (forward
    compatibility: a newer encoder may annotate envelopes); unknown
    *metadata* keys still raise, because metadata is what the ordering
    protocols act on and must never be silently dropped.
    """
    try:
        document = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed wire envelope: {exc}") from exc
    version = document.get("v")
    if version != WIRE_VERSION:
        raise ProtocolError(f"unsupported wire version: {version!r}")
    try:
        sender, seqno = document["id"]
        message = Message(
            MessageId(sender, seqno),
            document["op"],
            _decode_value(document["payload"]),
        )
        metadata = _decode_metadata(document["meta"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed wire envelope: {exc}") from exc
    return Envelope(message, metadata)


# -- binary encoding ----------------------------------------------------------

#: Version byte leading every binary envelope.
BINARY_WIRE_VERSION = 1

# Value tags.  ``True``/``False`` get their own tags (a bool is an int in
# Python — the tag keeps the type across the wire, as JSON does).
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_BIGINT = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_SET = 0x09
_T_DICT = 0x0A
_T_MID = 0x0B

# Metadata key tags (same closed key set the JSON codec enforces).
_M_OCCURS_AFTER = 0x01
_M_VCLOCK = 0x02
_M_LAMPORT = 0x03
_M_SENT_MATRIX = 0x04
_M_EPOCH = 0x05
_M_TOTAL_SEQ = 0x06

#: Signed ints up to this magnitude travel as zigzag varints; wider ones
#: (Python ints are unbounded) fall back to a length-prefixed decimal
#: string, mirroring what JSON does for every int.
_VARINT_MAX = 1 << 63

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from


def _write_varint(out: bytearray, number: int) -> None:
    """LEB128 unsigned varint."""
    if number < 0:
        raise ProtocolError(f"cannot varint-encode negative {number}")
    while True:
        byte = number & 0x7F
        number >>= 7
        if number:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ProtocolError("binary value truncated in varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise ProtocolError("binary varint too wide")


def _write_str(out: bytearray, text: str) -> None:
    encoded = text.encode("utf-8")
    _write_varint(out, len(encoded))
    out += encoded


def _read_str(data: bytes, offset: int) -> Tuple[str, int]:
    length, offset = _read_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise ProtocolError("binary value truncated in string")
    try:
        return data[offset:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"malformed binary string: {exc}") from exc


def _write_value(out: bytearray, value: Any) -> None:
    # Branches ordered by serve-frame frequency; one-byte varints (almost
    # every length and small int) are written inline.
    if type(value) is str:
        encoded = value.encode("utf-8")
        length = len(encoded)
        if length < 0x80:
            out.append(_T_STR)
            out.append(length)
        else:
            out.append(_T_STR)
            _write_varint(out, length)
        out += encoded
    elif value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        if -_VARINT_MAX <= value < _VARINT_MAX:
            zig = (value << 1) if value >= 0 else ((-value) << 1) - 1
            if zig < 0x80:
                out.append(_T_INT)
                out.append(zig)
            else:
                out.append(_T_INT)
                _write_varint(out, zig)
        else:
            out.append(_T_BIGINT)
            _write_str(out, str(value))
    elif isinstance(value, dict):
        out.append(_T_DICT)
        count = len(value)
        if count < 0x80:
            out.append(count)
        else:
            _write_varint(out, count)
        for key, item in value.items():
            _write_value(out, key)
            _write_value(out, item)
    elif isinstance(value, list):
        out.append(_T_LIST)
        count = len(value)
        if count < 0x80:
            out.append(count)
        else:
            _write_varint(out, count)
        for item in value:
            _write_value(out, item)
    elif isinstance(value, MessageId):
        out.append(_T_MID)
        _write_str(out, value.sender)
        _write_varint(out, (value.seqno << 1) ^ (value.seqno >> 63))
    elif isinstance(value, str):
        out.append(_T_STR)
        _write_str(out, value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _pack_double(value)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        _write_varint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, (frozenset, set)):
        out.append(_T_SET)
        _write_varint(out, len(value))
        # Sorted for deterministic bytes, matching the JSON form.
        for item in sorted(value):
            _write_value(out, item)
    else:
        raise ProtocolError(f"cannot encode payload value: {value!r}")


def _read_value(data: bytes, offset: int) -> Tuple[Any, int]:
    # Hot path: tags ordered by serve-frame frequency, and the one-byte
    # varint case (nearly every length and small int) is inlined.  A
    # truncated buffer surfaces as IndexError from `data[offset]`, turned
    # into ProtocolError at the decode entry points.
    tag = data[offset]
    offset += 1
    if tag == _T_STR:
        length = data[offset]
        offset += 1
        if length > 0x7F:
            length, offset = _read_varint(data, offset - 1)
        end = offset + length
        if end > len(data):
            raise ProtocolError("binary value truncated in string")
        try:
            return data[offset:end].decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"malformed binary string: {exc}") from exc
    if tag == _T_INT:
        raw = data[offset]
        offset += 1
        if raw > 0x7F:
            raw, offset = _read_varint(data, offset - 1)
        return (raw >> 1) ^ -(raw & 1), offset
    if tag == _T_DICT:
        count = data[offset]
        offset += 1
        if count > 0x7F:
            count, offset = _read_varint(data, offset - 1)
        entries: Dict[Any, Any] = {}
        for _ in range(count):
            key, offset = _read_value(data, offset)
            item, offset = _read_value(data, offset)
            entries[key] = item
        return entries, offset
    if tag == _T_LIST or tag == _T_TUPLE:
        count = data[offset]
        offset += 1
        if count > 0x7F:
            count, offset = _read_varint(data, offset - 1)
        items: List[Any] = []
        for _ in range(count):
            item, offset = _read_value(data, offset)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), offset
    if tag == _T_MID:
        sender, offset = _read_str(data, offset)
        raw = data[offset]
        offset += 1
        if raw > 0x7F:
            raw, offset = _read_varint(data, offset - 1)
        return MessageId(sender, (raw >> 1) ^ -(raw & 1)), offset
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_SET:
        count, offset = _read_varint(data, offset)
        members: List[Any] = []
        for _ in range(count):
            item, offset = _read_value(data, offset)
            members.append(item)
        return frozenset(members), offset
    if tag == _T_FLOAT:
        if offset + 8 > len(data):
            raise ProtocolError("binary value truncated in float")
        return _unpack_double(data, offset)[0], offset + 8
    if tag == _T_BIGINT:
        text, offset = _read_str(data, offset)
        try:
            return int(text), offset
        except ValueError as exc:
            raise ProtocolError(f"malformed binary bigint: {text!r}") from exc
    raise ProtocolError(f"unknown binary value tag: {tag:#04x}")


def _skip_value(data: bytes, offset: int) -> int:
    """Advance past one encoded value without materialising it."""
    tag = data[offset]
    offset += 1
    if tag == _T_STR or tag == _T_BIGINT:
        length = data[offset]
        offset += 1
        if length > 0x7F:
            length, offset = _read_varint(data, offset - 1)
        end = offset + length
        if end > len(data):
            raise ProtocolError("binary value truncated in string")
        return end
    if tag == _T_INT:
        while data[offset] > 0x7F:
            offset += 1
        return offset + 1
    if tag == _T_DICT:
        count, offset = _read_varint(data, offset)
        for _ in range(count):
            offset = _skip_value(data, offset)
            offset = _skip_value(data, offset)
        return offset
    if tag == _T_LIST or tag == _T_TUPLE or tag == _T_SET:
        count, offset = _read_varint(data, offset)
        for _ in range(count):
            offset = _skip_value(data, offset)
        return offset
    if tag == _T_MID:
        length = data[offset]
        offset += 1
        if length > 0x7F:
            length, offset = _read_varint(data, offset - 1)
        offset += length
        while data[offset] > 0x7F:
            offset += 1
        return offset + 1
    if tag == _T_NONE or tag == _T_TRUE or tag == _T_FALSE:
        return offset
    if tag == _T_FLOAT:
        return offset + 8
    raise ProtocolError(f"unknown binary value tag: {tag:#04x}")


def encode_value_binary(value: Any) -> bytes:
    """Binary form of :func:`encode_value` over the same value domain."""
    out = bytearray()
    _write_value(out, value)
    return bytes(out)


def decode_value_binary(data: bytes) -> Any:
    """Inverse of :func:`encode_value_binary`; rejects trailing bytes."""
    try:
        value, offset = _read_value(data, 0)
    except IndexError as exc:
        raise ProtocolError("binary value truncated") from exc
    if offset != len(data):
        raise ProtocolError(
            f"binary value has {len(data) - offset} trailing bytes"
        )
    return value


# -- binary metadata ---------------------------------------------------------


def _write_metadata(out: bytearray, metadata: Any) -> None:
    _write_varint(out, len(metadata))
    for key, value in metadata.items():
        if key == "occurs_after" and isinstance(value, OccursAfter):
            out.append(_M_OCCURS_AFTER)
            _write_varint(out, len(value.ancestors))
            for label in sorted(value.ancestors):
                _write_str(out, label.sender)
                _write_varint(out, (label.seqno << 1) ^ (label.seqno >> 63))
        elif key == "vclock" and isinstance(value, VectorClock):
            entries = value.as_dict()
            out.append(_M_VCLOCK)
            _write_varint(out, len(entries))
            for entity, counter in sorted(entries.items()):
                _write_str(out, entity)
                _write_varint(out, counter)
        elif key == "lamport" and isinstance(value, Timestamp):
            out.append(_M_LAMPORT)
            _write_varint(out, value.counter)
            _write_str(out, value.entity)
        elif key == "sent_matrix" and isinstance(value, dict):
            out.append(_M_SENT_MATRIX)
            _write_varint(out, len(value))
            for row, cols in sorted(value.items()):
                _write_str(out, row)
                _write_varint(out, len(cols))
                for col, count in sorted(cols.items()):
                    _write_str(out, col)
                    _write_varint(out, count)
        elif key in ("epoch", "total_seq") and isinstance(value, int):
            out.append(_M_EPOCH if key == "epoch" else _M_TOTAL_SEQ)
            _write_varint(out, value)
        else:
            raise ProtocolError(
                f"cannot encode metadata key {key!r} (value {value!r})"
            )


def _read_metadata(data: bytes, offset: int) -> Tuple[Dict[str, Any], int]:
    count, offset = _read_varint(data, offset)
    metadata: Dict[str, Any] = {}
    for _ in range(count):
        if offset >= len(data):
            raise ProtocolError("binary metadata truncated at key tag")
        tag = data[offset]
        offset += 1
        if tag == _M_OCCURS_AFTER:
            size, offset = _read_varint(data, offset)
            labels = []
            for _ in range(size):
                sender, offset = _read_str(data, offset)
                raw, offset = _read_varint(data, offset)
                labels.append(MessageId(sender, (raw >> 1) ^ -(raw & 1)))
            metadata["occurs_after"] = OccursAfter.after(labels)
        elif tag == _M_VCLOCK:
            size, offset = _read_varint(data, offset)
            entries: Dict[str, int] = {}
            for _ in range(size):
                entity, offset = _read_str(data, offset)
                entries[entity], offset = _read_varint(data, offset)
            metadata["vclock"] = VectorClock(entries)
        elif tag == _M_LAMPORT:
            counter, offset = _read_varint(data, offset)
            entity, offset = _read_str(data, offset)
            metadata["lamport"] = Timestamp(counter, entity)
        elif tag == _M_SENT_MATRIX:
            rows, offset = _read_varint(data, offset)
            matrix: Dict[str, Dict[str, int]] = {}
            for _ in range(rows):
                row, offset = _read_str(data, offset)
                width, offset = _read_varint(data, offset)
                cols: Dict[str, int] = {}
                for _ in range(width):
                    col, offset = _read_str(data, offset)
                    cols[col], offset = _read_varint(data, offset)
                matrix[row] = cols
            metadata["sent_matrix"] = matrix
        elif tag == _M_EPOCH:
            metadata["epoch"], offset = _read_varint(data, offset)
        elif tag == _M_TOTAL_SEQ:
            metadata["total_seq"], offset = _read_varint(data, offset)
        else:
            raise ProtocolError(f"unknown metadata key on wire: {tag:#04x}")
    return metadata, offset


# -- binary envelopes --------------------------------------------------------


def encode_envelope_binary(envelope: Envelope) -> bytes:
    """Serialize an envelope to the compact binary form."""
    out = bytearray()
    out.append(BINARY_WIRE_VERSION)
    _write_str(out, envelope.msg_id.sender)
    seqno = envelope.msg_id.seqno
    _write_varint(out, (seqno << 1) ^ (seqno >> 63))
    _write_str(out, envelope.message.operation)
    _write_value(out, envelope.message.payload)
    _write_metadata(out, envelope.metadata)
    return bytes(out)


def decode_envelope_binary(data: bytes) -> Envelope:
    """Parse an envelope from :func:`encode_envelope_binary` output."""
    if not data:
        raise ProtocolError("empty binary envelope")
    if data[0] != BINARY_WIRE_VERSION:
        raise ProtocolError(f"unsupported wire version: {data[0]!r}")
    try:
        sender, offset = _read_str(data, 1)
        raw, offset = _read_varint(data, offset)
        operation, offset = _read_str(data, offset)
        payload, offset = _read_value(data, offset)
        metadata, offset = _read_metadata(data, offset)
    except IndexError as exc:
        raise ProtocolError(f"malformed binary envelope: {exc}") from exc
    if offset != len(data):
        raise ProtocolError(
            f"binary envelope has {len(data) - offset} trailing bytes"
        )
    message = Message(
        MessageId(sender, (raw >> 1) ^ -(raw & 1)), operation, payload
    )
    return Envelope(message, metadata)
