"""Real-time (asyncio) runtime and wire codec for the protocol stacks."""

from repro.runtime.asyncio_transport import (
    AsyncioClock,
    AsyncioNetwork,
    quiesce_all,
)
from repro.runtime.codec import (
    decode_envelope,
    decode_value,
    encode_envelope,
    encode_value,
)

__all__ = [
    "AsyncioClock",
    "AsyncioNetwork",
    "decode_envelope",
    "decode_value",
    "encode_envelope",
    "encode_value",
    "quiesce_all",
]
