"""Real-time (asyncio) runtime and wire codec for the protocol stacks."""

from repro.runtime.asyncio_transport import AsyncioClock, AsyncioNetwork
from repro.runtime.codec import decode_envelope, encode_envelope

__all__ = [
    "AsyncioClock",
    "AsyncioNetwork",
    "decode_envelope",
    "encode_envelope",
]
