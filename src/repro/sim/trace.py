"""Structured trace recording for simulation runs.

Every interesting occurrence — a send, a network hop, a delivery, a stable
point — is recorded as a :class:`TraceEvent`.  The analysis layer
(:mod:`repro.analysis`) consumes traces to verify causal delivery, measure
latency and locate synchronization points, mirroring the paper's idea that
the message dependency graph is "extractable by observing execution
behaviour" (Section 3.2).

Per-hop events (``"receive"`` and ``"hold"``) are recorded once per
network arrival, which dominates tracing cost in large runs.  They are
therefore *opt-out*: ``hop_events`` selects full recording (the default,
used by the analysis layer), deterministic 1-in-``hop_sample_every``
sampling, or none at all — benchmarks time protocol work, not trace
appends.  Producers call :meth:`TraceRecorder.wants` before building an
event so a suppressed hop costs one predicate check and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

#: Event kinds emitted once per network arrival (the hot path).
HOP_KINDS = frozenset({"receive", "hold"})

#: Valid ``hop_events`` modes.
HOP_MODES = ("full", "sampled", "off")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``kind`` is a short category string; the library uses (at least):
    ``"send"``, ``"transmit"``, ``"receive"``, ``"deliver"``, ``"hold"``,
    ``"stable_point"``, ``"discard"``.  ``details`` carries event-specific
    fields (message id, entity, queue sizes, ...).
    """

    time: float
    kind: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.details.get(key, default)


class TraceRecorder:
    """Append-only event log with simple filtering helpers.

    Parameters
    ----------
    enabled:
        Master switch; a disabled recorder drops everything.
    hop_events:
        ``"full"`` records every per-hop event, ``"sampled"`` keeps one in
        ``hop_sample_every`` per kind (deterministic, count-based — the
        ``queue`` field of sampled ``"hold"`` events still reflects true
        queue depth at the sampled instants), ``"off"`` drops hop events
        entirely.  Non-hop kinds (``"send"``, ``"deliver"``, ...) are
        always recorded while enabled.
    hop_sample_every:
        Sampling period for ``hop_events="sampled"``.
    """

    def __init__(
        self,
        enabled: bool = True,
        hop_events: str = "full",
        hop_sample_every: int = 100,
    ) -> None:
        if hop_events not in HOP_MODES:
            raise ValueError(
                f"hop_events must be one of {HOP_MODES}, got {hop_events!r}"
            )
        if hop_sample_every < 1:
            raise ValueError("hop_sample_every must be >= 1")
        self.enabled = enabled
        self.hop_events = hop_events
        self.hop_sample_every = hop_sample_every
        self._hop_counts: Dict[str, int] = {}
        self._events: List[TraceEvent] = []
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    def wants(self, kind: str) -> bool:
        """Whether an event of ``kind`` would be kept *right now*.

        Producers on hot paths call this before assembling event details,
        so suppressed hops cost nothing.  For sampled hop kinds this
        advances the sampling counter — follow a ``True`` with the
        matching :meth:`record` call.
        """
        if not self.enabled:
            return False
        if kind in HOP_KINDS:
            if self.hop_events == "off":
                return False
            if self.hop_events == "sampled":
                count = self._hop_counts.get(kind, 0)
                self._hop_counts[kind] = count + 1
                return count % self.hop_sample_every == 0
        return True

    def record(self, time: float, kind: str, **details: Any) -> None:
        """Record one event (no-op when disabled).

        Hop-kind events passed directly to ``record`` (without a prior
        ``wants`` gate) are filtered here as well, so legacy callers keep
        working under ``hop_events="off"``; such callers should migrate to
        the ``wants`` gate to also skip building ``details``.
        """
        if not self.enabled:
            return
        if kind in HOP_KINDS and self.hop_events == "off":
            return
        event = TraceEvent(time, kind, details)
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` for every future event."""
        self._subscribers.append(callback)

    # -- querying ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """The full event list (a copy, safe to mutate)."""
        return list(self._events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events with the given ``kind``, in time order."""
        return [e for e in self._events if e.kind == kind]

    def where(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        """All events satisfying ``predicate``, in time order."""
        return [e for e in self._events if predicate(e)]

    def first(
        self, kind: str, predicate: Optional[Callable[[TraceEvent], bool]] = None
    ) -> Optional[TraceEvent]:
        """The earliest event of ``kind`` (optionally filtered), or None."""
        for event in self._events:
            if event.kind != kind:
                continue
            if predicate is None or predicate(event):
                return event
        return None

    def clear(self) -> None:
        self._events.clear()
        self._hop_counts.clear()
