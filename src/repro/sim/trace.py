"""Structured trace recording for simulation runs.

Every interesting occurrence — a send, a network hop, a delivery, a stable
point — is recorded as a :class:`TraceEvent`.  The analysis layer
(:mod:`repro.analysis`) consumes traces to verify causal delivery, measure
latency and locate synchronization points, mirroring the paper's idea that
the message dependency graph is "extractable by observing execution
behaviour" (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Mapping, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``kind`` is a short category string; the library uses (at least):
    ``"send"``, ``"transmit"``, ``"receive"``, ``"deliver"``, ``"hold"``,
    ``"stable_point"``, ``"discard"``.  ``details`` carries event-specific
    fields (message id, entity, queue sizes, ...).
    """

    time: float
    kind: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.details.get(key, default)


class TraceRecorder:
    """Append-only event log with simple filtering helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    def record(self, time: float, kind: str, **details: Any) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(time, kind, details)
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` for every future event."""
        self._subscribers.append(callback)

    # -- querying ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """The full event list (a copy, safe to mutate)."""
        return list(self._events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events with the given ``kind``, in time order."""
        return [e for e in self._events if e.kind == kind]

    def where(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        """All events satisfying ``predicate``, in time order."""
        return [e for e in self._events if predicate(e)]

    def first(
        self, kind: str, predicate: Optional[Callable[[TraceEvent], bool]] = None
    ) -> Optional[TraceEvent]:
        """The earliest event of ``kind`` (optionally filtered), or None."""
        for event in self._events:
            if event.kind != kind:
                continue
            if predicate is None or predicate(event):
                return event
        return None

    def clear(self) -> None:
        self._events.clear()
