"""Seeded, named random streams.

Reproducibility across experiments requires that adding a new source of
randomness (say, a second lossy link) must not perturb the draws seen by
existing sources.  A single shared ``random.Random`` would break that, so
the registry derives an *independent* child stream per name from one master
seed.  The same ``(master_seed, name)`` pair always yields the same stream,
regardless of creation order.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory of independent named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        Repeated calls with the same name return the *same* object, so
        consumers share position within the stream.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self._derive_seed(name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry whose streams are independent of ours."""
        return RngRegistry(self._derive_seed(f"fork:{name}"))

    def _derive_seed(self, name: str) -> int:
        material = f"{self._master_seed}/{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")
