"""Base class for simulated protocol endpoints.

A :class:`SimNode` is an application entity (``a_i`` in the paper) attached
to a scheduler and a network.  Subclasses — broadcast protocol stacks,
replicas, clients — override :meth:`on_receive` to process incoming
envelopes and use :meth:`send`/:meth:`broadcast` via the attached network.

Crash-stop fault model
----------------------

A node can :meth:`crash` and later :meth:`restart`.  While crashed:

* the network discards every hop addressed to it (and every hop it would
  originate), so it neither receives nor sends;
* timers armed through the node's *guarded* scheduling helpers
  (:meth:`call_in` / :meth:`call_at` / :meth:`call_now`) are suppressed —
  they fire only if the node is up **and** still in the incarnation that
  armed them, so a restart also cancels the previous life's timers.

:meth:`restart` begins a new *incarnation* (a monotonically increasing
counter) and invokes the :meth:`_on_restart` hook, where subclasses model
volatile-state loss — a restarted node is *amnesiac* except for whatever
the subclass declares durable (e.g. its message-label allocator, so labels
are never reused across incarnations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.types import Envelope, EntityId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network
    from repro.sim.scheduler import Scheduler


class SimNode:
    """A named endpoint living on a simulated network."""

    def __init__(self, entity_id: EntityId) -> None:
        self.entity_id = entity_id
        self._network: Optional["Network"] = None
        self._crashed = False
        self._incarnation = 0

    # -- wiring -------------------------------------------------------------

    def attach(self, network: "Network") -> None:
        """Called by :class:`~repro.net.network.Network` on registration."""
        self._network = network

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise ConfigurationError(
                f"node {self.entity_id!r} is not attached to a network"
            )
        return self._network

    @property
    def scheduler(self) -> "Scheduler":
        return self.network.scheduler

    @property
    def now(self) -> float:
        """Current simulation time (shortcut for ``self.scheduler.now``)."""
        return self.scheduler.now

    # -- crash-stop lifecycle ------------------------------------------------

    @property
    def crashed(self) -> bool:
        """Whether the node is currently down."""
        return self._crashed

    @property
    def incarnation(self) -> int:
        """Number of restarts so far (0 for the original life)."""
        return self._incarnation

    def crash(self) -> None:
        """Take the node down (crash-stop: no further sends or receives)."""
        if self._crashed:
            raise SimulationError(f"{self.entity_id!r} is already crashed")
        self._crashed = True
        self._on_crash()

    def restart(self) -> None:
        """Bring the node back up as a new, amnesiac incarnation."""
        if not self._crashed:
            raise SimulationError(f"{self.entity_id!r} is not crashed")
        self._crashed = False
        self._incarnation += 1
        self._on_restart()

    def _on_crash(self) -> None:
        """Hook invoked when the node goes down."""

    def _on_restart(self) -> None:
        """Hook invoked on restart; subclasses drop volatile state here."""

    # -- guarded timers --------------------------------------------------------

    def call_at(self, time: float, callback: Callable[..., Any], *args: Any):
        """Schedule ``callback`` at ``time``, suppressed if this node is
        down (or restarted) when the timer fires."""
        return self.scheduler.call_at(time, self._guard(callback), *args)

    def call_in(self, delay: float, callback: Callable[..., Any], *args: Any):
        """Schedule ``callback`` after ``delay`` with the crash guard."""
        return self.scheduler.call_in(delay, self._guard(callback), *args)

    def call_now(self, callback: Callable[..., Any], *args: Any):
        """Schedule ``callback`` at the current time with the crash guard."""
        return self.scheduler.call_now(self._guard(callback), *args)

    def _guard(self, callback: Callable[..., Any]) -> Callable[..., Any]:
        armed_in = self._incarnation

        def guarded(*args: Any) -> None:
            if self._crashed or self._incarnation != armed_in:
                return
            callback(*args)

        return guarded

    # -- sending ------------------------------------------------------------

    def send(self, destination: EntityId, envelope: Envelope) -> None:
        """Send ``envelope`` point-to-point to ``destination``."""
        if self._crashed:
            raise SimulationError(
                f"{self.entity_id!r} is crashed and cannot send"
            )
        self.network.unicast(self.entity_id, destination, envelope)

    def broadcast(self, envelope: Envelope) -> None:
        """Send ``envelope`` to every registered node (including self).

        Self-delivery goes through the network like any other copy so that
        protocols treat the local replica uniformly — matching the paper's
        model where a member's own access message is "seen by all entities".
        """
        if self._crashed:
            raise SimulationError(
                f"{self.entity_id!r} is crashed and cannot send"
            )
        self.network.broadcast(self.entity_id, envelope)

    # -- receiving ------------------------------------------------------------

    def on_receive(self, sender: EntityId, envelope: Envelope) -> None:
        """Handle an envelope arriving from the network.

        Subclasses must override.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.entity_id}>"
