"""Base class for simulated protocol endpoints.

A :class:`SimNode` is an application entity (``a_i`` in the paper) attached
to a scheduler and a network.  Subclasses — broadcast protocol stacks,
replicas, clients — override :meth:`on_receive` to process incoming
envelopes and use :meth:`send`/:meth:`broadcast` via the attached network.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.types import Envelope, EntityId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network
    from repro.sim.scheduler import Scheduler


class SimNode:
    """A named endpoint living on a simulated network."""

    def __init__(self, entity_id: EntityId) -> None:
        self.entity_id = entity_id
        self._network: Optional["Network"] = None

    # -- wiring -------------------------------------------------------------

    def attach(self, network: "Network") -> None:
        """Called by :class:`~repro.net.network.Network` on registration."""
        self._network = network

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise ConfigurationError(
                f"node {self.entity_id!r} is not attached to a network"
            )
        return self._network

    @property
    def scheduler(self) -> "Scheduler":
        return self.network.scheduler

    @property
    def now(self) -> float:
        """Current simulation time (shortcut for ``self.scheduler.now``)."""
        return self.scheduler.now

    # -- sending ------------------------------------------------------------

    def send(self, destination: EntityId, envelope: Envelope) -> None:
        """Send ``envelope`` point-to-point to ``destination``."""
        self.network.unicast(self.entity_id, destination, envelope)

    def broadcast(self, envelope: Envelope) -> None:
        """Send ``envelope`` to every registered node (including self).

        Self-delivery goes through the network like any other copy so that
        protocols treat the local replica uniformly — matching the paper's
        model where a member's own access message is "seen by all entities".
        """
        self.network.broadcast(self.entity_id, envelope)

    # -- receiving ------------------------------------------------------------

    def on_receive(self, sender: EntityId, envelope: Envelope) -> None:
        """Handle an envelope arriving from the network.

        Subclasses must override.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.entity_id}>"
