"""Deterministic discrete-event scheduler.

The scheduler maintains a priority queue of ``(time, tiebreak, callback)``
entries.  Ties on ``time`` are broken by insertion order, which makes runs
bit-for-bit reproducible: two events scheduled for the same instant always
fire in the order they were scheduled.

Typical use::

    sched = Scheduler()
    sched.call_at(1.5, lambda: print("hello at t=1.5"))
    sched.call_in(0.3, deliver, envelope)       # relative delay
    sched.run()                                  # drain the queue

The scheduler is single-threaded and re-entrant: callbacks may schedule
further events, including events at the current time (which run after all
earlier-scheduled events at that time).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SchedulerStoppedError, SimulationError


class EventHandle:
    """Handle to a scheduled event, allowing cancellation.

    Cancellation is *lazy*: the entry stays in the heap but is skipped when
    popped.  This keeps both operations O(log n).
    """

    __slots__ = ("time", "_callback", "_args", "_cancelled")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self._callback = callback
        self._args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        self._callback(*self._args)


class Scheduler:
    """A deterministic discrete-event loop with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (default ``0.0``).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._tiebreak = itertools.count()
        self._stopped = False
        self._events_processed = 0

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queue entries not yet fired (includes cancelled)."""
        return len(self._queue)

    # -- scheduling -------------------------------------------------------

    def call_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Raises
        ------
        SimulationError
            If ``time`` is in the past (before the current clock).
        SchedulerStoppedError
            If :meth:`stop` has been called.
        """
        if self._stopped:
            raise SchedulerStoppedError(
                "cannot schedule events on a stopped scheduler"
            )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        handle = EventHandle(time, callback, args)
        heapq.heappush(self._queue, (time, next(self._tiebreak), handle))
        return handle

    def call_in(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after a relative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args)

    def call_now(self, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current time.

        The callback runs after every event already queued for this instant.
        """
        return self.call_at(self._now, callback, *args)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Fire the next non-cancelled event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        """
        while self._queue:
            time, _, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            handle._fire()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the event queue; return the number of events fired.

        Parameters
        ----------
        max_events:
            Safety bound; raise :class:`SimulationError` when exceeded so a
            protocol bug that generates events forever fails loudly instead
            of hanging.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired > max_events:
                raise SimulationError(
                    f"run() exceeded max_events={max_events}; "
                    "likely a livelocked protocol"
                )
        return fired

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> int:
        """Fire events with time <= ``deadline``; advance clock to deadline.

        Returns the number of events fired.  Events scheduled after the
        deadline remain queued.
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline {deadline} is before now={self._now}"
            )
        fired = 0
        while self._queue:
            time, _, handle = self._queue[0]
            if time > deadline:
                break
            heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            handle._fire()
            fired += 1
            if max_events is not None and fired > max_events:
                raise SimulationError(
                    f"run_until() exceeded max_events={max_events}"
                )
        self._now = deadline
        return fired

    def stop(self) -> None:
        """Refuse further scheduling; pending events are discarded."""
        self._stopped = True
        self._queue.clear()
