"""Deterministic discrete-event simulation engine.

The paper's experiments ran on a LAN of workstations; we substitute a
seeded discrete-event simulator so that every interleaving is exactly
reproducible (see DESIGN.md, "Substitutions").  The engine is deliberately
small:

* :class:`~repro.sim.scheduler.Scheduler` — the event loop,
* :class:`~repro.sim.rng.RngRegistry` — independent named random streams,
* :class:`~repro.sim.trace.TraceRecorder` — structured event traces,
* :class:`~repro.sim.node.SimNode` — base class for protocol endpoints.
"""

from repro.sim.node import SimNode
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import EventHandle, Scheduler
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "EventHandle",
    "RngRegistry",
    "Scheduler",
    "SimNode",
    "TraceEvent",
    "TraceRecorder",
]
