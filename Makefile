# Convenience targets for the causal-broadcast reproduction.

.PHONY: install test bench bench-quick perf-guard chaos-quick chaos-wire serve-smoke serve-smoke-procs examples demos lint-clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Core trio (drain-scale, claim-scale, proto-overhead) -> BENCH_core.json,
# plus the full drain sweep -> BENCH_drain_scale.json, the shard scaling
# sweep -> BENCH_shard_scale.json, and the serve-layer wire sweep over
# real sockets -> BENCH_wire.json.
bench-quick:
	PYTHONPATH=src:benchmarks python benchmarks/bench_drain_scale.py
	PYTHONPATH=src:benchmarks python benchmarks/bench_shard_scale.py
	PYTHONPATH=src:benchmarks python benchmarks/bench_wire_throughput.py
	PYTHONPATH=src:benchmarks python benchmarks/run_core.py

# Fail if the indexed drain, the sharded throughput, or the wire-layer
# throughput regresses >25% vs the committed baselines, if 1->8 shard
# scaling drops below 3x at 0% cross traffic, or if the wire floor /
# batching acceptance breaks (override with PERF_GUARD_TOLERANCE=0.4).
perf-guard:
	PYTHONPATH=src:benchmarks python benchmarks/perf_guard.py

# Boot the serving layer end-to-end over real sockets: 8 pipelined
# clients, a replica crash mid-run, token reconnects, graceful drain,
# and a session-guarantee audit of the recorded wire history.
serve-smoke:
	PYTHONPATH=src python examples/serve_demo.py

# The multi-process topology end-to-end through the CLI: a 2-worker
# serve (one process per shard) driven with binary-codec pipelined load
# plus token reconnects, then a graceful SIGINT drain whose exit code
# carries the aggregated worker audits.
serve-smoke-procs:
	PYTHONPATH=src python -m repro serve --port 7412 --procs 2 --stats & \
	SERVER_PID=$$!; \
	sleep 2; \
	PYTHONPATH=src python -m repro loadgen --port 7412 \
	  --clients 6 --ops 30 --pipeline 4 --reconnect-every 11 \
	  --codec binary --stats || { kill -INT $$SERVER_PID; exit 1; }; \
	kill -INT $$SERVER_PID; \
	wait $$SERVER_PID

# Chaos over the wire: 12 seeded end-to-end campaigns through a
# fault-injecting TCP proxy (cuts mid-frame, stalls, delays, duplicated
# and truncated frames, replica crash/restart, worker SIGKILL+respawn,
# queue-full overload) against single-proc and multi-proc servers on
# both codecs.  Self-healing clients drive the traffic; afterwards the
# black-box auditor checks CC/CCv over what the clients *observed* —
# zero violations, zero hangs, or the target fails.
chaos-wire:
	PYTHONPATH=src python -m repro chaos-wire --procs 1 --codec json \
	  --seed 11 --campaigns disconnects,stalls,truncations,overload
	PYTHONPATH=src python -m repro chaos-wire --procs 1 --codec binary \
	  --seed 21 --campaigns disconnects,truncations
	PYTHONPATH=src python -m repro chaos-wire --procs 2 --codec json \
	  --seed 31 --campaigns disconnects,workers,overload
	PYTHONPATH=src python -m repro chaos-wire --procs 2 --codec binary \
	  --seed 41 --campaigns stalls,workers,truncations

# Seeded fault-injection campaigns (crash/partition/loss/churn) across
# every crash-eligible protocol; fails on any safety-invariant violation.
chaos-quick:
	PYTHONPATH=src python -m repro chaos --protocol all --seeds 2
	PYTHONPATH=src python -m repro chaos --protocol all --seeds 2 --overlap
	PYTHONPATH=src python -m repro shard --seeds 2

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null && echo ok; done

demos:
	python -m repro list

outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
