# Convenience targets for the causal-broadcast reproduction.

.PHONY: install test bench examples demos lint-clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null && echo ok; done

demos:
	python -m repro list

outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
