#!/usr/bin/env python3
"""Decentralized lock arbitration — the Figure 5 scenario (§6.2).

Three members contend for a shared page.  Each cycle, every member
spontaneously broadcasts a LOCK request; the ``ASend`` total-order layer
closes the batch, and a deterministic arbitration algorithm picks the
holder sequence — the same sequence at every member, with zero extra
agreement messages.  Holders pass the lock with TFR broadcasts.

Run::

    python examples/lock_arbitration.py
"""

from __future__ import annotations

from repro.apps.lock_service import LockService
from repro.net.latency import UniformLatency


def main() -> None:
    service = LockService(
        ["A", "B", "C"],
        cycles=3,
        access_time=0.5,
        latency=UniformLatency(0.2, 1.5),
        seed=11,
    )
    service.run()

    print("Acquisition timeline (holder, cycle, time):")
    for holder, cycle, time in service.acquisition_times:
        bar = " " * int(time * 2) + "■"
        print(f"  t={time:6.2f}  cycle {cycle}  {holder} {bar}")

    print("\nHolder sequence as observed by each member:")
    for member, log in service.holder_logs().items():
        print(f"  {member}: {log}")

    assert service.consensus_reached()
    sends = len(service.network.trace.of_kind("send"))
    print(f"\nConsensus reached: True")
    print(f"Broadcasts used: {sends} "
          f"(= 2 per member per cycle: {2 * 3 * 3}; no agreement traffic)")


if __name__ == "__main__":
    main()
