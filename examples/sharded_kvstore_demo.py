#!/usr/bin/env python3
"""Sharded key-value store: cross-shard causality without global clocks.

Three independent causal-broadcast groups share one object space.  Two
client sessions write across shards — each write's ``Occurs-After`` is
the session's causal frontier projected onto the target shard, so no
system-wide ordering machinery exists, yet a barrier read anywhere
observes a causally consistent multi-shard snapshot.  Mid-run, one slot
is rebalanced between groups (drain -> transfer -> cutover) while the
traffic keeps flowing.

Run::

    python examples/sharded_kvstore_demo.py
"""

from __future__ import annotations

from repro.shard import ShardedCluster


def key_for(cluster: ShardedCluster, shard: int, start: int = 0) -> str:
    index = start
    while cluster.shard_map.shard_of(f"k{index}") != shard:
        index += 1
    return f"k{index}"


def main() -> None:
    cluster = ShardedCluster(shards=3, members_per_shard=3, seed=42)
    k0, k1, k2 = (key_for(cluster, shard) for shard in (0, 1, 2))

    # Session "alice" writes a causal chain across all three shards.
    alice = cluster.router.session("alice")
    alice.put(k0, "draft")
    alice.put(k1, "review")   # cross-shard: occurs-after the draft
    alice.put(k2, "publish")  # ... and transitively after both
    cluster.drain()

    chain = [cluster.ops[label] for label in cluster.issue_order]
    print("alice's chain (shard / occurs-after / cross-deps):")
    for record in chain:
        print(
            f"  {record.label}  shard={record.shard}  "
            f"deps={sorted(map(str, record.deps))}  "
            f"cross={sorted(map(str, record.cross_deps))}"
        )

    # A different session reads all shards at a stable point.
    bob = cluster.router.session("bob")
    bob.read()
    cluster.drain()
    (snapshot,) = bob.reads
    print(f"\nbob's barrier read: {dict(sorted(snapshot.value.items()))}")
    assert snapshot.value == {k0: "draft", k1: "review", k2: "publish"}

    # Rebalance k0's slot from shard 0 to shard 2, live.
    slot = cluster.shard_map.slot_of(k0)
    move = cluster.rebalancer.move_slot(slot, 2)
    bob.put(k0, "v2-during-move")  # parks until the cutover, then re-routes
    cluster.drain()
    violations, _rounds = cluster.settle()
    assert violations == [] and move.phase == "done"
    print(
        f"\nslot {slot} moved shard {move.source} -> {move.dest} "
        f"(map v{cluster.shard_map.version}, "
        f"{move.entries} entr{'y' if move.entries == 1 else 'ies'} carried, "
        f"migrate={move.migrate_label})"
    )

    bob.read()
    cluster.drain()
    violations, _rounds = cluster.settle()
    assert violations == []
    after = bob.reads[-1]
    print(f"read after the move: {dict(sorted(after.value.items()))}")
    assert after.value[k0] == "v2-during-move"

    assert cluster.check_invariants() == []
    print("\ncross-shard causal audit: OK "
          f"({len(cluster.ops)} operations, zero violations)")


if __name__ == "__main__":
    main()
