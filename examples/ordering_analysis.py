#!/usr/bin/env python3
"""Semantic vs incidental ordering — the Cheriton/Skeen point, measured.

The same spontaneous workload (independent updates from three nodes,
issued one after another) runs over:

* ``OSend`` — the application declares *no* dependencies, so the
  messages stay concurrent and deliverable in any order;
* CBCAST — vector clocks chain each send after everything its sender
  happened to deliver first, manufacturing "incidental" order the
  application never asked for.

The analyzer counts both orderings, and a space-time diagram shows the
runs side by side.

Run::

    python examples/ordering_analysis.py
"""

from __future__ import annotations

from repro.analysis.incidental import compare_orderings
from repro.analysis.timeline import render_timeline
from repro.broadcast.cbcast import CbcastBroadcast
from repro.broadcast.osend import OSendBroadcast
from repro.graph.depgraph import DependencyGraph
from repro.group.membership import GroupMembership
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler

MEMBERS = ("a", "b", "c")


def run(protocol_cls):
    scheduler = Scheduler()
    network = Network(
        scheduler, latency=ConstantLatency(0.4), rng=RngRegistry(3)
    )
    membership = GroupMembership(MEMBERS)
    stacks = {
        m: network.register(protocol_cls(m, membership)) for m in MEMBERS
    }
    # Spontaneous updates, spaced out so each sender has delivered the
    # previous one (maximum incidental-order exposure).
    for i, member in enumerate(MEMBERS * 2):
        scheduler.call_at(float(i), stacks[member].bcast, "update")
    scheduler.run()
    return network, stacks


def main() -> None:
    _, osend_stacks = run(OSendBroadcast)
    cbcast_net, cbcast_stacks = run(CbcastBroadcast)

    # The application's declared graph: all six updates spontaneous.
    declared = DependencyGraph()
    clocks = {}
    for env in cbcast_stacks["a"].delivered_envelopes:
        declared.add(env.msg_id)
        clocks[env.msg_id] = env.metadata["vclock"]

    comparison = compare_orderings(declared, clocks)
    print("Six spontaneous updates, sent 1s apart:\n")
    print(f"  ordered pairs the application declared : "
          f"{comparison.semantic_pairs}")
    print(f"  ordered pairs vector clocks imposed    : "
          f"{comparison.clock_pairs}")
    print(f"  incidental (never requested)           : "
          f"{comparison.incidental_pairs} "
          f"({comparison.incidental_fraction:.0%} of the clock order)")

    osend_graph = osend_stacks["a"].graph
    free_pairs = sum(
        1
        for i, x in enumerate(osend_graph.nodes)
        for y in osend_graph.nodes[i + 1:]
        if osend_graph.concurrent(x, y)
    )
    print(f"\n  OSend kept {free_pairs} of 15 unordered "
          f"(every pair stays concurrent);")
    print("  CBCAST ordered all of them — each send was chained after")
    print("  whatever its sender had already seen.\n")
    print("CBCAST run, space-time diagram:")
    print(render_timeline(cbcast_net.trace))


if __name__ == "__main__":
    main()
