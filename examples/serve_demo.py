#!/usr/bin/env python3
"""The serving layer end-to-end, over real sockets.

Boots a :class:`repro.serve.ServeServer` fronting a 2-shard / 6-replica
causal object space on an ephemeral TCP port, then:

1. drives 8 concurrent pipelined client sessions against it (each keeps
   several writes in flight and periodically issues a consistent
   multi-shard barrier read, reconnecting mid-run with its causal
   session token);
2. crashes one replica of shard 0 **while the load is running** — the
   server's repair loop and retrying session layer carry traffic over
   the remaining replicas;
3. runs a get-heavy load against the replica-routed read path and kills
   the replica currently serving a probe's reads mid-run — the router
   must drop the corpse from the eligible set and reroute every later
   get with zero session-guarantee violations;
4. walks one scripted session through the visible API: pipelined puts,
   a causally gated get, a barrier read, and a token reconnect that
   provably preserves read-your-writes;
5. drains gracefully, heals the crashed replicas, and replays the
   entire recorded wire history through the session-guarantee checker
   (including the per-key freshness audit of every replica-served get);
6. boots a *fresh* server behind a fault-injecting TCP proxy (cuts
   mid-frame, duplicated and delayed frames) and drives self-healing
   clients through it — then audits what the clients *observed* with
   the black-box causal-consistency checker: no simulator stamps, no
   server cooperation.

Every step asserts, so this doubles as the CI smoke test for the wire
path.  Run::

    python examples/serve_demo.py
"""

from __future__ import annotations

import asyncio

from repro.analysis.wire_history import (
    WireHistory,
    WireRecorder,
    check_wire_history,
)
from repro.serve import (
    ChaosProxy,
    FaultPlan,
    ResilientClient,
    ServeClient,
    ServeServer,
    reconnect,
    run_load,
)


async def main() -> None:
    server = ServeServer(shards=2, members_per_shard=3, seed=7)
    await server.start()
    print(f"server up on 127.0.0.1:{server.port} (2 shards x 3 replicas)")

    # -- 8 pipelined clients, one replica murdered mid-run -----------------
    load = asyncio.ensure_future(run_load(
        "127.0.0.1", server.port,
        clients=8, ops_per_client=40, pipeline=8,
        read_every=10, reconnect_every=17, seed=3,
    ))
    await asyncio.sleep(0.15)  # let the load get going first

    control = ServeClient("127.0.0.1", server.port, "control")
    await control.connect()
    crashed = await control.chaos("crash", shard=0)
    print(f"crashed {crashed['member']} of shard 0 mid-run")

    report = await load
    print(f"load: {report.summary()}")
    assert report.errors == 0, f"load saw errors: {report.errors}"
    assert report.reconnects >= 8, "every client should have reconnected"
    assert report.ops == 8 * 40

    # -- replica failover: kill the serving read target mid-run ------------
    get_load = asyncio.ensure_future(run_load(
        "127.0.0.1", server.port,
        clients=6, ops_per_client=50, pipeline=4,
        read_every=0, get_every=2, seed=5,
        session_prefix="fail",
    ))
    await asyncio.sleep(0.05)  # let the get-heavy load get going first

    probe = ServeClient("127.0.0.1", server.port, "probe")
    await probe.connect()
    await probe.put_wait("probe-key", "v")
    first = await probe.get_submit("probe-key")
    target, shard = first["replica"], first["shard"]
    await probe.chaos("crash", shard=shard, member=target)
    print(f"crashed {target} (serving probe's reads on shard {shard}) "
          "mid-get-load")
    # The sticky hint points at the corpse; the router must ignore it
    # and serve the same causal floor from a surviving replica.
    assert await probe.get("probe-key") == "v", "failover lost the value"
    rerouted = probe.replica_hints["probe-key"]
    assert rerouted != target, "get still routed to the crashed replica"
    print(f"probe rerouted to {rerouted}; read-your-writes held")

    report = await get_load
    print(f"get-load: {report.summary()}")
    assert report.errors == 0, f"get-load saw errors: {report.errors}"
    assert report.gets > 0, "get-heavy load issued no gets"
    served = {
        key for key, count in server.metrics.counters.items()
        if key.startswith("replica_reads_") and count > 0
    }
    assert len(served) >= 2, f"reads never spread beyond one replica: {served}"
    await probe.close()

    # -- one scripted session, narrated ------------------------------------
    alice = ServeClient("127.0.0.1", server.port, "alice")
    await alice.connect()
    futures = [alice.put(f"demo{i}", f"v{i}") for i in range(4)]  # pipelined
    replies = await asyncio.gather(*futures)
    print(f"alice pipelined 4 puts: labels {[r['label'] for r in replies]}")

    reply = await alice.get_submit("demo3")  # read-your-writes, same conn
    assert reply["value"] == "v3"
    print(f"alice's causally gated get served by replica "
          f"{reply.get('replica')} of shard {reply.get('shard')}")

    snapshot = await alice.read()
    assert all(snapshot["value"][f"demo{i}"] == f"v{i}" for i in range(4))
    print(f"barrier read across shards {snapshot['shards']}: "
          f"{len(snapshot['value'])} keys, rounds={snapshot['rounds']}")

    # Reconnect with the causal token: the new connection's first get
    # still observes alice's own writes — the token carries the session.
    alice = await reconnect(alice)
    assert await alice.get("demo3") == "v3", "token lost read-your-writes"
    print("token reconnect: read-your-writes preserved across connections")
    await alice.close()
    await control.close()

    # -- graceful drain + the audit ----------------------------------------
    await server.shutdown()
    assert server.heal_violations == [], server.heal_violations
    violations = server.session_guarantee_violations()
    assert violations == [], violations
    audit = server.check_invariants()
    assert audit == [], audit

    ops = server.metrics.counters["ops"]
    batches = server.metrics.counters["batches"]
    events = sum(len(entries) for entries in server.history.values())
    print(f"drained; {ops} wire ops in {batches} batch cycles, "
          f"{events} history events across {len(server.history)} sessions")
    print("session-guarantee audit over the full wire history: OK "
          "(zero violations)")

    # -- chaos over the wire + the black-box audit -------------------------
    await wire_chaos_pass()


async def wire_chaos_pass() -> None:
    """Faulty network, self-healing clients, black-box verdict."""
    server = ServeServer(shards=2, members_per_shard=3, seed=11)
    await server.start()
    plan = FaultPlan(13, cut_rate=0.02, dup_rate=0.05, delay_rate=0.08,
                     delay_seconds=0.02)
    proxy = ChaosProxy("127.0.0.1", server.port, plan=plan)
    await proxy.start()
    print(f"\nchaos proxy up on 127.0.0.1:{proxy.port} "
          f"(cuts mid-frame, dups, delays) -> server :{server.port}")

    recorders = []

    async def drive(index: int) -> None:
        name = f"wchaos{index}"
        recorder = WireRecorder(name)
        recorders.append(recorder)
        client = ResilientClient(
            "127.0.0.1", proxy.port, name,
            request_timeout=2.0, seed=index,
            recorder=recorder,
        )
        await client.connect()
        for i in range(12):
            key = f"wkey{i % 3}"
            if i % 3 == 2:
                await client.get(key)
            else:
                await client.put(key, f"{name}:{i}")
        await client.close()
        healing = {k: v for k, v in client.counters.items() if v}
        print(f"  {name}: {healing}")

    await asyncio.gather(*[drive(i) for i in range(3)])
    await proxy.stop()
    await server.shutdown(heal=True)

    faults = {k: v for k, v in proxy.counters.items() if v}
    print(f"proxy injected: {faults}")
    history = WireHistory.merge(recorders)
    violations = check_wire_history(history)
    assert violations == [], violations
    print(f"black-box audit over {len(history)} client-observed ops: OK "
          "(CC, CCv and CM all hold)")


if __name__ == "__main__":
    asyncio.run(main())
