#!/usr/bin/env python3
"""Multiplayer card game: relaxed ordering buys concurrency (§5.1).

Players take turns, but a turn only depends on the card played ``d``
turns earlier (``card_k ≺ card_l``, everything between concurrent).
Sweeping ``d`` shows the paper's claim: weaker ordering constraints →
more overlap → the game finishes faster.

Run::

    python examples/card_game_demo.py
"""

from __future__ import annotations

from repro.apps.card_game import CardGame
from repro.net.latency import UniformLatency


def main() -> None:
    print("4 players, 4 rounds; turn t waits only for turn t-d.\n")
    print(f"{'d':>3}  {'concurrent pairs':>17}  {'completion time':>16}")
    baseline = None
    for distance in (1, 2, 3, 4):
        game = CardGame(
            ["north", "east", "south", "west"],
            rounds=4,
            dependency_distance=distance,
            think_time=0.1,
            latency=UniformLatency(0.2, 1.0),
            seed=5,
        )
        game.play()
        assert game.all_windows_converged()
        if baseline is None:
            baseline = game.completion_time
        speedup = baseline / game.completion_time
        print(
            f"{distance:>3}  {game.concurrency_degree():>17}  "
            f"{game.completion_time:>13.2f} ({speedup:4.2f}x)"
        )

    print(
        "\nd=1 is the strict turn chain (zero concurrency).  Larger d\n"
        "relaxes the ordering: cards flow concurrently and the same game\n"
        "completes in a fraction of the time — every window still ends up\n"
        "identical, because the declared causal order is enforced."
    )


if __name__ == "__main__":
    main()
