#!/usr/bin/env python3
"""Distributed conferencing: collaborative document annotation (§5.2).

Three participants annotate and edit a shared design document from their
workstations.  Annotations on a paragraph are commutative (a set of
notes); edits are non-commutative and act as synchronization points.
Every window converges without a central server and without total
ordering of every message.

Run::

    python examples/conference_whiteboard.py
"""

from __future__ import annotations

from repro.apps.conference import ConferenceSystem
from repro.net.latency import UniformLatency


def show_windows(conference: ConferenceSystem) -> None:
    for participant in conference.system.members:
        window = conference.window(participant)
        print(f"  {participant}'s window:")
        for paragraph in sorted(window):
            text, notes = window[paragraph]
            print(f"    [{paragraph}] {text!r}  notes={sorted(notes)}")


def main() -> None:
    conference = ConferenceSystem(
        ["dana", "eli", "fran"],
        latency=UniformLatency(0.2, 2.0),
        seed=7,
    )
    scheduler = conference.system.scheduler

    # The session: spontaneous annotations, then a consolidating edit.
    scheduler.call_at(0.0, conference.edit, "dana", "intro",
                      "Causal broadcast for shared data")
    scheduler.call_at(2.0, conference.annotate, "eli", "intro",
                      "cite Lamport 78")
    scheduler.call_at(2.1, conference.annotate, "fran", "intro",
                      "define 'stable point' first")
    scheduler.call_at(2.2, conference.annotate, "eli", "design",
                      "diagram needed")
    scheduler.call_at(6.0, conference.edit, "dana", "intro",
                      "Causal broadcast and consistency of shared data")
    conference.run()

    print("Final windows (converged):")
    show_windows(conference)
    assert conference.windows_converged()

    replicas = conference.system.replicas
    points = {p: r.stable_point_count for p, r in replicas.items()}
    print(f"\nStable points observed per participant: {points}")
    print("Edits acted as synchronization points; annotations flowed "
          "concurrently in between.")


if __name__ == "__main__":
    main()
