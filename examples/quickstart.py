#!/usr/bin/env python3
"""Quickstart: a replicated counter over causal broadcast.

Three replicas share an integer.  Increments and decrements commute, so
they are broadcast with relaxed (causal) ordering; a read is a
synchronization point — its ``Occurs-After`` AND-set covers the cycle's
commutative messages, so every replica agrees on the read's value
(``VAL(m)``) without any extra agreement traffic.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import StablePointSystem, UniformLatency, counter_machine, counter_spec
from repro.analysis import stable_points_agree, states_agree


def main() -> None:
    system = StablePointSystem(
        members=["alice", "bob", "carol"],
        machine_factory=counter_machine,
        spec=counter_spec(),
        latency=UniformLatency(0.2, 2.0),
        seed=42,
    )

    # Commutative updates: broadcast with relaxed ordering.  Requests
    # arrive over time, so each front-end learns of earlier traffic.
    scheduler = system.scheduler
    scheduler.call_at(0.0, system.request, "alice", "inc", {"item": "x", "amount": 1})
    scheduler.call_at(1.0, system.request, "bob", "dec", {"item": "x", "amount": 1})
    scheduler.call_at(2.0, system.request, "alice", "inc", {"item": "x", "amount": 3})
    system.run()

    # Register a deferred read at each replica (paper Section 5.1): the
    # value is returned at the next stable point, identical everywhere.
    answers = []
    for name, replica in system.replicas.items():
        replica.read_at_next_stable_point(
            lambda value, point, name=name: answers.append((name, value))
        )

    # A read is non-commutative: the front-end orders it after the cycle's
    # updates, making it a stable point.
    system.request("alice", "rd", {"item": "x"})

    system.run()

    print("Delivery orders (may differ mid-cycle):")
    for member, sequence in system.delivered_sequences().items():
        print(f"  {member}: {[str(label) for label in sequence]}")

    print("\nDeferred read answers (agreed value VAL(rd) at each member):")
    for name, value in answers:
        print(f"  {name}: {value}")

    print("\nFinal live states:", system.states())
    assert states_agree(system.states()) == []
    assert stable_points_agree(system.replicas) == []
    print("All replicas agree — no agreement protocol messages were sent.")


if __name__ == "__main__":
    main()
