#!/usr/bin/env python3
"""Self-healing group: heartbeats, crash detection, view-synchronous removal.

Three members exchange causal traffic and heartbeats.  At t=5 one member
is cut off (simulated crash).  The survivors' failure detectors notice
the silence, the lowest-ranked live member proposes removal, the flush
protocol drains in-flight old-view traffic identically everywhere, and
the two survivors carry on in the new view.

Run::

    python examples/membership_demo.py
"""

from __future__ import annotations

from repro.broadcast.osend import OSendBroadcast
from repro.group.auto_membership import manage_membership
from repro.group.membership import GroupMembership
from repro.group.view_sync import attach_view_sync
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


def main() -> None:
    scheduler = Scheduler()
    faults = FaultPlan()
    network = Network(
        scheduler,
        latency=ConstantLatency(0.3),
        faults=faults,
        rng=RngRegistry(5),
    )
    membership = GroupMembership(["alpha", "beta", "gamma"])
    stacks = {
        m: network.register(OSendBroadcast(m, membership))
        for m in membership.members
    }
    agents = attach_view_sync(stacks)
    managers = manage_membership(
        stacks, agents, heartbeat_interval=1.0, suspicion_timeout=3.0
    )
    for member, agent in agents.items():
        agent.on_install(
            lambda view, member=member: print(
                f"  [{member}] installed view {view.view_id}: "
                f"{list(view.members)}"
            )
        )
    for manager in managers.values():
        manager.start(duration=25.0)

    # Some application traffic before and around the crash.
    m1 = stacks["alpha"].osend("op")
    scheduler.call_at(2.0, stacks["beta"].osend, "op", None, m1)

    print("t=5.0: gamma crashes (partitioned away)")
    scheduler.call_at(5.0, faults.partition, {"alpha", "beta"}, {"gamma"})
    scheduler.run()

    print(f"\nFinal view: {list(membership.view.members)} "
          f"(view id {membership.view.view_id})")
    snapshots = {m: agents[m].flush_snapshot for m in ("alpha", "beta")}
    print(f"Flush snapshots identical: "
          f"{snapshots['alpha'] == snapshots['beta']}")

    # Survivors keep working.
    label = stacks["alpha"].osend("post-crash-op")
    scheduler.run()
    print(f"Post-crash broadcast delivered at beta: "
          f"{label in stacks['beta'].delivered}")


if __name__ == "__main__":
    main()
