#!/usr/bin/env python3
"""Name service: total ordering vs application-specific protocols (§5.2).

Resolutions and registrations arrive spontaneously.  The same workload
runs twice:

* **causal engine** — CBCAST ordering only; queries carry the issuer's
  update context; stale answers are flagged for the application to
  discard (the paper's application-specific protocol);
* **total engine** — a sequencer totally orders everything; no staleness
  is possible, at roughly double the broadcasts and higher latency.

Run::

    python examples/name_service_demo.py
"""

from __future__ import annotations

import random

from repro.analysis.metrics import latency_summary
from repro.apps.name_service import NameServiceSystem
from repro.net.latency import UniformLatency

MEMBERS = ["ns1", "ns2", "ns3"]
NAMES = ["www", "mail", "db"]


def drive(system: NameServiceSystem, seed: int = 3) -> None:
    rng = random.Random(seed)
    time = 0.0
    version = 0
    for _ in range(40):
        time += rng.expovariate(1.5)
        member = system.members[rng.choice(MEMBERS)]
        name = rng.choice(NAMES)
        if rng.random() < 0.25:
            version += 1
            system.scheduler.call_at(time, member.update, name, f"v{version}")
        else:
            system.scheduler.call_at(time, member.query, name)
    system.run()


def report(tag: str, system: NameServiceSystem) -> None:
    broadcasts = len(system.network.trace.of_kind("send"))
    latency = latency_summary(system.network.trace, operations={"qry"})
    print(f"{tag:>7}: broadcasts={broadcasts:3d}  "
          f"mean qry latency={latency.mean:5.2f}  "
          f"inconsistent={len(system.inconsistent_queries()):2d}  "
          f"flagged={len(system.flagged_queries()):2d}")


def main() -> None:
    print("Same spontaneous qry/upd workload over two ordering engines:\n")
    for engine in ("causal", "total"):
        system = NameServiceSystem(
            MEMBERS, engine=engine, latency=UniformLatency(0.2, 3.0), seed=9
        )
        drive(system)
        report(engine, system)

    print(
        "\nThe causal engine is cheaper and faster; the application-level\n"
        "context check flags every query whose answers could diverge, so\n"
        "those can be discarded/retried (paper: worthwhile when\n"
        "inconsistencies are infrequent)."
    )


if __name__ == "__main__":
    main()
