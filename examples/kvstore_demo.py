#!/usr/bin/env python3
"""Replicated key-value store with per-key causal chains (§5.1 scoping).

Writes to different keys flow concurrently (item scoping); writes to the
same key are chained causally through the front-ends, so last-writer
order is the *declared* order and every replica converges — plus a
demonstration of the documented limit: truly concurrent same-key writes
need total ordering.

Run::

    python examples/kvstore_demo.py
"""

from __future__ import annotations

from repro.apps.kvstore import KVStoreSystem
from repro.net.latency import UniformLatency


def main() -> None:
    store = KVStoreSystem(
        ["kv1", "kv2", "kv3"], latency=UniformLatency(0.2, 2.0), seed=9
    )
    scheduler = store.scheduler

    # Different keys from different members: all concurrent.
    scheduler.call_at(0.0, store.put, "kv1", "user:42", "alice")
    scheduler.call_at(0.1, store.put, "kv2", "user:43", "bob")
    scheduler.call_at(0.2, store.put, "kv3", "theme", "dark")
    # Same key, same member: chained by the front-end.
    scheduler.call_at(3.0, store.put, "kv1", "theme", "light")
    # Same key, different member after seeing the first: also chained.
    scheduler.call_at(6.0, store.delete, "kv2", "user:43")
    store.run()

    print("Final store at every replica (all identical):")
    for key in ("user:42", "user:43", "theme"):
        values = {m: store.value_at(m, key) for m in ("kv1", "kv2", "kv3")}
        assert len(set(values.values())) == 1
        print(f"  {key!r}: {values['kv1']!r}")
    assert store.converged()

    graph = store.protocols["kv1"].graph
    chained = sum(1 for n in graph.nodes if graph.ancestors_of(n))
    print(f"\nDeclared dependency edges: {graph.edge_count()} "
          f"({chained} of {len(graph)} messages chained; the rest stayed "
          f"concurrent)")
    print("Same-key writes were ordered by declaration; cross-key traffic "
          "never waited.")


if __name__ == "__main__":
    main()
