#!/usr/bin/env python3
"""Loss recovery: causal hold-back + NACK repair + anti-entropy.

A lossy network drops 30% of hops.  Without recovery, causal chains
dangle (safety holds, liveness does not).  With the recovery layer —
hold-back-driven NACKs plus digest anti-entropy — every member converges
to the full history, and the stability tracker then reclaims the repair
stores.

Run::

    python examples/fault_recovery_demo.py
"""

from __future__ import annotations

from repro.broadcast.gc import track_group
from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.recovery import protect_group
from repro.group.membership import GroupMembership
from repro.net.faults import FaultPlan
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler

MEMBERS = ("a", "b", "c")
MESSAGES = 12


def build(recovery: bool, seed: int = 8):
    scheduler = Scheduler()
    network = Network(
        scheduler,
        latency=UniformLatency(0.2, 1.5),
        faults=FaultPlan(drop_probability=0.3),
        rng=RngRegistry(seed),
    )
    membership = GroupMembership(MEMBERS)
    stacks = {
        m: network.register(OSendBroadcast(m, membership)) for m in MEMBERS
    }
    agents = (
        protect_group(stacks, scan_interval=1.0, nack_backoff=2.0)
        if recovery
        else {}
    )
    previous = None
    for i in range(MESSAGES):
        previous = stacks[MEMBERS[i % 3]].osend("op", occurs_after=previous)
    return scheduler, stacks, agents


def main() -> None:
    # Without recovery.
    scheduler, stacks, _ = build(recovery=False)
    scheduler.run()
    print("Without recovery (30% drop):")
    for member, stack in stacks.items():
        print(f"  {member}: delivered {len(stack.delivered)}/{MESSAGES}")

    # With recovery.
    scheduler, stacks, agents = build(recovery=True)
    scheduler.run(max_events=500_000)
    rounds = 0
    while not all(len(s.delivered) == MESSAGES for s in stacks.values()):
        rounds += 1
        for agent in agents.values():
            agent.anti_entropy_round()
        scheduler.run(max_events=500_000)
    print(f"\nWith recovery (same seed, {rounds} anti-entropy round(s)):")
    for member, stack in stacks.items():
        agent = agents[member]
        print(f"  {member}: delivered {len(stack.delivered)}/{MESSAGES}  "
              f"(nacks={agent.nacks_sent}, repairs served={agent.repairs_sent})")

    # Garbage-collect the repair stores once everything is stable.
    trackers = track_group(stacks)
    for _ in range(2):
        for tracker in trackers.values():
            tracker.gossip_round()
        scheduler.run()
    print("\nAfter stability gossip:")
    for member, tracker in trackers.items():
        print(f"  {member}: repair store size {tracker.store_size} "
              f"(reclaimed {tracker.envelopes_reclaimed})")


if __name__ == "__main__":
    main()
