#!/usr/bin/env python3
"""The same protocol stack on a real asyncio event loop.

Everything else in ``examples/`` runs on the deterministic simulator;
this demo shows the identical ``OSend`` protocol classes running in real
time over :class:`repro.runtime.AsyncioNetwork` — the paper's separation
between the communication substrate and the data-access protocols.

Run::

    python examples/asyncio_runtime.py
"""

from __future__ import annotations

import asyncio

from repro.broadcast import OSendBroadcast
from repro.group import GroupMembership
from repro.net import UniformLatency
from repro.runtime import AsyncioNetwork


async def main() -> None:
    network = AsyncioNetwork(latency=UniformLatency(0.001, 0.01))
    membership = GroupMembership(["node1", "node2", "node3"])
    stacks = {
        member: network.register(OSendBroadcast(member, membership))
        for member in membership.members
    }

    # A small causal conversation: ask -> two concurrent answers -> close.
    ask = stacks["node1"].osend("ask", {"q": "latest design?"})
    a1 = stacks["node2"].osend("answer", {"rev": 7}, occurs_after=ask)
    a2 = stacks["node3"].osend("answer", {"rev": 7}, occurs_after=ask)
    stacks["node1"].osend("close", None, occurs_after=[a1, a2])

    await network.quiesce(timeout=5)

    print("Wall-clock delivery orders (causal constraints respected):")
    for member, stack in stacks.items():
        ops = [env.message.operation for env in stack.delivered_envelopes]
        print(f"  {member}: {ops}")

    for stack in stacks.values():
        ops = [env.message.operation for env in stack.delivered_envelopes]
        assert ops[0] == "ask" and ops[-1] == "close"
    print("\n'ask' delivered first and 'close' last at every node, even in "
          "real time.")


if __name__ == "__main__":
    asyncio.run(main())
