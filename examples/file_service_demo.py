#!/usr/bin/env python3
"""Distributed file service — the paper's opening example (Section 1).

Three file servers keep local copies of files; clients write, append and
read through any server.  Appends are commutative (log records), writes
synchronize per file, and deferred reads return the same bytes at every
server.

Run::

    python examples/file_service_demo.py
"""

from __future__ import annotations

from repro.apps.file_service import FileService
from repro.net.latency import UniformLatency


def main() -> None:
    service = FileService(
        ["fs1", "fs2", "fs3"],
        latency=UniformLatency(0.2, 2.0),
        seed=17,
    )
    scheduler = service.system.scheduler

    # A small editing session spread across servers.
    scheduler.call_at(0.0, service.write, "fs1", "/project/notes.txt",
                      "design meeting 1994-06-01")
    scheduler.call_at(2.0, service.append, "fs2", "/project/notes.txt",
                      "action: implement OSend")
    scheduler.call_at(2.1, service.append, "fs3", "/project/notes.txt",
                      "action: benchmark vs total order")
    scheduler.call_at(2.2, service.write, "fs2", "/project/todo.txt",
                      "1. stable points")
    scheduler.call_at(5.0, service.read, "fs3", "/project/notes.txt")
    service.run()

    print("Deferred read answers for /project/notes.txt:")
    for result in service.read_results():
        print(f"  {result.server}: content={result.content!r} "
              f"records={sorted(result.records)}")

    print("\nFinal listing at fs1:")
    for path, (content, records) in sorted(service.listing("fs1").items()):
        print(f"  {path}: {content!r} + {len(records)} appended record(s)")

    assert service.converged()
    print("\nAll server copies identical; appends flowed concurrently, "
          "writes synchronized.")


if __name__ == "__main__":
    main()
