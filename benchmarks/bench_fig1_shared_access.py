"""FIG1 benchmark — see :mod:`repro.experiments.fig1` and DESIGN.md."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.fig1 import run_group

EXPERIMENT = get_experiment("FIG1")


def test_fig1_shared_access(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    # Every configuration converges.
    assert all(row[-1] for row in rows)
    # Hops grow linearly with group size (one hop per member per access).
    assert rows[-1][2] > rows[0][2]
    benchmark(run_group, 5)
