"""Shared benchmark configuration.

Every benchmark prints the table/series its experiment reproduces (once,
outside the timed region) and then times the core run with
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations
