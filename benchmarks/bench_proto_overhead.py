"""PROTO-OVERHEAD benchmark — see :mod:`repro.experiments.proto_overhead`."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.proto_overhead import SIZES, run_osend

EXPERIMENT = get_experiment("PROTO-OVERHEAD")


def test_proto_overhead(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    # OSend metadata tracks the declared structure and does not grow
    # with N (the paper's point).
    ancestors = [row[1] for row in rows]
    assert max(ancestors) - min(ancestors) < 1.0
    # Vector entries grow with group size; RST matrices grow faster
    # still; the steady-state full matrix is exactly N^2.
    vector = [row[2] for row in rows]
    assert vector == sorted(vector)
    rst = [row[3] for row in rows]
    assert rst == sorted(rst)
    assert rst[-1] > vector[-1]
    matrix = [row[4] for row in rows]
    assert matrix == [float(n * n) for n in SIZES]
    benchmark(run_osend, 5)
