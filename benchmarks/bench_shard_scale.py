"""SHARD-SCALE benchmark — throughput vs shard count at fixed fleet size.

A fixed fleet of 24 members is split into 1/2/4/8 replication groups.
Every broadcast costs O(group size) deliveries, so sharding the object
space divides per-operation work by the shard count — *until*
cross-shard traffic re-couples the groups through dependency projection
and wider frontier bookkeeping.  The sweep measures both effects:
session throughput at 0%, 10% and 50% cross-shard write fractions.

Run as a script (or via ``make bench-quick``) to write
``BENCH_shard_scale.json``; ``make perf-guard`` replays the sweep and
compares against the committed baseline.  Ops/sec numbers are
machine-relative — only the shards=1 -> shards=8 *scaling ratio* is
portable (acceptance: >= 3x at 0% cross).
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path
from typing import Callable

from repro.shard import ShardedCluster

SHARD_COUNTS = (1, 2, 4, 8)
CROSS_FRACTIONS = (0.0, 0.1, 0.5)
TOTAL_MEMBERS = 24
SESSIONS = 8
TOTAL_OPS = 240
REPEATS = 3
SEED = 7
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard_scale.json"


def run_case(
    shards: int, cross_fraction: float, total_ops: int = TOTAL_OPS
) -> float:
    """One timed fill of the sharded object space; returns puts per second.

    The op mix is generated *outside* the timed region; the clock covers
    issuing every write through the session layer and draining the
    simulator to quiescence (all deliveries performed at every member).
    """
    cluster = ShardedCluster(
        shards=shards,
        members_per_shard=TOTAL_MEMBERS // shards,
        seed=SEED,
    )
    rng = random.Random(SEED)
    shard_ids = list(cluster.shard_ids)
    plan = []
    for index in range(total_ops):
        session = f"sess{index % SESSIONS}"
        home = (index % SESSIONS) % shards
        target = (
            rng.choice(shard_ids)
            if rng.random() < cross_fraction
            else home
        )
        key = cluster.shard_map.sample_key(target, rng)
        plan.append((session, key, f"v{index}"))
    start = time.perf_counter()
    for session, key, value in plan:
        cluster.router.session(session).put(key, value)
    cluster.drain()
    elapsed = time.perf_counter() - start
    issued = sum(s.ops_issued for s in cluster.router.sessions.values())
    if issued != total_ops:
        raise AssertionError(
            f"shards={shards} cross={cross_fraction}: "
            f"issued {issued}/{total_ops}"
        )
    return total_ops / elapsed


def best_of(repeats: int, case: Callable[[], float]) -> float:
    return max(case() for _ in range(repeats))


def run_sweep(
    shard_counts=SHARD_COUNTS,
    cross_fractions=CROSS_FRACTIONS,
    repeats=REPEATS,
) -> dict:
    results = []
    for cross_fraction in cross_fractions:
        base = None
        for shards in shard_counts:
            throughput = best_of(
                repeats, lambda: run_case(shards, cross_fraction)
            )
            if base is None:
                base = throughput
            results.append(
                {
                    "shards": shards,
                    "cross_fraction": cross_fraction,
                    "ops_per_sec": round(throughput, 1),
                    "scaling_vs_one_shard": round(throughput / base, 2),
                }
            )
    return {
        "benchmark": "shard_scale",
        "unit": "session puts/sec to quiescence (higher is better)",
        "config": {
            "total_members": TOTAL_MEMBERS,
            "sessions": SESSIONS,
            "total_ops": TOTAL_OPS,
            "shard_counts": list(shard_counts),
            "cross_fractions": list(cross_fractions),
            "repeats": repeats,
        },
        "results": results,
    }


def write_report(path: Path = REPORT_PATH) -> dict:
    report = run_sweep()
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


# -- pytest entry points (not tier-1: benchmarks/ is outside testpaths) ------


def test_throughput_scales_with_shard_count():
    """Acceptance: >= 3x throughput from 1 to 8 shards at 0% cross."""
    one = best_of(2, lambda: run_case(1, 0.0))
    eight = best_of(2, lambda: run_case(8, 0.0))
    assert eight / one >= 3.0, f"only {eight / one:.1f}x from 1 -> 8 shards"


def test_sharded_fill_is_causally_consistent():
    """The benchmark workload itself passes the cross-shard audit."""
    cluster = ShardedCluster(shards=4, members_per_shard=3, seed=SEED)
    rng = random.Random(SEED)
    for index in range(60):
        session = f"sess{index % 4}"
        target = rng.randrange(4)
        key = cluster.shard_map.sample_key(target, rng)
        cluster.router.session(session).put(key, f"v{index}")
    cluster.drain()
    violations, _rounds = cluster.settle()
    assert violations == []
    assert cluster.check_invariants() == []


def main() -> int:
    report = write_report()
    print(f"wrote {REPORT_PATH}")
    for row in report["results"]:
        print(
            f"  shards={row['shards']} cross={row['cross_fraction']:.0%}: "
            f"{row['ops_per_sec']:>10.1f} ops/s "
            f"({row['scaling_vs_one_shard']}x vs 1 shard)"
        )
    zero_cross_top = max(
        row["scaling_vs_one_shard"]
        for row in report["results"]
        if row["cross_fraction"] == 0.0 and row["shards"] == 8
    )
    print(f"scaling 1 -> 8 shards at 0% cross: {zero_cross_top}x")
    return 0 if zero_cross_top >= 3.0 else 1


if __name__ == "__main__":
    sys.exit(main())
