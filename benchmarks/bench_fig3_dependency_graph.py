"""FIG3 benchmark — see :mod:`repro.experiments.fig3` and DESIGN.md."""

from __future__ import annotations

import math

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.fig3 import build_cycles

EXPERIMENT = get_experiment("FIG3")


def test_fig3_dependency_graph(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    # The paper's bound: a cycle with r concurrent middles has r! orders.
    for row in rows:
        assert row[3] == math.factorial(row[0])

    def workload():
        graph = build_cycles(4)
        graph.transitive_reduction()
        nodes = graph.nodes
        for x in nodes[:10]:
            for y in nodes[-10:]:
                graph.precedes(x, y)

    benchmark(workload)
