"""CLAIM-CONCUR benchmark — see :mod:`repro.experiments.claim_concur`."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.claim_concur import run_game

EXPERIMENT = get_experiment("CLAIM-CONCUR")


def test_claim_concurrency(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    concurrency = [row[1] for row in rows]
    completion = [row[2] for row in rows]
    # Concurrency strictly increases with d; completion time strictly
    # decreases (the paper's 'higher concurrency' claim, made concrete).
    assert concurrency == sorted(concurrency) and concurrency[0] == 0
    assert concurrency[-1] > concurrency[0]
    assert completion == sorted(completion, reverse=True)
    assert rows[-1][4] > 1.5  # relaxed order at least 1.5x faster here
    benchmark(run_game, 3)
