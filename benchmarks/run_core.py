"""``make bench-quick`` — the core benchmark trio, one JSON report.

Runs the drain-scale sweep (hold-back engine), a claim-scale sample
(stable-point vs all-ack broadcast cost) and a proto-overhead sample
(metadata size per protocol), writing ``BENCH_core.json``.  Wall-clock
numbers are machine-relative; structural numbers (broadcast counts,
metadata entries, speedup ratios) are portable.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from bench_drain_scale import run_sweep
from repro.experiments import claim_scale, proto_overhead

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def run_claim_scale() -> dict:
    samples = []
    for size in (3, 12):
        for protocol in ("stable-point", "lamport"):
            result, elapsed = timed(claim_scale.run_protocol, protocol, size)
            samples.append(
                {
                    "protocol": protocol,
                    "size": size,
                    "seconds": round(elapsed, 3),
                    **result,
                }
            )
    return {"benchmark": "claim_scale", "samples": samples}


def run_proto_overhead() -> dict:
    samples = []
    for size in (3, 8):
        result, elapsed = timed(proto_overhead.run_osend, size)
        samples.append({"size": size, "seconds": round(elapsed, 3), **result})
    return {"benchmark": "proto_overhead", "samples": samples}


def main() -> int:
    report = {
        "suite": "bench-quick core trio",
        "drain_scale": run_sweep(depths=(100, 500), repeats=2),
        "claim_scale": run_claim_scale(),
        "proto_overhead": run_proto_overhead(),
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {REPORT_PATH}")
    worst = min(
        row["speedup"]
        for row in report["drain_scale"]["results"]
        if row["depth"] >= 500
    )
    print(f"drain-scale worst speedup at depth >= 500: {worst}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
