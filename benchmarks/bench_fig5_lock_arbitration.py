"""FIG5 benchmark — see :mod:`repro.experiments.fig5` and DESIGN.md."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.fig5 import run_service

EXPERIMENT = get_experiment("FIG5")


def test_fig5_lock_arbitration(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    for row in rows:
        size = row[0]
        assert row[3] is True  # consensus at every size
        assert row[2] == 2 * size  # M LOCKs + M TFRs per cycle
    benchmark(run_service, 3)
