"""ABLATION-BATCH benchmark — see :mod:`repro.experiments.ablation_batching`."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.ablation_batching import run_batched

EXPERIMENT = get_experiment("ABLATION-BATCH")


def test_ablation_batching(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    # Larger batches hold more messages back.
    holdbacks = [row[4] for row in rows]
    assert holdbacks == sorted(holdbacks)
    assert holdbacks[-1] > holdbacks[0]
    benchmark(run_batched, 3)
