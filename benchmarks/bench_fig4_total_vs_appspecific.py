"""FIG4 benchmark — see :mod:`repro.experiments.fig4` and DESIGN.md."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.fig4 import run_engine

EXPERIMENT = get_experiment("FIG4")


def test_fig4_total_vs_appspecific(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    causal_rows = [r for r in rows if "causal" in r[0]]
    total_rows = [r for r in rows if "total" in r[0]]
    for causal, total in zip(causal_rows, total_rows):
        # Total order costs more broadcasts (order bindings) and latency...
        assert total[1] > causal[1]
        assert total[2] > causal[2]
        # ...but never delivers inconsistent answers.
        assert total[3] == 0
        # App-specific flags every inconsistency it lets through.
        assert causal[4] >= causal[3]
    benchmark(run_engine, "causal", 0.3)
