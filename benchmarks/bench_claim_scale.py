"""CLAIM-SCALE benchmark — see :mod:`repro.experiments.claim_scale`."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.claim_scale import SIZES, run_protocol

EXPERIMENT = get_experiment("CLAIM-SCALE")


def test_claim_scale(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    by_key = {(row[0], row[1]): row for row in rows}
    stable_bcasts = [by_key[(n, "stable-point")][2] for n in SIZES]
    lamport_bcasts = [by_key[(n, "lamport")][2] for n in SIZES]
    # Stable-point broadcast count is independent of group size; the
    # all-ack total order grows linearly in N (hops quadratically) —
    # the paper's "feasible when the group size is not large".
    assert len(set(stable_bcasts)) == 1
    assert lamport_bcasts == sorted(lamport_bcasts)
    assert lamport_bcasts[-1] > lamport_bcasts[0] * 4
    for n in SIZES:
        assert (
            by_key[(n, "stable-point")][4] < by_key[(n, "lamport")][4]
        )
    benchmark(run_protocol, "stable-point", 6)
