"""DRAIN-SCALE benchmark — indexed wakeup engine vs naive rescan drain.

Sweeps hold-back depth × group size over the worst-case queue shape: a
causal chain received in reverse order, so every envelope is parked and
each delivery unblocks exactly one successor.  The naive drain rescans
the whole queue per pass (O(depth²) predicate evaluations); the indexed
engine pays one evaluation per unblocking event (O(depth)).

Two scenarios:

* ``osend-chain`` — explicit Occurs-After ancestors (event-keyed wakes),
* ``cbcast-chain`` — vector-clock stamps (threshold-keyed wakes), where
  group size also scales the per-evaluation clock-comparison cost.

Run as a script (or via ``make bench-quick``) to write
``BENCH_drain_scale.json``; ``make perf-guard`` replays the sweep and
compares against the committed baseline.  Ops/sec numbers are
machine-relative — only the naive/indexed *speedup* is portable.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

from repro.broadcast.base import BroadcastProtocol
from repro.broadcast.cbcast import CbcastBroadcast
from repro.broadcast.osend import OSendBroadcast
from repro.graph.predicates import OccursAfter
from repro.group.membership import GroupMembership
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceRecorder
from repro.types import Envelope, Message, MessageId

DEPTHS = (100, 250, 500, 1000)
MEMBER_COUNTS = (3, 8)
REPEATS = 3
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_drain_scale.json"

SENDER = "sender"


def _members(count: int) -> List[str]:
    return ["receiver", SENDER] + [f"peer{i}" for i in range(count - 2)]


def osend_chain(depth: int, members: List[str]) -> List[Envelope]:
    """A reverse-ordered causal chain of explicit ancestors."""
    labels = [MessageId(SENDER, i) for i in range(depth)]
    envelopes = [
        Envelope(
            Message(labels[i], "op", None),
            {"occurs_after": OccursAfter.after([labels[i - 1]] if i else None)},
        )
        for i in range(depth)
    ]
    return list(reversed(envelopes))


def cbcast_chain(depth: int, members: List[str]) -> List[Envelope]:
    """The same chain carried by vector-clock stamps."""
    membership = GroupMembership(members)
    sender = CbcastBroadcast(SENDER, membership)
    envelopes = []
    for i in range(depth):
        message = Message(MessageId(SENDER, i), "op", None)
        envelopes.append(sender._stamp(Envelope(message)))
        # The sender "delivers" its own message so successive stamps chain.
        sender._clock = envelopes[-1].metadata["vclock"]
    return list(reversed(envelopes))


SCENARIOS: Dict[str, tuple] = {
    "osend-chain": (OSendBroadcast, osend_chain),
    "cbcast-chain": (CbcastBroadcast, cbcast_chain),
}


def run_case(
    scenario: str, members_count: int, depth: int, drain_mode: str
) -> float:
    """One timed injection; returns deliveries per second."""
    protocol_cls, build = SCENARIOS[scenario]
    members = _members(members_count)
    envelopes = build(depth, members)
    scheduler = Scheduler()
    net = Network(
        scheduler, rng=RngRegistry(0), trace=TraceRecorder(enabled=False)
    )
    membership = GroupMembership(members)
    receiver = protocol_cls("receiver", membership)
    receiver.drain_mode = drain_mode
    net.register(receiver)
    start = time.perf_counter()
    for envelope in envelopes:
        receiver.on_receive(SENDER, envelope)
    elapsed = time.perf_counter() - start
    if receiver.delivered_count != depth:
        raise AssertionError(
            f"{scenario} x{members_count} depth={depth} ({drain_mode}): "
            f"delivered {receiver.delivered_count}/{depth}"
        )
    return depth / elapsed


def best_of(repeats: int, case: Callable[[], float]) -> float:
    return max(case() for _ in range(repeats))


def run_sweep(
    depths=DEPTHS, member_counts=MEMBER_COUNTS, repeats=REPEATS
) -> dict:
    results = []
    for scenario in SCENARIOS:
        for members_count in member_counts:
            for depth in depths:
                naive = best_of(
                    repeats,
                    lambda: run_case(scenario, members_count, depth, "naive"),
                )
                indexed = best_of(
                    repeats,
                    lambda: run_case(scenario, members_count, depth, "indexed"),
                )
                results.append(
                    {
                        "scenario": scenario,
                        "members": members_count,
                        "depth": depth,
                        "naive_ops_per_sec": round(naive, 1),
                        "indexed_ops_per_sec": round(indexed, 1),
                        "speedup": round(indexed / naive, 2),
                    }
                )
    return {
        "benchmark": "drain_scale",
        "unit": "deliveries/sec (higher is better)",
        "config": {
            "depths": list(depths),
            "member_counts": list(member_counts),
            "repeats": repeats,
        },
        "results": results,
    }


def write_report(path: Path = REPORT_PATH) -> dict:
    report = run_sweep()
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


# -- pytest entry points (not tier-1: benchmarks/ is outside testpaths) ------


def test_indexed_drain_speedup_at_depth():
    """Acceptance: >= 5x over the naive drain at hold-back depth >= 500."""
    for scenario in SCENARIOS:
        naive = best_of(2, lambda: run_case(scenario, 3, 500, "naive"))
        indexed = best_of(2, lambda: run_case(scenario, 3, 500, "indexed"))
        assert indexed / naive >= 5.0, (
            f"{scenario}: only {indexed / naive:.1f}x at depth 500"
        )


def test_both_modes_deliver_everything():
    for scenario in SCENARIOS:
        for mode in ("indexed", "naive"):
            run_case(scenario, 3, 100, mode)  # raises on shortfall


def main() -> int:
    report = write_report()
    print(f"wrote {REPORT_PATH}")
    for row in report["results"]:
        print(
            f"  {row['scenario']:<13} members={row['members']} "
            f"depth={row['depth']:>5}: {row['naive_ops_per_sec']:>12.1f} -> "
            f"{row['indexed_ops_per_sec']:>12.1f} ops/s "
            f"({row['speedup']}x)"
        )
    worst_deep = min(
        row["speedup"] for row in report["results"] if row["depth"] >= 500
    )
    print(f"worst speedup at depth >= 500: {worst_deep}x")
    return 0 if worst_deep >= 5.0 else 1


if __name__ == "__main__":
    sys.exit(main())
