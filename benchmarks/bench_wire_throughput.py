"""WIRE benchmark — serve-layer throughput and p99 over real sockets.

Boots a serve instance (2 shards x 3 replicas) on an ephemeral
localhost port and drives it with the closed-loop load generator across
a sweep of (clients, pipeline, procs, codec) shapes.  Each case reports
wall-clock ops/sec and client-observed p50/p99 latency, so the sweep
shows every axis the serving layer optimises:

* more concurrent connections coalesce into the same per-cycle
  ``shard_send`` batches (throughput should *grow* with clients);
* deeper pipelines trade latency for that batching win;
* the ``binary`` codec drops the JSON round-trip on both hops;
* ``procs > 1`` runs each shard subset in its own worker process behind
  the routing front-end (:class:`repro.serve.MultiProcServeServer`).

Run as a script (or via ``make bench-quick``) to write
``BENCH_wire.json``; ``make perf-guard`` replays the sweep and compares
ops/sec against the committed baseline.  Absolute numbers are
machine-relative — the portable acceptances are only that batching works
at all (8 pipelined clients clear a modest ops/sec floor with mean ops
per drain cycle well above 1) and that the fast path is actually fast
(multi-process binary at 8x8 must not lose to single-process JSON).
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Callable

from repro.serve import MultiProcServeServer, ServeServer, run_load

#: (clients, pipeline, procs, codec) shapes; constant total ops so the
#: sweep isolates the serving shape from ledger growth.
CASES = (
    (1, 1, 1, "json"),
    (4, 4, 1, "json"),
    (8, 8, 1, "json"),
    (16, 8, 1, "json"),
    (8, 8, 1, "binary"),
    (16, 8, 1, "binary"),
    (8, 8, 2, "json"),
    (16, 8, 2, "json"),
    (8, 8, 2, "binary"),
    (16, 8, 2, "binary"),
)
TOTAL_OPS = 480
READ_EVERY = 10
REPEATS = 3
SEED = 11
#: Portable floor: 8x8 must beat this many ops/s *and* out-run 1x1.
MIN_PIPELINED_OPS = 150.0
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_wire.json"


async def _run_case_async(
    clients: int, pipeline: int, procs: int = 1, codec: str = "json"
) -> dict:
    if procs > 1:
        server = MultiProcServeServer(
            shards=2, members_per_shard=3, seed=SEED, procs=procs
        )
    else:
        server = ServeServer(shards=2, members_per_shard=3, seed=SEED)
    await server.start()
    try:
        started = time.perf_counter()
        report = await run_load(
            "127.0.0.1", server.port,
            clients=clients,
            ops_per_client=TOTAL_OPS // clients,
            pipeline=pipeline,
            read_every=READ_EVERY,
            seed=SEED,
            codec=codec,
        )
        elapsed = time.perf_counter() - started
    finally:
        await server.shutdown()
    if report.errors:
        raise AssertionError(
            f"clients={clients} pipeline={pipeline} procs={procs} "
            f"codec={codec}: {report.errors} errored ops"
        )
    if server.session_guarantee_violations():
        raise AssertionError(
            f"clients={clients} pipeline={pipeline} procs={procs} "
            f"codec={codec}: benchmark load violated session guarantees"
        )
    if procs > 1:
        stats = server.aggregate_stats()
        batches = stats.get("batches", 0)
        batched_ops = stats.get("batched_ops", 0)
    else:
        batches = server.metrics.counters["batches"]
        batched_ops = server.metrics.counters["batched_ops"]
    return {
        "clients": clients,
        "pipeline": pipeline,
        "procs": procs,
        "codec": codec,
        "ops": report.ops,
        "ops_per_sec": report.ops / elapsed,
        "p50_ms": report.p50_ms,
        "p99_ms": report.p99_ms,
        "batches": batches,
        "mean_batch": batched_ops / max(1, batches),
    }


def run_case(
    clients: int, pipeline: int, procs: int = 1, codec: str = "json"
) -> dict:
    return asyncio.run(_run_case_async(clients, pipeline, procs, codec))


def best_of(repeats: int, case: Callable[[], dict]) -> dict:
    return max((case() for _ in range(repeats)),
               key=lambda row: row["ops_per_sec"])


def run_sweep(cases=CASES, repeats=REPEATS) -> dict:
    results = []
    for clients, pipeline, procs, codec in cases:
        row = best_of(
            repeats,
            lambda: run_case(clients, pipeline, procs, codec),
        )
        results.append({
            "clients": row["clients"],
            "pipeline": row["pipeline"],
            "procs": row["procs"],
            "codec": row["codec"],
            "ops_per_sec": round(row["ops_per_sec"], 1),
            "p50_ms": round(row["p50_ms"], 2),
            "p99_ms": round(row["p99_ms"], 2),
            "mean_batch": round(row["mean_batch"], 1),
        })
    return {
        "benchmark": "wire_throughput",
        "unit": "wire ops/sec over localhost TCP (higher is better)",
        "config": {
            "shards": 2,
            "members_per_shard": 3,
            "total_ops": TOTAL_OPS,
            "read_every": READ_EVERY,
            "cases": [list(case) for case in cases],
            "repeats": repeats,
        },
        "results": results,
    }


def write_report(path: Path = REPORT_PATH) -> dict:
    report = run_sweep()
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


# -- pytest entry points (not tier-1: benchmarks/ is outside testpaths) ------


def test_pipelined_clients_coalesce_and_clear_floor():
    """Acceptance: 8x8 clears the ops/s floor and genuinely batches."""
    pipelined = best_of(2, lambda: run_case(8, 8))
    assert pipelined["ops_per_sec"] >= MIN_PIPELINED_OPS, (
        f"8x8 only reached {pipelined['ops_per_sec']:.0f} ops/s"
    )
    assert pipelined["mean_batch"] >= 4.0, (
        f"writes barely coalesce: mean batch {pipelined['mean_batch']:.1f}"
    )


def test_benchmark_load_keeps_session_guarantees():
    """The benchmark workload itself passes the wire-history audit."""
    run_case(4, 4)  # raises on violations


def test_multiproc_binary_case_keeps_session_guarantees():
    """The fast path (workers + binary codec) passes the same audit."""
    run_case(4, 4, procs=2, codec="binary")  # raises on violations


def main() -> int:
    report = write_report()
    print(f"wrote {REPORT_PATH}")
    for row in report["results"]:
        print(
            f"  clients={row['clients']:>2} pipeline={row['pipeline']} "
            f"procs={row['procs']} codec={row['codec']:<6}: "
            f"{row['ops_per_sec']:>8.1f} ops/s "
            f"p50={row['p50_ms']}ms p99={row['p99_ms']}ms "
            f"(mean batch {row['mean_batch']})"
        )
    top = max(row["ops_per_sec"] for row in report["results"])
    return 0 if top >= MIN_PIPELINED_OPS else 1


if __name__ == "__main__":
    sys.exit(main())
