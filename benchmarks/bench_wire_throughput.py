"""WIRE benchmark — serve-layer throughput and p99 over real sockets.

Boots a serve instance (2 shards x 3 replicas) on an ephemeral
localhost port and drives it with the closed-loop load generator across
a sweep of (clients, pipeline, procs, codec) shapes.  Each case reports
wall-clock ops/sec and client-observed p50/p99 latency, so the sweep
shows every axis the serving layer optimises:

* more concurrent connections coalesce into the same per-cycle
  ``shard_send`` batches (throughput should *grow* with clients);
* deeper pipelines trade latency for that batching win;
* the ``binary`` codec drops the JSON round-trip on both hops;
* ``procs > 1`` runs each shard subset in its own worker process behind
  the routing front-end (:class:`repro.serve.MultiProcServeServer`).

A second, get-heavy *replica sweep* measures the read-anywhere routing:
each (members_per_shard, read_policy) case warms a key set per client,
then times pipelined causally gated gets.  Under ``replica`` policy the
gets are served directly from any covering member's settled state;
under ``coordinator`` every get rides the batch cycle — the
pre-replica-routing behaviour, kept as the in-sweep baseline.

Run as a script (or via ``make bench-quick``) to write
``BENCH_wire.json``; ``make perf-guard`` replays the sweep and compares
ops/sec against the committed baseline.  Absolute numbers are
machine-relative — the portable acceptances are only that batching works
at all (8 pipelined clients clear a modest ops/sec floor with mean ops
per drain cycle well above 1), that the fast path is actually fast
(multi-process binary at 8x8 must not lose to single-process JSON), and
that four replicas serving reads beat the single coordinator by the
replica scaling floor (advisory on single-core hosts).
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Callable

from repro.serve import (
    MultiProcServeServer,
    ServeClient,
    ServeServer,
    run_load,
)
from repro.serve.metrics import percentile

#: (clients, pipeline, procs, codec) shapes; constant total ops so the
#: sweep isolates the serving shape from ledger growth.
CASES = (
    (1, 1, 1, "json"),
    (4, 4, 1, "json"),
    (8, 8, 1, "json"),
    (16, 8, 1, "json"),
    (8, 8, 1, "binary"),
    (16, 8, 1, "binary"),
    (8, 8, 2, "json"),
    (16, 8, 2, "json"),
    (8, 8, 2, "binary"),
    (16, 8, 2, "binary"),
)
TOTAL_OPS = 480
READ_EVERY = 10
REPEATS = 3
SEED = 11
#: Portable floor: 8x8 must beat this many ops/s *and* out-run 1x1.
MIN_PIPELINED_OPS = 150.0
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_wire.json"

#: Replica sweep: (members_per_shard, read_policy) shapes for a
#: get-heavy phase.  ``coordinator`` routes every get through the batch
#: cycle (the pre-replica-routing behaviour); ``replica`` serves each
#: get from any covering member's settled state.  The guard's portable
#: acceptance compares replica@4 against coordinator@4 from the same
#: sweep.
REPLICA_CASES = (
    (4, "coordinator"),
    (2, "replica"),
    (3, "replica"),
    (4, "replica"),
)
REPLICA_CLIENTS = 8
REPLICA_KEYS = 8
REPLICA_GETS = 60  # timed gets per client (480 total, matching TOTAL_OPS)
REPLICA_PIPELINE = 8


async def _run_case_async(
    clients: int, pipeline: int, procs: int = 1, codec: str = "json"
) -> dict:
    if procs > 1:
        server = MultiProcServeServer(
            shards=2, members_per_shard=3, seed=SEED, procs=procs
        )
    else:
        server = ServeServer(shards=2, members_per_shard=3, seed=SEED)
    await server.start()
    try:
        started = time.perf_counter()
        report = await run_load(
            "127.0.0.1", server.port,
            clients=clients,
            ops_per_client=TOTAL_OPS // clients,
            pipeline=pipeline,
            read_every=READ_EVERY,
            seed=SEED,
            codec=codec,
        )
        elapsed = time.perf_counter() - started
    finally:
        await server.shutdown()
    if report.errors:
        raise AssertionError(
            f"clients={clients} pipeline={pipeline} procs={procs} "
            f"codec={codec}: {report.errors} errored ops"
        )
    if server.session_guarantee_violations():
        raise AssertionError(
            f"clients={clients} pipeline={pipeline} procs={procs} "
            f"codec={codec}: benchmark load violated session guarantees"
        )
    if procs > 1:
        stats = server.aggregate_stats()
        batches = stats.get("batches", 0)
        batched_ops = stats.get("batched_ops", 0)
    else:
        batches = server.metrics.counters["batches"]
        batched_ops = server.metrics.counters["batched_ops"]
    return {
        "clients": clients,
        "pipeline": pipeline,
        "procs": procs,
        "codec": codec,
        "ops": report.ops,
        "ops_per_sec": report.ops / elapsed,
        "p50_ms": report.p50_ms,
        "p99_ms": report.p99_ms,
        "batches": batches,
        "mean_batch": batched_ops / max(1, batches),
    }


def run_case(
    clients: int, pipeline: int, procs: int = 1, codec: str = "json"
) -> dict:
    return asyncio.run(_run_case_async(clients, pipeline, procs, codec))


async def _replica_reader(
    client: ServeClient, latencies: list
) -> None:
    """One client's timed phase: pipelined gets over its own key set."""
    outstanding: list = []

    async def reap(down_to: int) -> None:
        while len(outstanding) > down_to:
            future = outstanding.pop(0)
            await future
            latencies.append(
                (time.perf_counter() - future._bench_started) * 1000.0
            )

    for n in range(REPLICA_GETS):
        key = f"{client.session}-k{n % REPLICA_KEYS}"
        future = client.get_submit(key)
        future._bench_started = time.perf_counter()
        outstanding.append(future)
        await reap(REPLICA_PIPELINE - 1)
    await reap(0)


async def _run_replica_case_async(members: int, policy: str) -> dict:
    server = ServeServer(
        shards=2, members_per_shard=members, seed=SEED, read_policy=policy
    )
    await server.start()
    latencies: list = []
    try:
        clients = [
            ServeClient("127.0.0.1", server.port, f"rep{index}")
            for index in range(REPLICA_CLIENTS)
        ]
        for client in clients:
            await client.connect()
        try:
            # Untimed warmup: every session writes its key set (the puts
            # drain through the batch cycle, settling all replicas), so
            # the timed phase measures reads alone.
            for client in clients:
                puts = [
                    client.put(f"{client.session}-k{index}", index)
                    for index in range(REPLICA_KEYS)
                ]
                for put in puts:
                    await put
            started = time.perf_counter()
            await asyncio.gather(*[
                _replica_reader(client, latencies) for client in clients
            ])
            elapsed = time.perf_counter() - started
        finally:
            for client in clients:
                await client.close()
    finally:
        await server.shutdown()
    if server.session_guarantee_violations():
        raise AssertionError(
            f"members={members} policy={policy}: replica-sweep load "
            "violated session guarantees"
        )
    counters = server.metrics.counters
    gets = REPLICA_CLIENTS * REPLICA_GETS
    return {
        "members": members,
        "policy": policy,
        "gets": gets,
        "gets_per_sec": gets / elapsed,
        "p50_ms": percentile(latencies, 0.50),
        "p99_ms": percentile(latencies, 0.99),
        "gets_direct": counters.get("gets_direct", 0),
        "replicas_serving": sum(
            1 for key in counters if key.startswith("replica_reads_")
        ),
    }


def run_replica_case(members: int, policy: str) -> dict:
    return asyncio.run(_run_replica_case_async(members, policy))


def run_replica_sweep(cases=REPLICA_CASES, repeats=REPEATS) -> dict:
    results = []
    for members, policy in cases:
        row = max(
            (run_replica_case(members, policy) for _ in range(repeats)),
            key=lambda r: r["gets_per_sec"],
        )
        results.append({
            "members": row["members"],
            "policy": row["policy"],
            "gets_per_sec": round(row["gets_per_sec"], 1),
            "p50_ms": round(row["p50_ms"], 2),
            "p99_ms": round(row["p99_ms"], 2),
            "gets_direct": row["gets_direct"],
            "replicas_serving": row["replicas_serving"],
        })
    return {
        "unit": "replica-routed gets/sec over localhost TCP",
        "config": {
            "shards": 2,
            "clients": REPLICA_CLIENTS,
            "keys_per_client": REPLICA_KEYS,
            "gets_per_client": REPLICA_GETS,
            "pipeline": REPLICA_PIPELINE,
            "cases": [list(case) for case in cases],
            "repeats": repeats,
        },
        "results": results,
    }


def best_of(repeats: int, case: Callable[[], dict]) -> dict:
    return max((case() for _ in range(repeats)),
               key=lambda row: row["ops_per_sec"])


def run_sweep(cases=CASES, repeats=REPEATS) -> dict:
    results = []
    for clients, pipeline, procs, codec in cases:
        row = best_of(
            repeats,
            lambda: run_case(clients, pipeline, procs, codec),
        )
        results.append({
            "clients": row["clients"],
            "pipeline": row["pipeline"],
            "procs": row["procs"],
            "codec": row["codec"],
            "ops_per_sec": round(row["ops_per_sec"], 1),
            "p50_ms": round(row["p50_ms"], 2),
            "p99_ms": round(row["p99_ms"], 2),
            "mean_batch": round(row["mean_batch"], 1),
        })
    return {
        "benchmark": "wire_throughput",
        "unit": "wire ops/sec over localhost TCP (higher is better)",
        "config": {
            "shards": 2,
            "members_per_shard": 3,
            "total_ops": TOTAL_OPS,
            "read_every": READ_EVERY,
            "cases": [list(case) for case in cases],
            "repeats": repeats,
        },
        "results": results,
        "replica_sweep": run_replica_sweep(repeats=repeats),
    }


def write_report(path: Path = REPORT_PATH) -> dict:
    report = run_sweep()
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


# -- pytest entry points (not tier-1: benchmarks/ is outside testpaths) ------


def test_pipelined_clients_coalesce_and_clear_floor():
    """Acceptance: 8x8 clears the ops/s floor and genuinely batches."""
    pipelined = best_of(2, lambda: run_case(8, 8))
    assert pipelined["ops_per_sec"] >= MIN_PIPELINED_OPS, (
        f"8x8 only reached {pipelined['ops_per_sec']:.0f} ops/s"
    )
    assert pipelined["mean_batch"] >= 4.0, (
        f"writes barely coalesce: mean batch {pipelined['mean_batch']:.1f}"
    )


def test_benchmark_load_keeps_session_guarantees():
    """The benchmark workload itself passes the wire-history audit."""
    run_case(4, 4)  # raises on violations


def test_multiproc_binary_case_keeps_session_guarantees():
    """The fast path (workers + binary codec) passes the same audit."""
    run_case(4, 4, procs=2, codec="binary")  # raises on violations


def test_replica_sweep_case_keeps_session_guarantees():
    """Replica-routed gets spread over members and pass the audit."""
    row = run_replica_case(2, "replica")  # raises on violations
    assert row["gets_direct"] > 0, "no get took the direct replica path"
    assert row["replicas_serving"] >= 2, (
        f"only {row['replicas_serving']} replica(s) served reads"
    )


def main() -> int:
    report = write_report()
    print(f"wrote {REPORT_PATH}")
    for row in report["results"]:
        print(
            f"  clients={row['clients']:>2} pipeline={row['pipeline']} "
            f"procs={row['procs']} codec={row['codec']:<6}: "
            f"{row['ops_per_sec']:>8.1f} ops/s "
            f"p50={row['p50_ms']}ms p99={row['p99_ms']}ms "
            f"(mean batch {row['mean_batch']})"
        )
    for row in report["replica_sweep"]["results"]:
        print(
            f"  members={row['members']} policy={row['policy']:<11}: "
            f"{row['gets_per_sec']:>8.1f} gets/s "
            f"p50={row['p50_ms']}ms p99={row['p99_ms']}ms "
            f"({row['replicas_serving']} replica(s) serving)"
        )
    top = max(row["ops_per_sec"] for row in report["results"])
    return 0 if top >= MIN_PIPELINED_OPS else 1


if __name__ == "__main__":
    sys.exit(main())
