"""ABLATION-RECOVERY benchmark — see :mod:`repro.experiments.ablation_recovery`."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.ablation_recovery import DROPS, run_chain

EXPERIMENT = get_experiment("ABLATION-RECOVERY")


def test_ablation_recovery(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    by_key = {(row[0], row[1]): row for row in rows}
    for drop in DROPS:
        with_recovery = by_key[(drop, "on")]
        without = by_key[(drop, "off")]
        # Recovery always reaches full delivery; without it, loss leaves
        # causal chains dangling.
        assert with_recovery[2] == 1.0
        if drop > 0:
            assert without[2] < 1.0
            assert with_recovery[3] > 0
    assert by_key[(0.0, "on")][3] == 0  # no loss -> no NACK traffic
    benchmark(run_chain, 0.25, True)
