"""ABLATION-GC benchmark — see :mod:`repro.experiments.ablation_gc`."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.ablation_gc import LENGTHS, MEMBERS, run_workload

EXPERIMENT = get_experiment("ABLATION-GC")


def test_ablation_gc(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    by_key = {(row[0], row[1]): row for row in rows}
    for messages in LENGTHS:
        without = by_key[(messages, "off")]
        with_gossip = by_key[(messages, "on")]
        # Unbounded: every member stores every message.
        assert without[2] == messages * len(MEMBERS)
        # With gossip the whole history is reclaimed.
        assert with_gossip[2] == 0
        assert with_gossip[3] == messages * len(MEMBERS)
    benchmark(run_workload, 40, True)
