"""FIG2 benchmark — see :mod:`repro.experiments.fig2` and DESIGN.md."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.fig2 import run_scenario, summary

EXPERIMENT = get_experiment("FIG2")


def test_fig2_causal_scenario(benchmark):
    s = summary()
    print(
        "\n"
        + format_table(
            EXPERIMENT.headers,
            [[
                s["runs"],
                s["diverged_mid_cycle"],
                s["causal_violations"],
                s["sync_disagreements"],
            ]],
            title=EXPERIMENT.title,
        )
    )
    # The paper's shape: divergence happens (concurrency is real) but
    # safety and sync-point agreement never break.
    assert s["diverged_mid_cycle"] > 0
    assert s["causal_violations"] == 0
    assert s["sync_disagreements"] == 0
    benchmark(run_scenario, 7)
