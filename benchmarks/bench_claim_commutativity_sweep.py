"""CLAIM-COMMUTE benchmark — see :mod:`repro.experiments.claim_commute`."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.claim_commute import F_VALUES, run_protocol

EXPERIMENT = get_experiment("CLAIM-COMMUTE")


def test_claim_commutativity_sweep(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    by_f = {}
    for row in rows:
        by_f.setdefault(row[0], {})[row[1]] = row
    for f, pair in by_f.items():
        stable = pair["stable-point"]
        total = pair["total-order"]
        assert stable[6] and total[6]
        # Total order always sends more broadcasts (order bindings).
        assert total[3] > stable[3]
        # The totally ordered runs never diverge.
        assert total[5] == 0
    # The exploited asynchronism (divergence) grows with f.
    divergences = [by_f[f]["stable-point"][5] for f in F_VALUES]
    assert divergences[-1] > divergences[0]
    benchmark(run_protocol, "stable-point", 5)
