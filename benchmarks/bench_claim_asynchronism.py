"""CLAIM-ASYNC benchmark — see :mod:`repro.experiments.claim_async`."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.claim_async import SKEWS, run_protocol

EXPERIMENT = get_experiment("CLAIM-ASYNC")


def test_claim_asynchronism(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    by_skew: dict = {}
    for row in rows:
        by_skew.setdefault(row[0], {})[row[1]] = row
    for skew, group in by_skew.items():
        # Causal stable-point delivery is faster than both total orders.
        assert group["stable-point"][2] < group["sequencer"][2]
        assert group["stable-point"][2] < group["lamport"][2]
    # The causal-vs-lamport gap grows with the skew.
    gaps = [
        by_skew[s]["lamport"][2] - by_skew[s]["stable-point"][2]
        for s in SKEWS
    ]
    assert gaps == sorted(gaps)
    benchmark(run_protocol, "stable-point", 5.0)
