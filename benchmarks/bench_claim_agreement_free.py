"""CLAIM-AGREE benchmark — see :mod:`repro.experiments.claim_agree`."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import get_experiment
from repro.experiments.claim_agree import run_stable

EXPERIMENT = get_experiment("CLAIM-AGREE")


def test_claim_agreement_free(benchmark):
    rows = EXPERIMENT.rows()
    print("\n" + format_table(EXPERIMENT.headers, rows, title=EXPERIMENT.title))
    for row in rows:
        assert row[5] is True  # every approach reaches agreement
    by_proto: dict = {}
    for row in rows:
        by_proto.setdefault(row[1], []).append(row)
    # The paper's claim: zero extra messages for stable points, nonzero
    # for every explicit scheme.
    assert all(row[3] == 0 for row in by_proto["stable-point"])
    assert all(row[3] > 0 for row in by_proto["lamport-total"])
    assert all(row[3] > 0 for row in by_proto["2-phase"])
    benchmark(run_stable, 5)
